.PHONY: install test bench bench-quick bench-serve bench-sweep bench-clean examples results clean

install:
	pip install -e . || pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

bench-quick:
	python scripts/bench_snapshot.py

bench-serve:
	python scripts/bench_serve.py

bench-sweep:
	python scripts/bench_sweep.py

bench-clean:
	rm -rf benchmarks/results/.cache benchmarks/results/.warmstore

examples:
	python examples/quickstart.py
	python examples/covert_channel_duel.py
	python examples/genome_leak.py
	python examples/defense_tradeoffs.py
	python examples/recon_and_massage.py
	python examples/keystroke_spy.py

results:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf benchmarks/results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
