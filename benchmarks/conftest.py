"""Shared helpers for the paper-reproduction benches.

Every bench regenerates one of the paper's tables or figures, prints the
series (visible under ``pytest -s``), and persists it under
``benchmarks/results/``.  EXPERIMENTS.md records the paper-vs-measured
comparison for each.
"""

import os

import pytest

from repro.analysis import ResultTable
from repro.exp import ResultCache, default_jobs, run_sweep

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
SWEEP_CACHE_DIR = os.path.join(RESULTS_DIR, ".cache")


@pytest.fixture
def result_table():
    """Factory for paper-style result tables persisted to results/."""
    def factory(name, headers, title=None):
        return ResultTable(name, headers, title=title, output_dir=RESULTS_DIR)
    return factory


@pytest.fixture(scope="session")
def sweep_cache():
    """On-disk result cache shared by the figure sweeps.

    Keyed by (experiment, params, code version), so editing any module
    under ``repro`` invalidates every entry; an unchanged re-run of the
    suite replays every figure from disk.  Delete ``results/.cache`` (or
    run ``make bench-clean``) for a cold run.
    """
    return ResultCache(SWEEP_CACHE_DIR)


@pytest.fixture
def run_points(sweep_cache):
    """Run sweep points through the parallel runner + result cache.

    ``REPRO_JOBS`` overrides the worker count (1 forces serial execution).
    """
    jobs_env = os.environ.get("REPRO_JOBS")
    jobs = int(jobs_env) if jobs_env else default_jobs()

    def run(points):
        return run_sweep(points, jobs=jobs, cache=sweep_cache)
    return run
