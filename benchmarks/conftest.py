"""Shared helpers for the paper-reproduction benches.

Every bench regenerates one of the paper's tables or figures, prints the
series (visible under ``pytest -s``), and persists it under
``benchmarks/results/``.  EXPERIMENTS.md records the paper-vs-measured
comparison for each.
"""

import os

import pytest

from repro.analysis import ResultTable

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def result_table():
    """Factory for paper-style result tables persisted to results/."""
    def factory(name, headers, title=None):
        return ResultTable(name, headers, title=title, output_dir=RESULTS_DIR)
    return factory
