"""Ablations: the design choices behind IMPACT's numbers.

Not a paper figure — these sweeps justify the attack parameters the paper
fixes (batch size 4, fine-grained rdtscp, open-row without timeout) and
quantify the §5.1/§7 discussion points (noise sensitivity, coarse-timer
mitigation, refresh, FEC goodput).
"""

from dataclasses import replace

from repro import System, SystemConfig
from repro.analysis import fec_assessment
from repro.attacks import DmaEngineChannel, ImpactPnmChannel
from repro.cache import HierarchyConfig
from repro.dram import DRAMGeometry
from repro.sim import TimerConfig


def base_config():
    return SystemConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=64, rows_per_bank=8192),
        hierarchy=HierarchyConfig(num_cores=2, llc_size_mb=8.0,
                                  prefetchers_enabled=False),
        num_cores=2)


def test_ablation_batch_size(benchmark, result_table):
    """Why batch 4: one-bit batches burn a semaphore round per bit, huge
    batches stop overlapping sender and receiver work."""
    def sweep():
        results = {}
        for batch in (1, 2, 4, 8, 16):
            channel = ImpactPnmChannel(System(base_config()),
                                       batch_size=batch)
            results[batch] = channel.transmit_random(512, seed=3)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = result_table("ablation_batch_size",
                         ["batch_size", "throughput_mbps", "error_rate"],
                         title="Ablation: IMPACT-PnM batch size (paper: 4)")
    for batch, r in results.items():
        table.add(batch, round(r.throughput_mbps, 2), round(r.error_rate, 3))
    table.emit()
    assert results[4].throughput_mbps > results[1].throughput_mbps
    assert all(r.error_rate == 0.0 for r in results.values())


def test_ablation_noise_sensitivity(benchmark, result_table):
    """§5.1: noise sources degrade the channel gracefully, not abruptly."""
    def sweep():
        results = {}
        for rate in (0.0, 0.5, 1.0, 2.0, 4.0):
            config = base_config().with_noise(rate_per_kilocycle=rate)
            results[rate] = ImpactPnmChannel(System(config)) \
                .transmit_random(512, seed=4)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = result_table("ablation_noise",
                         ["noise_per_kc", "throughput_mbps", "error_rate"],
                         title="Ablation: IMPACT-PnM vs background activation noise")
    for rate, r in results.items():
        table.add(rate, round(r.throughput_mbps, 2), round(r.error_rate, 3))
    table.emit()
    errors = [results[rate].error_rate for rate in sorted(results)]
    assert errors[0] == 0.0
    assert errors[-1] > errors[0]
    assert errors[-1] < 0.45  # degraded, not dead


def test_ablation_timer_granularity(benchmark, result_table):
    """§7: restricting fine-grained timers (Apple-M1-style) as a defense.
    The channel survives until the timer quantum exceeds the ~70-cycle
    hit/conflict gap, then collapses — at the cost of breaking every
    latency-sensitive legitimate application."""
    # Measured probe latencies on this system: hit ~114, conflict ~184.
    HIT, CONFLICT = 114, 184

    def adaptive_threshold(resolution):
        """The attacker recalibrates against the quantized distributions."""
        quantized_hit = (HIT // resolution) * resolution
        quantized_conflict = (CONFLICT // resolution) * resolution
        if quantized_conflict == quantized_hit:
            return 150  # channel dead; threshold is irrelevant
        return (quantized_hit + quantized_conflict) // 2

    def sweep():
        results = {}
        for resolution in (1, 16, 64, 128, 256, 512):
            config = replace(base_config(), timer=TimerConfig(
                read_overhead_cycles=20, resolution_cycles=resolution))
            channel = ImpactPnmChannel(
                System(config),
                threshold_cycles=max(1, adaptive_threshold(resolution)))
            results[resolution] = channel.transmit_random(384, seed=5)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = result_table("ablation_timer",
                         ["timer_resolution_cycles", "throughput_mbps",
                          "error_rate"],
                         title="Ablation: coarse-timer mitigation (§7), "
                               "attacker recalibrates the threshold")
    for resolution, r in results.items():
        table.add(resolution, round(r.throughput_mbps, 2),
                  round(r.error_rate, 3))
    table.emit()
    assert results[1].error_rate == 0.0
    assert results[128].error_rate < 0.05  # the 70-cycle gap survives 128
    assert results[256].error_rate > 0.30  # quantum swallows the gap
    assert results[512].error_rate > 0.30


def test_ablation_row_timeout(benchmark, result_table):
    """Table 2 lists a 100 ns open-row timeout.  With it enabled, rows
    close before the pipelined receiver probes them (both symbols decode
    as EMPTY) — an accidental defense the attacker must counter by
    shrinking the batch to probe sooner."""
    def sweep():
        results = {}
        for label, timeout_ns, batch in (("no timeout, batch 4", 0.0, 4),
                                         ("100ns timeout, batch 4", 100.0, 4),
                                         ("100ns timeout, batch 1", 100.0, 1)):
            config = base_config()
            config = replace(config, timings=replace(
                config.timings, row_timeout_ns=timeout_ns))
            channel = ImpactPnmChannel(System(config), batch_size=batch)
            results[label] = channel.transmit_random(256, seed=6)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = result_table("ablation_row_timeout",
                         ["configuration", "throughput_mbps", "error_rate"],
                         title="Ablation: open-row timeout vs IMPACT-PnM")
    for label, r in results.items():
        table.add(label, round(r.throughput_mbps, 2), round(r.error_rate, 3))
    table.emit()
    assert results["no timeout, batch 4"].error_rate == 0.0
    assert (results["100ns timeout, batch 4"].error_rate
            > results["no timeout, batch 4"].error_rate)


def test_ablation_refresh_noise(benchmark, result_table):
    """Periodic refresh closes rows mid-transmission: a small, bounded
    error floor (§5.1 noise sources)."""
    def sweep():
        results = {}
        for refresh in (False, True):
            config = replace(base_config(), refresh_enabled=refresh)
            results[refresh] = ImpactPnmChannel(System(config)) \
                .transmit_random(512, seed=7)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = result_table("ablation_refresh",
                         ["refresh_enabled", "throughput_mbps", "error_rate"],
                         title="Ablation: DRAM refresh as a noise source")
    for refresh, r in results.items():
        table.add(refresh, round(r.throughput_mbps, 2), round(r.error_rate, 3))
    table.emit()
    assert results[True].error_rate >= results[False].error_rate
    assert results[True].error_rate < 0.25


def test_ablation_fec_goodput(benchmark, result_table):
    """From raw leakage to usable bits: Hamming(7,4) over the noisy
    channels turns error rates into goodput."""
    def sweep():
        noisy = base_config().with_noise(rate_per_kilocycle=2.0)
        rows = []
        for name, channel in (
                ("IMPACT-PnM (noisy)", ImpactPnmChannel(System(noisy))),
                ("DMA-engine", DmaEngineChannel(System(base_config())))):
            result = channel.transmit_random(512, seed=8)
            rows.append((name, result,
                         fec_assessment(result.raw_throughput_mbps,
                                        result.error_rate)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = result_table("ablation_fec",
                         ["channel", "raw_mbps", "error", "goodput_mbps",
                          "residual_error"],
                         title="Ablation: Hamming(7,4) goodput on noisy channels")
    for name, result, fec in rows:
        table.add(name, round(result.raw_throughput_mbps, 2),
                  round(result.error_rate, 3), round(fec.goodput_mbps, 2),
                  round(fec.residual_error_rate, 4))
        assert fec.residual_error_rate <= result.error_rate + 1e-9
    table.emit()


def test_ablation_memory_scheduling_policy(benchmark, result_table):
    """FCFS vs FR-FCFS on the Fig. 11 workload miss streams: FR-FCFS's
    row-hit-first reordering is why the open-row policy is worth
    defending (and why CRP's Fig. 11 cost exists at all)."""
    from repro.dram import (RequestScheduler, SchedulingPolicy,
                            requests_from_refs)
    from repro.dram.address import DRAMGeometry
    from repro.dram.timings import DRAMTimings
    from repro.workloads import workload_spec

    geometry = DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=65536)
    timings = DRAMTimings()

    def sweep():
        from repro.dram.address import make_mapping
        mapping = make_mapping("row", geometry)
        rows = []
        for name in ("PR", "CC"):
            refs = workload_spec(name).refs(max_refs=6000)
            requests = requests_from_refs(refs, geometry, mapping,
                                          arrival_gap=12)
            row = {"workload": name}
            for policy in (SchedulingPolicy.FCFS, SchedulingPolicy.FRFCFS):
                scheduler = RequestScheduler(geometry, timings, policy=policy)
                stats = scheduler.schedule(requests)
                row[policy.value] = stats
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = result_table(
        "ablation_scheduling",
        ["workload", "policy", "row_hit_rate", "mean_latency", "makespan"],
        title="Ablation: FCFS vs FR-FCFS request scheduling")
    for row in rows:
        for policy in ("fcfs", "frfcfs"):
            stats = row[policy]
            table.add(row["workload"], policy,
                      round(stats.row_hit_rate, 3),
                      round(stats.mean_latency, 1), stats.makespan)
    table.emit()
    for row in rows:
        assert row["frfcfs"].row_hit_rate >= row["fcfs"].row_hit_rate
        assert row["frfcfs"].makespan <= row["fcfs"].makespan


def test_ablation_pei_offload_speedup(benchmark, result_table):
    """The adoption premise (§1): PiM is deployed because it wins.  Our
    PEI engine accelerates low-locality PageRank gathers — the same
    substrate the attacks then abuse."""
    from repro.workloads import generate_graph
    from repro.workloads.kernels import Layout
    from repro.workloads.pim_apps import pei_speedup, run_pagerank

    def small_llc():
        return SystemConfig(
            geometry=DRAMGeometry(ranks=1, banks_per_rank=64,
                                  rows_per_bank=65536),
            hierarchy=HierarchyConfig(num_cores=2, llc_size_mb=0.25,
                                      l2_size_kb=64),
            num_cores=2)

    def sweep():
        graph = generate_graph(3000, avg_degree=8, seed=2)
        layout = Layout(node_bytes=256, edge_bytes=16)
        host = run_pagerank(System(small_llc()), graph, layout, mode="host")
        pei = run_pagerank(System(small_llc()), graph, layout, mode="pei")
        return host, pei

    host, pei = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = result_table(
        "ablation_pei_speedup",
        ["mode", "cycles_per_edge", "pei_memory_ops", "cache_accesses"],
        title="Ablation: PEI-offloaded PageRank vs host execution")
    table.add("host", round(host.cycles_per_edge, 1), host.pei_memory_ops,
              host.hierarchy_accesses)
    table.add("pei", round(pei.cycles_per_edge, 1), pei.pei_memory_ops,
              pei.hierarchy_accesses)
    table.emit()
    speedup = pei_speedup(host, pei)
    print(f"PEI offload speedup: {speedup:.2f}x")
    assert speedup > 1.5


def test_ablation_multi_pair_scaling(benchmark, result_table):
    """Extension: aggregate IMPACT-PnM throughput with k concurrent
    sender/receiver pairs on disjoint bank subsets — the bank-level
    parallelism headroom beyond the paper's single-pair evaluation."""
    from repro.attacks import run_multi_pair

    def sweep():
        results = {}
        for pairs in (1, 2, 4, 8):
            results[pairs] = run_multi_pair(
                System(SystemConfig.paper_default()), pairs,
                bits_per_pair=256)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = result_table(
        "ablation_multi_pair",
        ["pairs", "aggregate_mbps", "per_pair_mbps", "worst_error"],
        title="Ablation: concurrent IMPACT-PnM pairs (disjoint banks)")
    for pairs, r in results.items():
        table.add(pairs, round(r.aggregate_throughput_mbps, 2),
                  round(r.aggregate_throughput_mbps / pairs, 2),
                  round(r.worst_error_rate, 3))
    table.emit()
    assert results[1].aggregate_throughput_mbps < \
        results[4].aggregate_throughput_mbps
    assert all(r.worst_error_rate == 0.0 for r in results.values())
