"""Fig. 10: read-mapping side-channel throughput + error rate vs banks.

Paper (§5.4): at 1024 banks the attacker leaks ~7.57 Mb/s with <5% error;
at 8192 banks the longer scans cut bandwidth to ~2.56 Mb/s and expose the
decode to more noise (<15% error) — while each leak becomes more precise
(fewer candidate hash-table entries per bank).

The victim schedule comes from the real minimizer-seeding pipeline over a
synthetic reference (the paper uses the human reference with synthetic
samples; the channel leaks positions, not biology).
"""

from repro import System, SystemConfig
from repro.attacks import ReadMappingSideChannel
from repro.genomics import (
    PimReadMapper,
    ReferenceIndex,
    generate_reference,
    mutate_genome,
    sample_reads,
)

BANK_COUNTS = [1024, 2048, 4096, 8192]
NOISE_RATE = 0.0105  # stray activations per kilocycle (§5.1 noise sources)

REFERENCE = generate_reference(20_000, seed=31)
SAMPLE = mutate_genome(REFERENCE, seed=32)
READS = [r for r, _ in sample_reads(SAMPLE, num_reads=6, read_length=150,
                                    error_rate=0.002, seed=33)]
BASE_INDEX = ReferenceIndex(REFERENCE, num_banks=BANK_COUNTS[0])


def run_point(num_banks, rounds=100):
    config = (SystemConfig.paper_default()
              .with_banks(num_banks)
              .with_noise(NOISE_RATE))
    system = System(config)
    index = BASE_INDEX.restripe(num_banks)
    mapper = PimReadMapper(system, REFERENCE, index)
    schedule = mapper.trace_for_reads(READS)[:rounds]
    channel = ReadMappingSideChannel(system)
    return channel.run(schedule, entries_per_bank=index.entries_per_bank)


def sweep():
    return {banks: run_point(banks) for banks in BANK_COUNTS}


def test_fig10_sidechannel_sweep(benchmark, result_table):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = result_table(
        "fig10_sidechannel",
        ["banks", "throughput_mbps", "error_rate", "accuracy",
         "entries_per_bank"],
        title="Fig. 10: RM side-channel leakage vs DRAM bank count")
    for banks in BANK_COUNTS:
        r = results[banks]
        table.add(banks, round(r.throughput_mbps, 2),
                  round(r.error_rate, 3), round(r.accuracy, 3),
                  round(r.entries_per_bank, 2))
    table.emit()

    first, last = results[BANK_COUNTS[0]], results[BANK_COUNTS[-1]]
    # Anchor points: ~7.57 Mb/s @1024 (<5% err), ~2.56 Mb/s @8192 (<15%).
    assert abs(first.throughput_mbps - 7.57) / 7.57 < 0.15
    assert first.error_rate < 0.05
    assert abs(last.throughput_mbps - 2.56) / 2.56 < 0.20
    assert last.error_rate < 0.15
    # Monotone trends across the sweep.
    throughputs = [results[b].throughput_mbps for b in BANK_COUNTS]
    assert throughputs == sorted(throughputs, reverse=True)
    assert last.error_rate > first.error_rate
    # Precision improves: candidate entries per bank halve per doubling.
    precisions = [results[b].entries_per_bank for b in BANK_COUNTS]
    for coarse, fine in zip(precisions, precisions[1:]):
        assert fine == coarse / 2
