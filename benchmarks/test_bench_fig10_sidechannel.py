"""Fig. 10: read-mapping side-channel throughput + error rate vs banks.

Paper (§5.4): at 1024 banks the attacker leaks ~7.57 Mb/s with <5% error;
at 8192 banks the longer scans cut bandwidth to ~2.56 Mb/s and expose the
decode to more noise (<15% error) — while each leak becomes more precise
(fewer candidate hash-table entries per bank).

The victim schedule comes from the real minimizer-seeding pipeline over a
synthetic reference (the paper uses the human reference with synthetic
samples; the channel leaks positions, not biology).  Each worker process
rebuilds the identical seeded pipeline inside
:func:`repro.exp.figures.fig10_point`, so the four bank counts run in
parallel with bit-identical results.
"""

from repro.exp.figures import fig10_sweep

BANK_COUNTS = [1024, 2048, 4096, 8192]


def test_fig10_sidechannel_sweep(benchmark, result_table, run_points):
    sweep = fig10_sweep(BANK_COUNTS)
    outcome = benchmark.pedantic(lambda: run_points(sweep),
                                 rounds=1, iterations=1)
    results = dict(zip(BANK_COUNTS, outcome.results))
    table = result_table(
        "fig10_sidechannel",
        ["banks", "throughput_mbps", "error_rate", "accuracy",
         "entries_per_bank"],
        title="Fig. 10: RM side-channel leakage vs DRAM bank count")
    for banks in BANK_COUNTS:
        r = results[banks]
        table.add(banks, round(r["throughput_mbps"], 2),
                  round(r["error_rate"], 3), round(r["accuracy"], 3),
                  round(r["entries_per_bank"], 2))
    table.emit()

    first, last = results[BANK_COUNTS[0]], results[BANK_COUNTS[-1]]
    # Anchor points: ~7.57 Mb/s @1024 (<5% err), ~2.56 Mb/s @8192 (<15%).
    assert abs(first["throughput_mbps"] - 7.57) / 7.57 < 0.15
    assert first["error_rate"] < 0.05
    assert abs(last["throughput_mbps"] - 2.56) / 2.56 < 0.20
    assert last["error_rate"] < 0.15
    # Monotone trends across the sweep.
    throughputs = [results[b]["throughput_mbps"] for b in BANK_COUNTS]
    assert throughputs == sorted(throughputs, reverse=True)
    assert last["error_rate"] > first["error_rate"]
    # Precision improves: candidate entries per bank halve per doubling.
    precisions = [results[b]["entries_per_bank"] for b in BANK_COUNTS]
    for coarse, fine in zip(precisions, precisions[1:]):
        assert fine == coarse / 2
