"""Fig. 11: performance overhead of the CRP and CTD defenses.

Paper (§6): on five 2-core multiprogrammed GraphBIG workloads sharing the
input graph, constant-time DRAM access (CTD) costs 26% on average and the
closed-row policy (CRP) 15%, with CRP cheap for the workloads that do not
benefit from the open-row policy (TC, CC, BFS) and near-free for the
cache-resident BC.

Also verifies the security side: both defenses (and MPR) actually
eliminate the IMPACT-PnM channel — the figure's overheads are the price
of a channel that is really gone.

This is the slowest figure (five workloads x three row policies), so the
:mod:`repro.exp` rewiring matters most here: the five workloads run on
five worker processes, and the result cache replays unchanged re-runs.
"""

from repro.exp import sweep_points
from repro.exp.figures import defense_security_point, fig11_sweep

WORKLOADS = ["BC", "BFS", "CC", "TC", "PR"]


def test_fig11_defense_overheads(benchmark, result_table, run_points):
    sweep = fig11_sweep(WORKLOADS)
    outcome = benchmark.pedantic(lambda: run_points(sweep),
                                 rounds=1, iterations=1)
    evaluations = dict(zip(WORKLOADS, outcome.results))
    table = result_table(
        "fig11_defenses",
        ["workload", "llc_mpki", "paper_mpki", "crp_overhead_pct",
         "ctd_overhead_pct"],
        title="Fig. 11: CRP / CTD slowdown vs open-row (2-core, shared input)")
    crp_total = ctd_total = 0.0
    for name in WORKLOADS:
        ev = evaluations[name]
        crp, ctd = ev["crp_overhead"], ev["ctd_overhead"]
        crp_total += crp
        ctd_total += ctd
        table.add(name, round(ev["mpki"], 2), ev["paper_mpki"],
                  round(100 * crp, 1), round(100 * ctd, 1))
    crp_avg = crp_total / len(WORKLOADS)
    ctd_avg = ctd_total / len(WORKLOADS)
    table.add("AVG", "-", "-", round(100 * crp_avg, 1), round(100 * ctd_avg, 1))
    table.emit()
    print(f"paper averages: CRP 15%, CTD 26%; "
          f"measured: CRP {100 * crp_avg:.1f}%, CTD {100 * ctd_avg:.1f}%")

    # Shape checks.
    for name in WORKLOADS:
        ev = evaluations[name]
        # CTD is the costlier defense everywhere (its accesses pay the
        # worst case in latency AND bank occupancy).
        assert ev["ctd_overhead"] >= ev["crp_overhead"] - 0.02, name
    # Averages on the paper's scale.
    assert 0.08 <= crp_avg <= 0.25
    assert 0.15 <= ctd_avg <= 0.35
    assert ctd_avg > crp_avg
    # BC is cache-resident: both defenses near-free.
    assert evaluations["BC"]["ctd_overhead"] < 0.03
    # CRP is cheap for the low-row-locality workloads relative to PR.
    for name in ("TC", "CC", "BFS"):
        assert evaluations[name]["crp_overhead"] \
            < evaluations["PR"]["crp_overhead"]
    # MPKI ordering matches the paper's characterization.
    mpki = {name: evaluations[name]["mpki"] for name in WORKLOADS}
    assert mpki["BC"] < mpki["PR"] < mpki["TC"] < mpki["BFS"] <= mpki["CC"] * 1.2


def test_fig11_defenses_actually_eliminate_the_channel(benchmark,
                                                       result_table,
                                                       run_points):
    defenses = ["open", "crp", "ctd", "mpr"]
    sweep = sweep_points("fig11-security", defense_security_point,
                         "defense", defenses, bits=128, attack="impact-pnm")
    outcome = benchmark.pedantic(lambda: run_points(sweep),
                                 rounds=1, iterations=1)
    reports = dict(zip(defenses, outcome.results))
    table = result_table(
        "fig11_security",
        ["defense", "blocked", "error_rate", "capacity_b_per_sym",
         "eliminated"],
        title="Sec 6: security of each defense vs IMPACT-PnM")
    for defense, report in reports.items():
        table.add(defense, report["blocked"], round(report["error_rate"], 3),
                  round(report["capacity_bits_per_symbol"], 4),
                  report["eliminated"])
    table.emit()
    assert not reports["open"]["eliminated"]
    for defense in ("crp", "ctd", "mpr"):
        assert reports[defense]["eliminated"], defense
