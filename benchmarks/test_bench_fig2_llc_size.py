"""Fig. 2: impact of LLC size on covert-channel throughput + eviction cost.

Paper: direct-memory-access attack sustains 11.27 Mb/s across all LLC
sizes; the baseline (eviction) attack peaks at 2.29 Mb/s and degrades as
the LLC (and its lookup latency) grows; eviction latency rises with size.

The sweep runs through :mod:`repro.exp`: points fan out across worker
processes and land in the shared result cache, so re-runs replay from
disk until the simulator's code changes.
"""

from repro.exp.figures import fig2_sweep

LLC_SIZES_MB = [2, 4, 8, 16, 32, 64]


def test_fig2_llc_size_sweep(benchmark, result_table, run_points):
    points = fig2_sweep(LLC_SIZES_MB)
    outcome = benchmark.pedantic(lambda: run_points(points),
                                 rounds=1, iterations=1)
    rows = list(zip(LLC_SIZES_MB, outcome.results))
    table = result_table(
        "fig2_llc_size",
        ["llc_mb", "direct_mbps", "baseline_mbps", "eviction_latency_cycles"],
        title="Fig. 2: throughput + eviction latency vs LLC size (16-way)")
    for size, point in rows:
        table.add(size, round(point["direct_mbps"], 2),
                  round(point["baseline_mbps"], 2),
                  round(point["eviction_latency_cycles"]))
    table.emit()

    direct = [p["direct_mbps"] for _s, p in rows]
    baseline = [p["baseline_mbps"] for _s, p in rows]
    eviction = [p["eviction_latency_cycles"] for _s, p in rows]
    # Direct attack: ~11.27 Mb/s, flat across sizes.
    assert all(abs(d - 11.27) / 11.27 < 0.12 for d in direct)
    # Baseline: bounded by 2.29 Mb/s and monotonically degrading.
    assert max(baseline) <= 2.29 * 1.10
    assert baseline[-1] < baseline[0]
    # Eviction latency grows with LLC size.
    assert eviction[-1] > eviction[0]
