"""Fig. 3: impact of LLC associativity on throughput + eviction latency.

Paper: at a fixed 16 MB LLC, raising the way count from 2 to 128 inflates
the eviction set (one access per way) and the lookup latency, collapsing
the baseline attack's throughput; the direct attack is unaffected.

Runs through :mod:`repro.exp` (parallel workers + shared result cache).
"""

from repro.exp.figures import fig3_sweep

LLC_WAYS = [2, 4, 8, 16, 32, 64, 128]


def test_fig3_llc_ways_sweep(benchmark, result_table, run_points):
    points = fig3_sweep(LLC_WAYS)
    outcome = benchmark.pedantic(lambda: run_points(points),
                                 rounds=1, iterations=1)
    rows = list(zip(LLC_WAYS, outcome.results))
    table = result_table(
        "fig3_llc_ways",
        ["llc_ways", "direct_mbps", "baseline_mbps", "eviction_latency_cycles"],
        title="Fig. 3: throughput + eviction latency vs LLC ways (16 MB)")
    for ways, point in rows:
        table.add(ways, round(point["direct_mbps"], 2),
                  round(point["baseline_mbps"], 2),
                  round(point["eviction_latency_cycles"]))
    table.emit()

    direct = [p["direct_mbps"] for _w, p in rows]
    baseline = [p["baseline_mbps"] for _w, p in rows]
    eviction = [p["eviction_latency_cycles"] for _w, p in rows]
    # Direct attack flat regardless of associativity.
    assert max(direct) - min(direct) < 0.05 * max(direct)
    # Baseline throughput decreases significantly with more ways...
    assert baseline[-1] < baseline[0] / 4
    # ...because evictions get proportionally more expensive.
    assert eviction[-1] > eviction[0] * 8
