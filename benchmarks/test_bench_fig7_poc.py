"""Fig. 7: proof-of-concept validation.

The receiver's measured latency per bank while decoding a 16-bit message,
for (a) IMPACT-PnM PEI probes and (b) IMPACT-PuM RowClone probes: hits
sit below the 150-cycle threshold, conflicts above, so the complete
message decodes with one fixed threshold.
"""

from repro import System, SystemConfig
from repro.analysis import split_by_bit, summarize_latencies
from repro.attacks import ImpactPnmChannel, ImpactPumChannel, random_bits

MESSAGE = random_bits(16, seed=42)
THRESHOLD = 150


def run_poc():
    pnm = ImpactPnmChannel(System(SystemConfig.paper_default()),
                           banks=list(range(16)))
    pum = ImpactPumChannel(System(SystemConfig.paper_default()))
    return pnm.transmit(MESSAGE), pum.transmit(MESSAGE)


def test_fig7_poc_per_bank_latencies(benchmark, result_table):
    pnm_result, pum_result = benchmark.pedantic(run_poc, rounds=1,
                                                iterations=1)
    table = result_table(
        "fig7_poc",
        ["bank", "bit", "pnm_latency", "pnm_decoded", "pum_latency",
         "pum_decoded"],
        title=f"Fig. 7: receiver latency per bank, 16-bit message, "
              f"threshold {THRESHOLD} cycles")
    for bank in range(16):
        bit = MESSAGE[bank]
        table.add(bank, bit,
                  pnm_result.probe_latencies[bank], pnm_result.received[bank],
                  pum_result.probe_latencies[bank], pum_result.received[bank])
    table.emit()

    for result in (pnm_result, pum_result):
        assert result.received == MESSAGE  # complete message decoded
        zeros, ones = split_by_bit(result.probe_latencies, MESSAGE)
        assert max(zeros) < THRESHOLD < min(ones)

    # Print the latency-distribution summary the figure visualizes.
    for name, result in (("PnM", pnm_result), ("PuM", pum_result)):
        zeros, ones = split_by_bit(result.probe_latencies, MESSAGE)
        print(f"IMPACT-{name} hits:      {summarize_latencies(zeros).summary()}")
        print(f"IMPACT-{name} conflicts: {summarize_latencies(ones).summary()}")
