"""Fig. 8: covert-channel throughput across LLC sizes, all seven attacks.

Paper's five key observations (§5.3):
  1. IMPACT-PnM (12.87 Mb/s) and IMPACT-PuM (14.16 Mb/s) dominate every
     other vector, independent of LLC size — up to 4.91x / 5.41x the
     state-of-the-art DRAMA-clflush.
  2. IMPACT-PuM beats IMPACT-PnM by ~10% (parallel RowClone sender).
  3. DRAMA-eviction, DRAMA-clflush, and Streamline degrade as the LLC
     grows (lookup latency tax).
  4. The DMA attack is flat (~5.27 Mb/s) but ~2.4x slower than IMPACT-PnM
     (software-stack overheads).
  5. PnM-OffChip peaks at ~12.6 Mb/s and falls as the predictor caches
     more on larger LLCs.

DRAMA and Streamline follow the paper's methodology: Streamline is the
analytical upper bound validated against its published hardware numbers;
the DRAMA variants are fully simulated.

Each LLC size is one :mod:`repro.exp` sweep point
(:func:`repro.exp.figures.fig8_point`), so the four sizes run on four
worker processes and cached re-runs replay in milliseconds.
"""

from repro.exp.figures import fig8_sweep

LLC_SIZES_MB = [8, 16, 32, 64]

ATTACKS = ["DRAMA-eviction", "DRAMA-clflush", "Streamline",
           "Streamline-bound", "DMA-engine", "PnM-OffChip", "IMPACT-PnM",
           "IMPACT-PuM"]


def test_fig8_throughput_across_llc_sizes(benchmark, result_table, run_points):
    sweep = fig8_sweep(LLC_SIZES_MB)
    outcome = benchmark.pedantic(lambda: run_points(sweep),
                                 rounds=1, iterations=1)
    points = dict(zip(LLC_SIZES_MB, outcome.results))
    table = result_table(
        "fig8_throughput",
        ["llc_mb"] + ATTACKS,
        title="Fig. 8: covert-channel throughput (Mb/s) vs LLC size")
    for size in LLC_SIZES_MB:
        table.add(size, *[round(points[size][a], 2) for a in ATTACKS])
    table.emit()

    smallest, largest = points[LLC_SIZES_MB[0]], points[LLC_SIZES_MB[-1]]

    # Observation 1: IMPACT dominates everywhere; headline throughputs.
    for size in LLC_SIZES_MB:
        p = points[size]
        others = [p[a] for a in ATTACKS if not a.startswith("IMPACT")]
        assert p["IMPACT-PnM"] > max(others)
        assert p["IMPACT-PuM"] > max(others)
    assert abs(smallest["IMPACT-PnM"] - 12.87) / 12.87 < 0.08
    assert abs(smallest["IMPACT-PuM"] - 14.16) / 14.16 < 0.08
    ratio_pnm = largest["IMPACT-PnM"] / largest["DRAMA-clflush"]
    ratio_pum = largest["IMPACT-PuM"] / largest["DRAMA-clflush"]
    assert abs(ratio_pnm - 4.91) / 4.91 < 0.15
    assert abs(ratio_pum - 5.41) / 5.41 < 0.15

    # Observation 2: PuM ~10% above PnM.
    for size in LLC_SIZES_MB:
        advantage = points[size]["IMPACT-PuM"] / points[size]["IMPACT-PnM"]
        assert 1.02 < advantage < 1.20

    # Observation 3: cache-mediated attacks degrade with LLC size.
    for attack in ("DRAMA-eviction", "DRAMA-clflush", "Streamline",
                   "Streamline-bound"):
        assert largest[attack] < smallest[attack]
    # The simulated Streamline respects its §5.1 analytical upper bound.
    for size in LLC_SIZES_MB:
        assert points[size]["Streamline"] <= points[size]["Streamline-bound"]

    # Observation 4: DMA flat, ~2.4x slower than IMPACT-PnM.
    assert abs(largest["DMA-engine"] - smallest["DMA-engine"]) \
        < 0.1 * smallest["DMA-engine"]
    assert 1.9 < smallest["IMPACT-PnM"] / smallest["DMA-engine"] < 3.0

    # Observation 5: PnM-OffChip near IMPACT-PnM at 8 MB, degraded at 64 MB.
    assert abs(smallest["PnM-OffChip"] - 12.64) / 12.64 < 0.08
    assert largest["PnM-OffChip"] < smallest["PnM-OffChip"]
