"""Fig. 9: sender-send vs receiver-read cycle breakdown (16-bit message).

Paper: the IMPACT-PuM sender transmits the whole message with one parallel
RowClone, ~14x faster than IMPACT-PnM's 16 sequential PEIs; receivers take
similar time, and PnM hides its slow sender behind semaphore pipelining,
ending up only ~10% behind PuM in throughput.
"""

from repro import System, SystemConfig
from repro.attacks import ImpactPnmChannel, ImpactPumChannel


def run_breakdowns():
    pnm = ImpactPnmChannel(System(SystemConfig.paper_default()),
                           banks=list(range(16)))
    pum = ImpactPumChannel(System(SystemConfig.paper_default()))
    return (pnm.sender_receiver_breakdown(bits=16, seed=3),
            pum.sender_receiver_breakdown(bits=16, seed=3))


def test_fig9_sender_receiver_breakdown(benchmark, result_table):
    pnm, pum = benchmark.pedantic(run_breakdowns, rounds=1, iterations=1)
    table = result_table(
        "fig9_breakdown",
        ["attack", "send_cycles", "read_cycles"],
        title="Fig. 9: cycles to send/read a 16-bit message")
    table.add("IMPACT-PnM", pnm["send_cycles"], pnm["read_cycles"])
    table.add("IMPACT-PuM", pum["send_cycles"], pum["read_cycles"])
    table.emit()

    speedup = pnm["send_cycles"] / pum["send_cycles"]
    print(f"PuM sender speedup over PnM sender: {speedup:.1f}x (paper ~14x)")
    assert 10 <= speedup <= 20
    # Receivers probe bank by bank in both attacks: similar read times.
    assert 0.5 < pnm["read_cycles"] / pum["read_cycles"] < 2.0
