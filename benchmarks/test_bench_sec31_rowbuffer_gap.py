"""§3.1 microbenchmark: the row-buffer hit/conflict latency gap.

Paper: "a row buffer conflict takes 74 CPU cycles more than a hit, which
is large enough to detect."
"""

from repro import System, SystemConfig
from repro.sim import Scheduler


def measure_gap(system):
    latencies = {}

    def body(ctx, sys_):
        a = sys_.address_of(bank=0, row=10)
        b = sys_.address_of(bank=0, row=20)
        timer = sys_.new_timer()
        sys_.controller.access(a, ctx.now)  # open row 10
        ctx.advance(1000)
        timer.start(ctx)
        hit = sys_.controller.access(a, ctx.now)
        ctx.advance_to(hit.finish)
        latencies["hit"] = timer.stop(ctx)
        ctx.advance(1000)
        timer.start(ctx)
        conflict = sys_.controller.access(b, ctx.now)
        ctx.advance_to(conflict.finish)
        latencies["conflict"] = timer.stop(ctx)
        yield None

    sched = Scheduler()
    sched.spawn(body, system, name="microbench")
    sched.run()
    return latencies


def test_sec31_row_buffer_gap(benchmark, result_table):
    system = System(SystemConfig.paper_default())
    latencies = benchmark.pedantic(
        lambda: measure_gap(System(SystemConfig.paper_default())),
        rounds=3, iterations=1)
    gap = latencies["conflict"] - latencies["hit"]
    table = result_table(
        "sec31_rowbuffer_gap",
        ["measurement", "cycles", "paper"],
        title="Sec 3.1: row-buffer hit vs conflict latency (CPU cycles)")
    table.add("row-buffer hit", latencies["hit"], "-")
    table.add("row-buffer conflict", latencies["conflict"], "-")
    table.add("conflict - hit gap", gap, "~74")
    table.emit()
    assert 60 <= gap <= 85
