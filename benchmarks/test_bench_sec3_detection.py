"""§3: cache-monitoring detection is inapplicable to PiM attacks.

The paper's hard-to-mitigate argument: detectors that watch cache-side
performance counters (miss ratios, flush rates — [63-66]) catch the
classic channels but read all-zero counters for IMPACT, because PiM
operations never enter the cache hierarchy.
"""

from dataclasses import replace

from repro import SystemConfig
from repro.attacks import (
    DmaEngineChannel,
    DramaClflushChannel,
    DramaEvictionChannel,
    ImpactPnmChannel,
    ImpactPumChannel,
)
from repro.detection import run_detection_experiment

CHANNELS = [
    ("DRAMA-clflush", DramaClflushChannel, "row", 96),
    ("DRAMA-eviction", DramaEvictionChannel, "xor", 48),
    ("DMA-engine", DmaEngineChannel, "row", 128),
    ("IMPACT-PnM", ImpactPnmChannel, "row", 192),
    ("IMPACT-PuM", ImpactPumChannel, "row", 192),
]


def sweep():
    reports = {}
    for name, cls, mapping, bits in CHANNELS:
        config_factory = lambda m=mapping: replace(
            SystemConfig.paper_default(), mapping=m)
        reports[name] = run_detection_experiment(
            lambda s, c=cls: c(s), config_factory, bits=bits)
    return reports


def test_sec3_cache_monitor_detection(benchmark, result_table):
    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = result_table(
        "sec3_detection",
        ["attack", "side", "cache_accesses", "llc_misses", "clflushes",
         "flagged", "reason"],
        title="Sec 3: PMU-based detector vs each covert channel")
    for name, sides in reports.items():
        for side, report in sides.items():
            row = report.row()
            table.add(name, side, row["accesses"], row["misses"],
                      row["clflushes"], row["flagged"], row["reason"])
    table.emit()

    # The cache-mediated channels are caught...
    assert any(reports["DRAMA-clflush"][s].flagged
               for s in ("sender", "receiver"))
    assert any(reports["DRAMA-eviction"][s].flagged
               for s in ("sender", "receiver"))
    # ...while the cache-bypassing ones produce zero observable events.
    for name in ("IMPACT-PnM", "IMPACT-PuM", "DMA-engine"):
        for side in ("sender", "receiver"):
            report = reports[name][side]
            assert not report.flagged, (name, side)
            assert report.accesses == 0
            assert report.clflushes == 0
