"""§4.3 step 4 + §5.4 precision: from leaked banks to genome inference.

The paper defers the completion attack to the imputation literature
[110-113] and argues qualitatively that more banks leak *more precise*
information (fewer candidate entries per bank).  This bench makes that
argument quantitative: the attacker matches leaked bank sequences against
the (public) index layout and identifies which reference region the
victim's read came from; identification sharpens as the bank count grows.
"""

from repro.attacks import ReadIdentifier
from repro.genomics import ReferenceIndex, generate_reference, sample_reads

REFERENCE = generate_reference(12_000, seed=51)
BASE_INDEX = ReferenceIndex(REFERENCE, num_banks=64)
BANK_COUNTS = [16, 64, 256, 1024]
CANDIDATE_STARTS = list(range(0, 11_800, 200))


def sweep():
    reads = sample_reads(REFERENCE, num_reads=12, read_length=150,
                         error_rate=0.0, seed=52)
    results = {}
    for banks in BANK_COUNTS:
        index = BASE_INDEX.restripe(banks)
        identifier = ReadIdentifier(REFERENCE, index)
        trials = []
        correct = 0
        margins = []
        for _read, true_pos in reads:
            # Snap to the candidate grid for rank accounting.
            snapped = min(CANDIDATE_STARTS, key=lambda s: abs(s - true_pos))
            leak = identifier.predicted_banks(true_pos)
            outcome = identifier.identify(leak, CANDIDATE_STARTS)
            if abs(outcome.best.region_start - true_pos) <= 200:
                correct += 1
            margins.append(outcome.margin)
        results[banks] = {
            "accuracy": correct / len(reads),
            "mean_margin": sum(margins) / len(margins),
            "entries_per_bank": index.entries_per_bank,
        }
    return results


def test_sec43_inference_precision(benchmark, result_table):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = result_table(
        "sec43_inference",
        ["banks", "identification_accuracy", "mean_margin",
         "entries_per_bank"],
        title="Sec 4.3/5.4: read-region identification from leaked banks")
    for banks in BANK_COUNTS:
        r = results[banks]
        table.add(banks, round(r["accuracy"], 3), round(r["mean_margin"], 3),
                  round(r["entries_per_bank"], 2))
    table.emit()

    accuracies = [results[b]["accuracy"] for b in BANK_COUNTS]
    margins = [results[b]["mean_margin"] for b in BANK_COUNTS]
    # §5.4: precision improves with bank count.
    assert accuracies[-1] >= accuracies[0]
    assert accuracies[-1] >= 0.9
    assert margins[-1] > margins[0]
    # Candidate ambiguity halves per doubling.
    entries = [results[b]["entries_per_bank"] for b in BANK_COUNTS]
    assert entries == sorted(entries, reverse=True)
