"""Table 1: efficiency and effectiveness of attack primitives.

Prints the paper's qualitative property matrix alongside the *measured*
cost of one direct-memory observation per primitive on the Table 2
system — the quantitative story behind the check marks.
"""

from repro import System, SystemConfig
from repro.attacks import TABLE1, measure_all


def test_table1_attack_primitives(benchmark, result_table):
    system = System(SystemConfig.paper_default())
    latencies = benchmark.pedantic(
        lambda: measure_all(System(SystemConfig.paper_default())),
        rounds=1, iterations=1)
    table = result_table(
        "table1_primitives",
        ["primitive", "no_cache_lookup", "no_excessive_accesses",
         "timing_detectability", "isa_guarantee", "probe_cycles"],
        title="Table 1: attack primitives (+ measured probe latency)")
    for props in TABLE1:
        row = props.row()
        table.add(row["primitive"], row["no_cache_lookup"],
                  row["no_excessive_accesses"], row["timing_detectability"],
                  row["isa_guarantee"], latencies[props.name])
    table.emit()
    # The paper's bottom line: PiM operations dominate the matrix and are
    # the cheapest full-DRAM observation among reliable primitives.
    assert latencies["pim-operations"] < latencies["dma"]
    assert latencies["pim-operations"] < latencies["eviction-sets"]
