"""Table 2: the simulated system configuration."""

from repro import SystemConfig


def test_table2_simulation_configuration(benchmark, result_table):
    config = benchmark.pedantic(SystemConfig.paper_default,
                                rounds=1, iterations=1)
    table = result_table("table2_config", ["component", "configuration"],
                         title="Table 2: simulation configuration")
    for row in config.describe():
        table.add(row["component"], row["configuration"])
    table.emit()
    assert config.cpu_ghz == 2.6
    assert config.geometry.banks_per_rank == 16
    assert config.geometry.ranks == 4
    assert config.timings.t_rcd_ns == 13.5
