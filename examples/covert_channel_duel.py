#!/usr/bin/env python3
"""Covert-channel shoot-out: all seven §5 attack vectors on one machine.

Transmits the same random message over each channel of Fig. 8 and ranks
them — reproducing the paper's headline comparison on a single LLC
configuration (pass an LLC size in MB to sweep, default 8).

Run:  python examples/covert_channel_duel.py [llc_mb]
"""

import sys
from dataclasses import replace

from repro import System, SystemConfig
from repro.analysis import format_table
from repro.attacks import (
    DmaEngineChannel,
    DramaClflushChannel,
    DramaEvictionChannel,
    ImpactPnmChannel,
    ImpactPumChannel,
    PnmOffchipChannel,
    StreamlineChannel,
    streamline_upper_bound_mbps,
)


def main(llc_mb: float = 8.0) -> None:
    base = SystemConfig.paper_default().with_llc(llc_mb)
    print(f"LLC: {llc_mb:g} MB ({base.hierarchy.llc_latency_cycles}-cycle "
          f"lookup under the CACTI model)\n")

    rows = []
    channels = [
        ("DRAMA-eviction", DramaEvictionChannel, replace(base, mapping="xor"), 64),
        ("DRAMA-clflush", DramaClflushChannel, base, 192),
        ("Streamline", StreamlineChannel, base, 192),
        ("DMA-engine", DmaEngineChannel, base, 384),
        ("PnM-OffChip", PnmOffchipChannel, base, 512),
        ("IMPACT-PnM", ImpactPnmChannel, base, 512),
        ("IMPACT-PuM", ImpactPumChannel, base, 512),
    ]
    for name, cls, config, bits in channels:
        result = cls(System(config)).transmit_random(bits, seed=7)
        rows.append((name, result.throughput_mbps, result.error_rate,
                     result.cycles_per_bit))
    rows.append(("Streamline (bound)",
                 streamline_upper_bound_mbps(System(base)), 0.0, float("nan")))

    rows.sort(key=lambda r: r[1], reverse=True)
    best = rows[0][1]
    table_rows = [(name, f"{mbps:.2f}", f"{err:.1%}",
                   "-" if cpb != cpb else f"{cpb:.0f}",
                   f"{best / mbps:.2f}x" if mbps else "-")
                  for name, mbps, err, cpb in rows]
    print(format_table(
        ["channel", "Mb/s", "error", "cycles/bit", "slowdown vs best"],
        table_rows,
        title="Covert-channel throughput ranking (Fig. 8, one LLC point)"))
    print("\nPaper: IMPACT-PuM 14.16 Mb/s > IMPACT-PnM 12.87 > PnM-OffChip "
          "12.64 > DMA 5.27 >> DRAMA-clflush ~2.6")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 8.0)
