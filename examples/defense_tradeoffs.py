#!/usr/bin/env python3
"""Security vs performance of the §6 defenses.

For each defense (MPR bank partitioning, closed-row policy, constant-time
DRAM) this example shows both sides of the trade-off the paper measures:

- **security** — mount IMPACT-PnM against the defended system and report
  the surviving channel capacity;
- **performance** — the Fig. 11 slowdown on a memory-bound graph workload.

Run:  python examples/defense_tradeoffs.py
"""

from repro.analysis import format_table
from repro.attacks import ImpactPnmChannel
from repro.defenses import evaluate_channel_under_defense
from repro.workloads import evaluate_defenses


def main() -> None:
    print("security: mounting IMPACT-PnM against each defense...")
    security = {}
    for defense in ("open", "mpr", "crp", "ctd"):
        report = evaluate_channel_under_defense(
            lambda s: ImpactPnmChannel(s), defense, bits=192)
        security[defense] = report
        print("  " + report.summary())

    print("\nperformance: 2-core BFS + PR under each row policy "
          "(scaled Fig. 11 runs; this takes a minute)...")
    perf = {name: evaluate_defenses(name, max_refs=30_000)
            for name in ("BFS", "PR")}

    rows = []
    for defense in ("mpr", "crp", "ctd"):
        report = security[defense]
        if defense == "mpr":
            cost = "no sharing; bank-granular allocation (see §6 drawbacks)"
        else:
            cost = " / ".join(
                f"{name} +{perf[name].overhead(defense):.0%}"
                for name in ("BFS", "PR"))
        rows.append((defense.upper(),
                     "eliminated" if report.channel_eliminated else "SURVIVES",
                     f"{report.capacity_bits_per_symbol:.4f}",
                     cost))
    print()
    print(format_table(
        ["defense", "channel", "capacity (b/sym)", "performance cost"],
        rows, title="Defense trade-offs (§6)"))
    print("\nPaper: CTD costs 26% and CRP 15% on average across the five "
          "GraphBIG workloads; all three defenses eliminate the channel.")


if __name__ == "__main__":
    main()
