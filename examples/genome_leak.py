#!/usr/bin/env python3
"""The §4.3 side channel end to end: leaking a genome's mapping profile.

1. Build a reference genome and its minimizer hash table, striped across
   the PiM system's DRAM banks (the shared index every user probes).
2. A victim maps reads from a *private* sample genome; its seeding step
   activates the bank holding each probed hash bucket.
3. A concurrent attacker rescans all banks with PEIs after each probe and
   decodes which bucket group the victim touched — narrowing each read's
   candidate reference positions without ever seeing the read.

Run:  python examples/genome_leak.py
"""

from repro import System, SystemConfig
from repro.attacks import ReadMappingSideChannel
from repro.genomics import (
    PimReadMapper,
    ReferenceIndex,
    generate_reference,
    mutate_genome,
    sample_reads,
)

NUM_BANKS = 1024


def main() -> None:
    config = (SystemConfig.paper_default()
              .with_banks(NUM_BANKS)
              .with_noise(0.0105))
    system = System(config)

    print("building reference genome + bank-striped minimizer index...")
    reference = generate_reference(20_000, seed=1)
    index = ReferenceIndex(reference, num_banks=NUM_BANKS)
    print(f"  {len(index)} hash-table buckets over {NUM_BANKS} banks "
          f"({index.entries_per_bank:.2f} buckets/bank)")

    print("victim: sequencing a private sample genome and mapping reads...")
    sample = mutate_genome(reference, seed=2)
    reads = sample_reads(sample, num_reads=5, read_length=150,
                         error_rate=0.002, seed=3)
    mapper = PimReadMapper(system, reference, index)
    for read, _true in reads[:3]:
        mapping = mapper.map_read(read)
        where = f"position {mapping.position}" if mapping else "unmapped"
        print(f"  read maps to {where}")

    schedule = mapper.trace_for_reads([r for r, _ in reads])
    print(f"victim's seeding will issue {len(schedule)} hash-table probes")

    print("attacker: scanning all banks after each victim probe...")
    channel = ReadMappingSideChannel(system)
    result = channel.run(schedule[:120],
                         entries_per_bank=index.entries_per_bank)
    print(result.summary())
    print(f"  leaked {result.leaked_bits:.0f} bits "
          f"({result.bits_per_leak:.0f} per observed probe) at "
          f"{result.throughput_mbps:.2f} Mb/s, accuracy {result.accuracy:.1%}")
    print(f"  (paper: 7.57 Mb/s at 96% accuracy with 1024 banks)")

    # What one leak buys the attacker: candidate buckets -> positions.
    leak_bank = schedule[0].bank
    candidates = index.candidates_in_bank(leak_bank)
    print(f"\none decoded probe (bank {leak_bank}) narrows the victim's "
          f"bucket to {len(candidates)} candidates out of {len(index)}")

    # Step 4 (Fig. 6): completion — match the leaked bank sequence
    # against the public index layout to identify the read's region.
    from repro.attacks import ReadIdentifier
    identifier = ReadIdentifier(reference, index)
    first_read, true_pos = reads[0]
    first_read_leak = [a.bank for a in mapper.seed_accesses(first_read)]
    candidate_grid = list(range(0, len(reference) - 150, 250))
    outcome = identifier.identify(first_read_leak, candidate_grid)
    print(f"\ncompletion attack on the first read (true region ~{true_pos}):")
    for entry in outcome.ranking[:3]:
        print(f"  region {entry.region_start:>6}  score {entry.score:.3f}")
    best = outcome.best.region_start
    verdict = "IDENTIFIED" if abs(best - true_pos) <= 250 else "missed"
    print(f"  -> top-ranked region {best}: {verdict} "
          f"(margin {outcome.margin:.3f})")


if __name__ == "__main__":
    main()
