#!/usr/bin/env python3
"""DRAMA's classic demonstration: spying on keystroke timing (§2.3).

A victim's input handler appends each keystroke to a buffer, activating
the buffer's DRAM row.  An attacker with a row in the same bank probes it
in a flush+reload loop: a row-buffer conflict marks a keystroke.  The
recovered inter-keystroke intervals are the raw material for typing-
dynamics inference.

This is the processor-centric ancestor of the IMPACT side channel — same
physical signal, but every probe fights the cache hierarchy, which is
the overhead §4's PiM attacks eliminate.

Run:  python examples/keystroke_spy.py
"""

from repro import System, SystemConfig
from repro.attacks import DramaKeystrokeSpy, poisson_keystrokes


def main() -> None:
    system = System(SystemConfig.paper_default())
    spy = DramaKeystrokeSpy(system)

    events = poisson_keystrokes(10, mean_gap_cycles=80_000, seed=4)
    print(f"victim types {len(events)} keys "
          f"(~{80_000 / 2.6e3:.0f} us apart on a 2.6 GHz clock)")

    result = spy.spy(events)
    print(f"attacker issued {spy.probe_count} probes "
          f"(~{result.probe_period_cycles:.0f} cycles apart)\n")
    print(f"{'true time':>12} {'detected':>12} {'delay':>8}")
    for true_time, detected in zip(result.true_times, result.detected_times):
        print(f"{true_time:>12} {detected:>12} {detected - true_time:>8}")
    print(f"\nrecall {result.recall:.0%}, precision {result.precision:.0%}")
    error = result.interval_error_cycles()
    if error is not None:
        print(f"inter-keystroke intervals recovered to within "
              f"{error:.0f} cycles ({error / 2.6:.0f} ns) — typing dynamics "
              f"leak cleanly")


if __name__ == "__main__":
    main()
