#!/usr/bin/env python3
"""Quickstart: mount the IMPACT-PnM covert channel on the paper's system.

Builds the Table 2 machine, transmits a secret message from a sender
process to a receiver process through the shared DRAM row buffers using
PIM-enabled instructions, and reports the channel quality — the §4.1
attack in ~30 lines of API use.

Run:  python examples/quickstart.py
"""

from repro import System, SystemConfig
from repro.attacks import ImpactPnmChannel


def text_to_bits(text: str) -> list:
    return [(byte >> i) & 1 for byte in text.encode() for i in range(8)]


def bits_to_text(bits: list) -> str:
    data = bytearray()
    for i in range(0, len(bits) - 7, 8):
        data.append(sum(bit << j for j, bit in enumerate(bits[i:i + 8])))
    return data.decode(errors="replace")


def main() -> None:
    # The simulated PiM-enabled machine from Table 2: 4-core 2.6 GHz x86,
    # 3-level caches, DDR4-2400 with 64 banks, PEI + RowClone engines.
    system = System(SystemConfig.paper_default())

    secret = "PIM exfiltrates!"
    message = text_to_bits(secret)
    print(f"sender transmits {len(message)} bits: {secret!r}")

    channel = ImpactPnmChannel(system)
    result = channel.transmit(message)

    print(f"receiver decoded: {bits_to_text(result.received)!r}")
    print(result.summary())
    print(f"  -> {result.throughput_mbps:.2f} Mb/s "
          f"(paper: 12.87 Mb/s on this configuration)")
    print(f"  -> cache hierarchy saw "
          f"{system.hierarchy.stats.demand_accesses} demand accesses "
          f"(the attack bypasses it entirely)")


if __name__ == "__main__":
    main()
