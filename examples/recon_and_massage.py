#!/usr/bin/env python3
"""The attack's prologue: reverse-engineer the DRAM mapping, then co-locate.

Before the §4 channels can run, the attacker needs the physical bank
function (§2.3's DRAMA capability) and addresses sharing the victim's
bank (§4.1's memory massaging).  Both come from timing alone:

1. classify every physical-address bit by probing address pairs,
2. recover the XOR bank hash the controller uses,
3. collect co-located rows by timing candidate addresses,
4. run the channel over the recovered co-location.

Run:  python examples/recon_and_massage.py
"""

from dataclasses import replace

from repro import System, SystemConfig
from repro.analysis import latency_histogram
from repro.attacks import AddressReconnaissance, ImpactPnmChannel
from repro.cache import HierarchyConfig
from repro.dram import DRAMGeometry


def main() -> None:
    # A machine with the DRAMA-style XOR bank hash (the hard case).
    config = SystemConfig(
        geometry=DRAMGeometry(ranks=1, banks_per_rank=16, rows_per_bank=512),
        mapping="xor",
        hierarchy=HierarchyConfig(num_cores=2, prefetchers_enabled=False),
        num_cores=2)
    system = System(config)
    recon = AddressReconnaissance(system)

    print("step 1-2: recovering the bank function by timing...")
    model = recon.recover_bank_function()
    print(f"  {model.describe()}")
    print(f"  cost: {recon.timing_probes} timed probes")

    print("\nstep 3: massaging — collecting rows co-located with the "
          "victim's bank...")
    victim_bank = 11
    base = system.address_of(victim_bank, 7)
    colocated = recon.find_same_bank_addresses(base, count=3)
    mapper = system.controller.mapper
    for addr in colocated:
        loc = mapper.decode(addr)
        print(f"  {addr:#012x} -> bank {loc.bank}, row {loc.row}")

    print("\nstep 4: running IMPACT-PnM over the recovered co-location...")
    # Single shared bank => one bit per batch (strict lockstep).
    channel = ImpactPnmChannel(system, banks=[victim_bank], batch_size=1)
    threshold = channel.calibrate_threshold(calibration_rows=(500, 510))
    print(f"  calibrated decode threshold: {threshold} cycles")
    result = channel.transmit_random(64, seed=1)
    print(f"  {result.summary()}")
    print()
    print(latency_histogram(result.probe_latencies, bucket_cycles=10,
                            threshold=threshold,
                            title="receiver probe latencies (Fig. 7 shape)"))


if __name__ == "__main__":
    main()
