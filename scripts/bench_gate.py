#!/usr/bin/env python
"""CI ops/s regression gate for the simulator hot path.

Measures the raw demand-access rate (the ``simulator`` section of the
bench-quick record) fresh, compares it against the newest committed
``BENCH_PR*.json`` at the repo root, and fails when the fresh number
drops more than ``--threshold`` (default 15%) below the committed one.
Intended as a cheap CI step — it runs only the simulator micro-bench
(median of ``--runs`` samples on a quiesced heap, seconds not minutes),
not the figure sweeps::

    PYTHONPATH=src python scripts/bench_gate.py [--threshold 0.15] [--runs 5]

The gate exists because the hot path regressed silently across PRs 2-5
(43.8k -> 35.6k ops/s in the committed records) with every functional
test green; nothing in CI watched throughput.  Shared-runner noise is
absorbed three ways: a small-N median rather than a single sample, the
heap quiesce (GC pauses were the bulk of the historical regression),
and the threshold margin.  ``--measure-only`` prints the fresh number
without judging it (used to seed a baseline on new machines).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import statistics
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def newest_baseline(root: str) -> "tuple":
    """``(path, ops_per_sec)`` of the highest-numbered BENCH_PR*.json
    carrying a simulator section."""
    best = None
    for path in glob.glob(os.path.join(root, "BENCH_PR*.json")):
        match = re.search(r"BENCH_PR(\d+)\.json$", path)
        if not match:
            continue
        try:
            with open(path) as handle:
                ops = json.load(handle)["simulator"]["ops_per_sec"]
        except (OSError, KeyError, ValueError):
            continue
        rank = int(match.group(1))
        if best is None or rank > best[0]:
            best = (rank, path, ops)
    if best is None:
        return None, None
    return best[1], best[2]


def measure(runs: int) -> dict:
    """Fresh simulator ops/s: same workload and hygiene as bench-quick's
    ``simulator`` section (see ``scripts/bench_snapshot.py``)."""
    import gc

    from repro.config import SystemConfig
    from repro.system import System

    gc.collect()
    gc.freeze()
    n = 200_000
    addrs = [(i * 64 * 7) % (1 << 24) for i in range(n)]
    samples = []
    try:
        for _ in range(runs):
            system = System(SystemConfig.paper_default())
            started = time.perf_counter()
            system.hierarchy.access_batch(0, addrs, 0, pc=0,
                                          backend="vector")
            samples.append(n / (time.perf_counter() - started))
    finally:
        gc.unfreeze()
    return {
        "accesses": n,
        "runs": runs,
        "samples": [round(s) for s in samples],
        "ops_per_sec": round(statistics.median(samples)),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max allowed fractional drop vs the committed "
                             "baseline (default 0.15)")
    parser.add_argument("--runs", type=int, default=5,
                        help="samples for the median (default 5)")
    parser.add_argument("--baseline", default=None,
                        help="explicit baseline JSON (default: newest "
                             "committed BENCH_PR*.json)")
    parser.add_argument("--measure-only", action="store_true",
                        help="print the fresh number and exit 0")
    args = parser.parse_args(argv)

    fresh = measure(args.runs)
    print(f"fresh simulator rate: {fresh['ops_per_sec']:,} ops/s "
          f"(median of {fresh['runs']}; samples "
          f"{', '.join(f'{s:,}' for s in fresh['samples'])})")
    if args.measure_only:
        return 0

    if args.baseline:
        path = args.baseline
        try:
            with open(path) as handle:
                baseline_ops = json.load(handle)["simulator"]["ops_per_sec"]
        except (OSError, KeyError, ValueError) as exc:
            print(f"bench gate: cannot read baseline {path}: {exc}")
            return 2
    else:
        path, baseline_ops = newest_baseline(REPO_ROOT)
        if path is None:
            print("bench gate: no committed BENCH_PR*.json baseline; "
                  "nothing to gate against")
            return 0

    floor = baseline_ops * (1.0 - args.threshold)
    verdict = "OK" if fresh["ops_per_sec"] >= floor else "FAIL"
    print(f"baseline {os.path.basename(path)}: {baseline_ops:,} ops/s; "
          f"floor at -{args.threshold:.0%}: {floor:,.0f} ops/s -> {verdict}")
    if verdict == "FAIL":
        drop = 1.0 - fresh["ops_per_sec"] / baseline_ops
        print(f"bench gate: simulator hot path dropped {drop:.1%} vs "
              f"{os.path.basename(path)} (limit {args.threshold:.0%}). "
              f"If the change intentionally trades speed, refresh the "
              f"committed record via `make bench-quick`.")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
