#!/usr/bin/env python
"""CI ops/s regression gate for the simulator hot path.

Measures the raw demand-access rate (the ``simulator`` section of the
bench-quick record) fresh, compares it against the newest committed
``BENCH_PR*.json`` at the repo root, and fails when the fresh number
drops more than ``--threshold`` (default 15%) below the committed one.
When the committed record carries a ``simulator_miss_batch`` section
(PR 7+), the vectorized miss engine's conflict-replay *speedup* (vector
vs scalar, both measured fresh back-to-back so host-speed drift cancels
out of the ratio) is gated against the recorded speedup — absolute
ops/s on that row swings more than the threshold between runs on a
shared single-vCPU runner, but the ratio is stable.  Older records
without the section skip that check rather than fail, so the gate stays
usable across the PR 6 -> PR 7 boundary.
Intended as a cheap CI step — it runs only the simulator micro-bench
(median of ``--runs`` samples on a quiesced heap, seconds not minutes),
not the figure sweeps::

    PYTHONPATH=src python scripts/bench_gate.py [--threshold 0.15] [--runs 5]

The gate exists because the hot path regressed silently across PRs 2-5
(43.8k -> 35.6k ops/s in the committed records) with every functional
test green; nothing in CI watched throughput.  Shared-runner noise is
absorbed three ways: a small-N median rather than a single sample, the
heap quiesce (GC pauses were the bulk of the historical regression),
and the threshold margin.  ``--measure-only`` prints the fresh number
without judging it (used to seed a baseline on new machines).

On failure the gate prints the metric's full committed trajectory
(``repro.analysis.benchhistory``), so "dropped 18%" comes with the
history needed to tell a real regression from a noisy baseline.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import statistics
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def newest_baseline(root: str) -> "tuple":
    """``(path, record)`` of the highest-numbered BENCH_PR*.json
    carrying a simulator section."""
    best = None
    for path in glob.glob(os.path.join(root, "BENCH_PR*.json")):
        match = re.search(r"BENCH_PR(\d+)\.json$", path)
        if not match:
            continue
        try:
            with open(path) as handle:
                record = json.load(handle)
            record["simulator"]["ops_per_sec"]
        except (OSError, KeyError, ValueError):
            continue
        rank = int(match.group(1))
        if best is None or rank > best[0]:
            best = (rank, path, record)
    if best is None:
        return None, None
    return best[1], best[2]


def measure(runs: int) -> dict:
    """Fresh simulator ops/s: same workload and hygiene as bench-quick's
    ``simulator`` section (see ``scripts/bench_snapshot.py``)."""
    import gc

    from repro.config import SystemConfig
    from repro.system import System

    gc.collect()
    gc.freeze()
    n = 200_000
    addrs = [(i * 64 * 7) % (1 << 24) for i in range(n)]
    samples = []
    try:
        for _ in range(runs):
            system = System(SystemConfig.paper_default())
            started = time.perf_counter()
            system.hierarchy.access_batch(0, addrs, 0, pc=0,
                                          backend="vector")
            samples.append(n / (time.perf_counter() - started))
    finally:
        gc.unfreeze()
    return {
        "accesses": n,
        "runs": runs,
        "samples": [round(s) for s in samples],
        "ops_per_sec": round(statistics.median(samples)),
    }


def measure_miss_batch(runs: int) -> dict:
    """Fresh miss-engine conflict-replay speedup: the same pattern as
    bench-quick's ``simulator_miss_batch.conflict_replay`` row (see
    ``scripts/bench_snapshot.py``).  Scalar and vector are *interleaved*
    — ``runs`` back-to-back pairs, each pair yielding one vector/scalar
    ratio — and the gate judges the best pair.  Both sides are
    re-measured because absolute rates on a shared runner drift more
    than the gate threshold between the snapshot and the check; pairing
    adjacent-in-time samples makes the two sides see the same host
    speed, so a slow window landing mid-measurement degrades one pair's
    ratio, not the whole check (a best-of-each-side ratio is worse: the
    two bests can come from different windows)."""
    import dataclasses
    import gc

    from repro.config import SystemConfig
    from repro.system import System

    from bench_snapshot import conflict_replay_addrs

    gc.collect()
    gc.freeze()
    n = 100_000
    record = {"accesses": n, "runs": runs}
    ratios = []
    samples = {"scalar": [], "vector": []}
    try:
        for _ in range(runs):
            pair = {}
            for backend in ("scalar", "vector"):
                config = SystemConfig.paper_default()
                config = dataclasses.replace(
                    config, hierarchy=dataclasses.replace(
                        config.hierarchy, prefetchers_enabled=False))
                system = System(config)
                addrs = conflict_replay_addrs(system, n)
                started = time.perf_counter()
                system.hierarchy.access_batch(0, addrs, 0,
                                              backend=backend)
                pair[backend] = n / (time.perf_counter() - started)
                samples[backend].append(round(pair[backend]))
            ratios.append(pair["vector"] / pair["scalar"])
    finally:
        gc.unfreeze()
    best = max(range(len(ratios)), key=lambda i: ratios[i])
    record["scalar"] = {"samples": samples["scalar"],
                        "ops_per_sec": samples["scalar"][best]}
    record["vector"] = {"samples": samples["vector"],
                        "ops_per_sec": samples["vector"][best]}
    record["ratios"] = [round(r, 2) for r in ratios]
    record["speedup"] = ratios[best]
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max allowed fractional drop vs the committed "
                             "baseline (default 0.15)")
    parser.add_argument("--runs", type=int, default=5,
                        help="samples for the median (default 5)")
    parser.add_argument("--baseline", default=None,
                        help="explicit baseline JSON (default: newest "
                             "committed BENCH_PR*.json)")
    parser.add_argument("--measure-only", action="store_true",
                        help="print the fresh number and exit 0")
    args = parser.parse_args(argv)

    fresh = measure(args.runs)
    print(f"fresh simulator rate: {fresh['ops_per_sec']:,} ops/s "
          f"(median of {fresh['runs']}; samples "
          f"{', '.join(f'{s:,}' for s in fresh['samples'])})")
    if args.measure_only:
        return 0

    if args.baseline:
        path = args.baseline
        try:
            with open(path) as handle:
                baseline = json.load(handle)
            baseline["simulator"]["ops_per_sec"]
        except (OSError, KeyError, ValueError) as exc:
            print(f"bench gate: cannot read baseline {path}: {exc}")
            return 2
    else:
        path, baseline = newest_baseline(REPO_ROOT)
        if path is None:
            print("bench gate: no committed BENCH_PR*.json baseline; "
                  "nothing to gate against")
            return 0

    failed = False
    baseline_ops = baseline["simulator"]["ops_per_sec"]
    floor = baseline_ops * (1.0 - args.threshold)
    verdict = "OK" if fresh["ops_per_sec"] >= floor else "FAIL"
    print(f"baseline {os.path.basename(path)}: {baseline_ops:,} ops/s; "
          f"floor at -{args.threshold:.0%}: {floor:,.0f} ops/s -> {verdict}")
    if verdict == "FAIL":
        failed = True
        drop = 1.0 - fresh["ops_per_sec"] / baseline_ops
        print(f"bench gate: simulator hot path dropped {drop:.1%} vs "
              f"{os.path.basename(path)} (limit {args.threshold:.0%}). "
              f"If the change intentionally trades speed, refresh the "
              f"committed record via `make bench-quick`.")
        print(_trajectory("simulator.ops_per_sec", fresh["ops_per_sec"]))

    try:
        miss_baseline = float(
            baseline["simulator_miss_batch"]["conflict_replay"]["speedup"])
    except (KeyError, TypeError, ValueError):
        print("bench gate: baseline has no simulator_miss_batch section "
              "(pre-PR 7 record); skipping the miss-engine gate")
        miss_baseline = None
    if miss_baseline is not None:
        fresh_miss = measure_miss_batch(args.runs)
        print(f"fresh miss-engine conflict replay: "
              f"{fresh_miss['scalar']['ops_per_sec']:,} ops/s scalar vs "
              f"{fresh_miss['vector']['ops_per_sec']:,} ops/s vector "
              f"({fresh_miss['speedup']:.2f}x, best of "
              f"{fresh_miss['runs']} interleaved pairs; ratios "
              f"{', '.join(f'{r:.2f}' for r in fresh_miss['ratios'])})")
        miss_floor = miss_baseline * (1.0 - args.threshold)
        miss_ok = fresh_miss["speedup"] >= miss_floor
        print(f"miss-engine baseline {os.path.basename(path)}: "
              f"{miss_baseline:.2f}x speedup; floor at "
              f"-{args.threshold:.0%}: {miss_floor:.2f}x -> "
              f"{'OK' if miss_ok else 'FAIL'}")
        if not miss_ok:
            failed = True
            drop = 1.0 - fresh_miss["speedup"] / miss_baseline
            print(f"bench gate: miss-engine conflict-replay speedup "
                  f"dropped {drop:.1%} vs {os.path.basename(path)} (limit "
                  f"{args.threshold:.0%}). If the change intentionally "
                  f"trades speed, refresh the committed record via "
                  f"`make bench-quick`.")
            print(_trajectory("miss.conflict_replay.speedup",
                              fresh_miss["speedup"]))
    return 1 if failed else 0


def _trajectory(metric: str, fresh_value: float) -> str:
    """The metric's committed history as one diagnostic line (never lets
    a diagnostics import break the gate verdict itself)."""
    try:
        from repro.analysis.benchhistory import format_trajectory

        return "trajectory: " + format_trajectory(REPO_ROOT, metric,
                                                  fresh=fresh_value)
    except Exception as exc:  # pragma: no cover - diagnostics only
        return f"trajectory unavailable: {exc}"


if __name__ == "__main__":
    sys.exit(main())
