#!/usr/bin/env python
"""CI ops/s regression gate for the simulator hot path.

Measures the raw demand-access rate (the ``simulator`` section of the
bench-quick record) fresh, compares it against the newest committed
``BENCH_PR*.json`` at the repo root, and fails when the fresh number
drops more than ``--threshold`` (default 15%) below the committed one.
When the committed record carries a ``simulator_miss_batch`` section
(PR 7+), the vectorized miss engine's conflict-replay *speedup* (vector
vs scalar, both measured fresh back-to-back so host-speed drift cancels
out of the ratio) is gated against the recorded speedup — absolute
ops/s on that row swings more than the threshold between runs on a
shared single-vCPU runner, but the ratio is stable.  Each gate
baselines against the newest committed record that carries *its* metric
(snapshots grow sections over time), so a record missing one section
skips that gate rather than erroring.  The committed ``sweep_engine``
section (PR 10+) is additionally held to absolute acceptance floors:
adaptive rep savings >=2x, straggler-re-dispatch p99 improvement >=1.5x,
zero duplicate commits and zero event-chain errors.
Intended as a cheap CI step — it runs only the simulator micro-bench
(median of ``--runs`` samples on a quiesced heap, seconds not minutes),
not the figure sweeps::

    PYTHONPATH=src python scripts/bench_gate.py [--threshold 0.15] [--runs 5]

The gate exists because the hot path regressed silently across PRs 2-5
(43.8k -> 35.6k ops/s in the committed records) with every functional
test green; nothing in CI watched throughput.  Shared-runner noise is
absorbed three ways: a small-N median rather than a single sample, the
heap quiesce (GC pauses were the bulk of the historical regression),
and the threshold margin.  ``--measure-only`` prints the fresh number
without judging it (used to seed a baseline on new machines).

On failure the gate prints the metric's full committed trajectory
(``repro.analysis.benchhistory``), so "dropped 18%" comes with the
history needed to tell a real regression from a noisy baseline.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import statistics
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def load_records(root: str) -> "list":
    """Every readable BENCH_PR*.json under ``root`` as ``(rank, path,
    record)``, newest PR first."""
    records = []
    for path in glob.glob(os.path.join(root, "BENCH_PR*.json")):
        match = re.search(r"BENCH_PR(\d+)\.json$", path)
        if not match:
            continue
        try:
            with open(path) as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            continue
        if isinstance(record, dict):
            records.append((int(match.group(1)), path, record))
    records.sort(key=lambda item: -item[0])
    return records


def dig(record: dict, dotted: str):
    """Numeric value at a dotted path, or ``None`` when absent."""
    node = record
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def newest_with(records: "list", dotted: str) -> "tuple":
    """``(path, value)`` from the newest record carrying ``dotted``.

    Snapshots grow sections over time; each gate baselines against the
    newest record that *has* its metric, so a snapshot missing one
    section skips that gate instead of silencing (or breaking) all of
    them."""
    for _rank, path, record in records:
        value = dig(record, dotted)
        if value is not None:
            return path, value
    return None, None


def measure(runs: int) -> dict:
    """Fresh simulator ops/s: same workload and hygiene as bench-quick's
    ``simulator`` section (see ``scripts/bench_snapshot.py``)."""
    import gc

    from repro.config import SystemConfig
    from repro.system import System

    gc.collect()
    gc.freeze()
    n = 200_000
    addrs = [(i * 64 * 7) % (1 << 24) for i in range(n)]
    samples = []
    try:
        for _ in range(runs):
            system = System(SystemConfig.paper_default())
            started = time.perf_counter()
            system.hierarchy.access_batch(0, addrs, 0, pc=0,
                                          backend="vector")
            samples.append(n / (time.perf_counter() - started))
    finally:
        gc.unfreeze()
    return {
        "accesses": n,
        "runs": runs,
        "samples": [round(s) for s in samples],
        "ops_per_sec": round(statistics.median(samples)),
    }


def measure_miss_batch(runs: int) -> dict:
    """Fresh miss-engine conflict-replay speedup: the same pattern as
    bench-quick's ``simulator_miss_batch.conflict_replay`` row (see
    ``scripts/bench_snapshot.py``).  Scalar and vector are *interleaved*
    — ``runs`` back-to-back pairs, each pair yielding one vector/scalar
    ratio — and the gate judges the best pair.  Both sides are
    re-measured because absolute rates on a shared runner drift more
    than the gate threshold between the snapshot and the check; pairing
    adjacent-in-time samples makes the two sides see the same host
    speed, so a slow window landing mid-measurement degrades one pair's
    ratio, not the whole check (a best-of-each-side ratio is worse: the
    two bests can come from different windows)."""
    import dataclasses
    import gc

    from repro.config import SystemConfig
    from repro.system import System

    from bench_snapshot import conflict_replay_addrs

    gc.collect()
    gc.freeze()
    n = 100_000
    record = {"accesses": n, "runs": runs}
    ratios = []
    samples = {"scalar": [], "vector": []}
    try:
        for _ in range(runs):
            pair = {}
            for backend in ("scalar", "vector"):
                config = SystemConfig.paper_default()
                config = dataclasses.replace(
                    config, hierarchy=dataclasses.replace(
                        config.hierarchy, prefetchers_enabled=False))
                system = System(config)
                addrs = conflict_replay_addrs(system, n)
                started = time.perf_counter()
                system.hierarchy.access_batch(0, addrs, 0,
                                              backend=backend)
                pair[backend] = n / (time.perf_counter() - started)
                samples[backend].append(round(pair[backend]))
            ratios.append(pair["vector"] / pair["scalar"])
    finally:
        gc.unfreeze()
    best = max(range(len(ratios)), key=lambda i: ratios[i])
    record["scalar"] = {"samples": samples["scalar"],
                        "ops_per_sec": samples["scalar"][best]}
    record["vector"] = {"samples": samples["vector"],
                        "ops_per_sec": samples["vector"][best]}
    record["ratios"] = [round(r, 2) for r in ratios]
    record["speedup"] = ratios[best]
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max allowed fractional drop vs the committed "
                             "baseline (default 0.15)")
    parser.add_argument("--runs", type=int, default=5,
                        help="samples for the median (default 5)")
    parser.add_argument("--baseline", default=None,
                        help="explicit baseline JSON (default: newest "
                             "committed BENCH_PR*.json)")
    parser.add_argument("--measure-only", action="store_true",
                        help="print the fresh number and exit 0")
    args = parser.parse_args(argv)

    fresh = measure(args.runs)
    print(f"fresh simulator rate: {fresh['ops_per_sec']:,} ops/s "
          f"(median of {fresh['runs']}; samples "
          f"{', '.join(f'{s:,}' for s in fresh['samples'])})")
    if args.measure_only:
        return 0

    if args.baseline:
        try:
            with open(args.baseline) as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"bench gate: cannot read baseline {args.baseline}: {exc}")
            return 2
        records = [(0, args.baseline, baseline)]
    else:
        records = load_records(REPO_ROOT)
        if not records:
            print("bench gate: no committed BENCH_PR*.json baseline; "
                  "nothing to gate against")
            return 0

    failed = False
    path, baseline_ops = newest_with(records, "simulator.ops_per_sec")
    if path is None:
        print("bench gate: no committed record carries "
              "simulator.ops_per_sec; skipping the hot-path gate")
    else:
        floor = baseline_ops * (1.0 - args.threshold)
        verdict = "OK" if fresh["ops_per_sec"] >= floor else "FAIL"
        print(f"baseline {os.path.basename(path)}: {baseline_ops:,.0f} "
              f"ops/s; floor at -{args.threshold:.0%}: {floor:,.0f} ops/s "
              f"-> {verdict}")
        if verdict == "FAIL":
            failed = True
            drop = 1.0 - fresh["ops_per_sec"] / baseline_ops
            print(f"bench gate: simulator hot path dropped {drop:.1%} vs "
                  f"{os.path.basename(path)} (limit {args.threshold:.0%}). "
                  f"If the change intentionally trades speed, refresh the "
                  f"committed record via `make bench-quick`.")
            print(_trajectory("simulator.ops_per_sec", fresh["ops_per_sec"]))

    path, miss_baseline = newest_with(
        records, "simulator_miss_batch.conflict_replay.speedup")
    if path is None:
        print("bench gate: no committed record carries the "
              "simulator_miss_batch section (pre-PR 7); skipping the "
              "miss-engine gate")
    if miss_baseline is not None:
        fresh_miss = measure_miss_batch(args.runs)
        print(f"fresh miss-engine conflict replay: "
              f"{fresh_miss['scalar']['ops_per_sec']:,} ops/s scalar vs "
              f"{fresh_miss['vector']['ops_per_sec']:,} ops/s vector "
              f"({fresh_miss['speedup']:.2f}x, best of "
              f"{fresh_miss['runs']} interleaved pairs; ratios "
              f"{', '.join(f'{r:.2f}' for r in fresh_miss['ratios'])})")
        miss_floor = miss_baseline * (1.0 - args.threshold)
        miss_ok = fresh_miss["speedup"] >= miss_floor
        print(f"miss-engine baseline {os.path.basename(path)}: "
              f"{miss_baseline:.2f}x speedup; floor at "
              f"-{args.threshold:.0%}: {miss_floor:.2f}x -> "
              f"{'OK' if miss_ok else 'FAIL'}")
        if not miss_ok:
            failed = True
            drop = 1.0 - fresh_miss["speedup"] / miss_baseline
            print(f"bench gate: miss-engine conflict-replay speedup "
                  f"dropped {drop:.1%} vs {os.path.basename(path)} (limit "
                  f"{args.threshold:.0%}). If the change intentionally "
                  f"trades speed, refresh the committed record via "
                  f"`make bench-quick`.")
            print(_trajectory("miss.conflict_replay.speedup",
                              fresh_miss["speedup"]))

    if not gate_sweep_engine(records):
        failed = True
    return 1 if failed else 0


#: Absolute acceptance floors for the committed sweep-engine bench (the
#: PR 10 headline claims): adaptive early-stop must save >=2x the reps of
#: the fixed grid at equal CI targets, straggler re-dispatch must improve
#: sweep p99 by >=1.5x under an injected slow worker, and both runs must
#: be causally clean — no duplicate cache commits, no event-chain errors.
SWEEP_ENGINE_FLOORS = [
    ("sweep_engine.adaptive.rep_savings_ratio", ">=", 2.0),
    ("sweep_engine.straggler_redispatch.p99_improvement", ">=", 1.5),
    ("sweep_engine.adaptive.duplicate_commits", "==", 0.0),
    ("sweep_engine.adaptive.chain_errors", "==", 0.0),
    ("sweep_engine.straggler_redispatch.duplicate_commits", "==", 0.0),
    ("sweep_engine.straggler_redispatch.chain_errors", "==", 0.0),
]


def gate_sweep_engine(records: "list") -> bool:
    """Validate the committed ``sweep_engine`` section against absolute
    floors.  Unlike the hot-path gates this does not re-measure — the
    numbers come from ``make bench-sweep`` (and the adaptive-smoke CI job
    re-proves the behaviour live); the gate keeps a committed snapshot
    from ever claiming less than the acceptance bars."""
    path, _value = newest_with(records, SWEEP_ENGINE_FLOORS[0][0])
    if path is None:
        print("bench gate: no committed record carries the sweep_engine "
              "section (pre-PR 10); skipping the sweep-engine gate")
        return True
    record = next(rec for _rank, rec_path, rec in records
                  if rec_path == path)
    ok = True
    for dotted, op, floor in SWEEP_ENGINE_FLOORS:
        value = dig(record, dotted)
        if value is None:
            print(f"bench gate: {os.path.basename(path)} lacks {dotted}; "
                  f"skipping that floor")
            continue
        passed = value >= floor if op == ">=" else value == floor
        print(f"sweep-engine {os.path.basename(path)}: {dotted} = "
              f"{value:g} (floor {op} {floor:g}) -> "
              f"{'OK' if passed else 'FAIL'}")
        if not passed:
            ok = False
            print(f"bench gate: committed sweep-engine metric {dotted} "
                  f"misses its acceptance floor; re-run `make bench-sweep` "
                  f"or fix the regression before refreshing the record.")
    return ok


def _trajectory(metric: str, fresh_value: float) -> str:
    """The metric's committed history as one diagnostic line (never lets
    a diagnostics import break the gate verdict itself)."""
    try:
        from repro.analysis.benchhistory import format_trajectory

        return "trajectory: " + format_trajectory(REPO_ROOT, metric,
                                                  fresh=fresh_value)
    except Exception as exc:  # pragma: no cover - diagnostics only
        return f"trajectory unavailable: {exc}"


if __name__ == "__main__":
    sys.exit(main())
