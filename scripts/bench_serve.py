#!/usr/bin/env python
"""Load generator for ``repro serve``: concurrency, dedup, and latency.

Starts a real daemon (asyncio TCP server on the persistent fork-server
pool) in a background thread and hammers it with thread-per-client
:class:`repro.serve.ServeClient` load, in three phases:

1. **solo** — one client runs several unique sweeps back-to-back: the
   baseline per-sweep latency with zero contention.
2. **duplicate storm** — ``--clients`` clients concurrently submit the
   *identical* sweep.  In-flight dedup must collapse the storm onto one
   execution per point (asserted via the daemon's ``serve.points.*``
   counters: zero extra executions), so every client's latency stays
   close to solo even though the offered load is N×.
3. **unique load** — every client submits its own sweep: aggregate
   requests/sec and points/sec under honest (non-dedupable) load.

Each sweep point does real simulator work — a fresh ``System`` driving a
few thousand accesses through the full hierarchy — so the numbers track
the hot path, not the transport.  Results land in ``BENCH_PR8.json``::

    PYTHONPATH=src python scripts/bench_serve.py [--clients 8] [--no-pool]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.analysis.stats import percentile  # noqa: E402
from repro.exp import code_version  # noqa: E402
from repro.serve import ServeClient, ServeScheduler, ServeServer  # noqa: E402

OUTPUT = os.path.join(REPO_ROOT, "BENCH_PR8.json")


def bench_point(seed: int, accesses: int = 4000) -> dict:
    """One serveable unit of real simulator work.

    A fresh paper-default ``System`` runs ``accesses`` demand accesses
    (stride-seeded so different seeds touch different sets) through the
    full hierarchy — cache lookups, replacement, DRAM timing.  Seed
    participates in the content hash, so distinct seeds are distinct
    cache/dedup keys and identical seeds collapse.
    """
    from repro.config import SystemConfig
    from repro.system import System

    system = System(SystemConfig.paper_default())
    stride = 64 * (7 + (seed % 13))
    addrs = [(seed * 977 + i * stride) % (1 << 24) for i in range(accesses)]
    system.hierarchy.access_batch(0, addrs, 0, pc=0, backend="auto")
    return {"seed": seed, "accesses": accesses,
            "demand_accesses": system.hierarchy.stats.demand_accesses}


class _Daemon:
    """The daemon under test, in-process (its pool workers fork from us)."""

    def __init__(self, use_pool: bool, jobs: int | None) -> None:
        self.addr = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._main, args=(use_pool, jobs), daemon=True)

    def _main(self, use_pool: bool, jobs: int | None) -> None:
        async def run() -> None:
            scheduler = ServeScheduler(jobs=jobs, use_pool=use_pool)
            server = ServeServer(scheduler, port=0)
            self.addr = await server.start()
            self._ready.set()
            await server.serve_until_shutdown()

        asyncio.run(run())

    def start(self) -> "_Daemon":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("daemon did not start")
        return self

    def counters(self) -> dict:
        with ServeClient(*self.addr, timeout=30) as client:
            return client.status()["counters"]

    def stop(self) -> None:
        try:
            with ServeClient(*self.addr, timeout=30) as client:
                client.shutdown_server()
        except OSError:
            pass
        self._thread.join(timeout=30)


def _sweep_points(base_seed: int, count: int, accesses: int) -> list:
    return [{"seed": base_seed + i, "accesses": accesses}
            for i in range(count)]


def _submit(addr, points) -> float:
    started = time.perf_counter()
    with ServeClient(*addr, timeout=600) as client:
        job = client.submit(fn="__main__:bench_point", points=points)
    if not job.ok:
        raise RuntimeError(f"sweep failed: {job.errors}")
    return time.perf_counter() - started


def phase_solo(daemon, sweeps: int, points: int, accesses: int) -> dict:
    latencies = []
    for i in range(sweeps):
        latencies.append(_submit(
            daemon.addr, _sweep_points(1_000 + i * points, points, accesses)))
    return {
        "sweeps": sweeps,
        "points_per_sweep": points,
        "p50_s": round(percentile(latencies, 0.50), 4),
        "p99_s": round(percentile(latencies, 0.99), 4),
        "mean_s": round(sum(latencies) / len(latencies), 4),
    }


def phase_duplicate_storm(daemon, clients: int, points: int,
                          accesses: int) -> dict:
    """All clients submit the identical sweep at once; dedup must hold."""
    before = daemon.counters()
    shared = _sweep_points(5_000, points, accesses)
    latencies = [None] * clients
    errors: list = []

    def client_main(slot: int) -> None:
        try:
            latencies[slot] = _submit(daemon.addr, shared)
        except Exception as exc:  # surfaced below
            errors.append(f"client {slot}: {exc}")

    threads = [threading.Thread(target=client_main, args=(slot,))
               for slot in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=600)
    if errors:
        raise RuntimeError("; ".join(errors))
    after = daemon.counters()
    executed = (after.get("serve.points.executed", 0)
                - before.get("serve.points.executed", 0))
    deduped = (after.get("serve.points.deduped", 0)
               - before.get("serve.points.deduped", 0))
    cache_hits = (after.get("serve.points.cache_hits", 0)
                  - before.get("serve.points.cache_hits", 0))
    return {
        "clients": clients,
        "points_per_sweep": points,
        "submitted_points": clients * points,
        "executed_points": executed,
        "deduped_points": deduped,
        "cache_hit_points": cache_hits,
        "extra_executions": executed - points,
        "p50_s": round(percentile(latencies, 0.50), 4),
        "p99_s": round(percentile(latencies, 0.99), 4),
    }


def phase_unique_load(daemon, clients: int, points: int,
                      accesses: int) -> dict:
    """Every client brings its own work: aggregate service rate."""
    latencies = [None] * clients
    errors: list = []

    def client_main(slot: int) -> None:
        try:
            latencies[slot] = _submit(
                daemon.addr,
                _sweep_points(9_000 + slot * points, points, accesses))
        except Exception as exc:
            errors.append(f"client {slot}: {exc}")

    started = time.perf_counter()
    threads = [threading.Thread(target=client_main, args=(slot,))
               for slot in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=600)
    elapsed = time.perf_counter() - started
    if errors:
        raise RuntimeError("; ".join(errors))
    total_points = clients * points
    return {
        "clients": clients,
        "sweeps": clients,
        "total_points": total_points,
        "seconds": round(elapsed, 3),
        "requests_per_sec": round(clients / elapsed, 3),
        "points_per_sec": round(total_points / elapsed, 3),
        "p50_sweep_s": round(percentile(latencies, 0.50), 4),
        "p99_sweep_s": round(percentile(latencies, 0.99), 4),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--points", type=int, default=3,
                        help="points per sweep (default 3)")
    parser.add_argument("--accesses", type=int, default=4000,
                        help="simulator accesses per point (default 4000)")
    parser.add_argument("--solo-sweeps", type=int, default=5)
    parser.add_argument("--no-pool", action="store_true",
                        help="run points inline in the daemon process")
    parser.add_argument("--output", default=OUTPUT)
    args = parser.parse_args(argv)

    daemon = _Daemon(use_pool=not args.no_pool, jobs=None).start()
    try:
        print(f"daemon at {daemon.addr[0]}:{daemon.addr[1]} "
              f"(pool={'off' if args.no_pool else 'on'})", flush=True)
        solo = phase_solo(daemon, args.solo_sweeps, args.points,
                          args.accesses)
        print(f"solo: p50={solo['p50_s']}s p99={solo['p99_s']}s", flush=True)
        storm = phase_duplicate_storm(daemon, args.clients, args.points,
                                      args.accesses)
        print(f"duplicate storm ({args.clients} clients): "
              f"p99={storm['p99_s']}s, {storm['executed_points']} executed "
              f"of {storm['submitted_points']} submitted "
              f"({storm['deduped_points']} deduped, "
              f"{storm['cache_hit_points']} cache hits)", flush=True)
        unique = phase_unique_load(daemon, args.clients, args.points,
                                   args.accesses)
        print(f"unique load: {unique['requests_per_sec']} req/s, "
              f"{unique['points_per_sec']} points/s", flush=True)
    finally:
        daemon.stop()

    ratio = round(storm["p99_s"] / solo["p50_s"], 3) if solo["p50_s"] else None
    record = {
        "code_version": code_version(),
        "config": {
            "clients": args.clients,
            "points_per_sweep": args.points,
            "accesses_per_point": args.accesses,
            "pool": not args.no_pool,
        },
        "solo": solo,
        "duplicate_storm": storm,
        "unique_load": unique,
        "acceptance": {
            "storm_p99_over_solo_p50": ratio,
            "p99_within_2x_solo": (ratio is not None and ratio <= 2.0),
            "zero_extra_executions": storm["extra_executions"] == 0,
        },
    }
    with open(args.output, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}", flush=True)
    ok = (record["acceptance"]["p99_within_2x_solo"]
          and record["acceptance"]["zero_extra_executions"])
    print("ACCEPTANCE", "PASS" if ok else "FAIL", flush=True)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
