#!/usr/bin/env python
"""Quick benchmark snapshot: figure sweeps + simulator ops/sec.

Runs a reduced slice of every figure sweep through :mod:`repro.exp`
(parallel + cached exactly like the benches), times raw simulator,
scheduler, and warm-up/snapshot microbenchmarks, measures the
warm-state store's cold-vs-warm figure passes, and writes the whole
record to ``BENCH_PR10.json`` at the repo root.  Intended for
``make bench-quick``::

    PYTHONPATH=src python scripts/bench_snapshot.py [--jobs N] [--no-cache]

The cache lives under ``benchmarks/results/.cache`` (shared with the
pytest benches), so a snapshot taken right after the benchmark suite is
nearly free, and a second snapshot of unchanged code replays entirely
from disk.

The warm-store section runs the fig8+fig10+fig11 sweeps twice in *fresh
subprocesses* with the result cache off: the first (cold) pass populates
``benchmarks/results/.warmstore``, the second (warm) pass replays the
same points against the populated store, so the speedup isolates
warm-state reuse from result caching and in-process memos.  A third
warm pass repeats the second with ``REPRO_TELEMETRY_DIR`` set, so the
``telemetry_overhead`` section prices the causal event log against an
identical telemetry-off pass (acceptance: < 5% wall clock).
"""

from __future__ import annotations

import argparse
import dataclasses
import gc
import json
import os
import shutil
import statistics
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.exp import ResultCache, code_version, default_jobs, run_sweep  # noqa: E402
from repro.exp.figures import (  # noqa: E402
    fig2_sweep,
    fig3_sweep,
    fig8_sweep,
    fig10_sweep,
    fig11_sweep,
)

CACHE_DIR = os.path.join(REPO_ROOT, "benchmarks", "results", ".cache")
WARM_DIR = os.path.join(REPO_ROOT, "benchmarks", "results", ".warmstore")
TELEMETRY_DIR = os.path.join(REPO_ROOT, "benchmarks", "results",
                             ".telemetry-bench")
OUTPUT = os.path.join(REPO_ROOT, "BENCH_PR10.json")
BASELINE = os.path.join(REPO_ROOT, "BENCH_PR7.json")
BASELINE_NAME = os.path.basename(BASELINE)

# Reduced axes: one quick pass over every figure, a couple of minutes
# serial and cold, seconds warm or parallel.
QUICK_SWEEPS = [
    ("fig2", lambda: fig2_sweep((2, 16, 64))),
    ("fig3", lambda: fig3_sweep((2, 16, 128))),
    ("fig8", lambda: fig8_sweep((8, 64))),
    ("fig10", lambda: fig10_sweep((1024, 8192))),
    ("fig11", lambda: fig11_sweep(("BC", "PR"), max_refs=20_000)),
]


#: The warm-store measurement: the three figure sweeps whose points route
#: through :mod:`repro.exp.warmstore` (fig2/fig3 points are stateless
#: one-shot builds and gain nothing from warm state).
WARM_SWEEPS = [
    ("fig8", lambda: fig8_sweep((8, 64))),
    ("fig10", lambda: fig10_sweep((1024, 8192))),
    ("fig11", lambda: fig11_sweep(("BC", "PR"), max_refs=20_000)),
]


def run_warm_sweeps(jobs: int) -> dict:
    """One pass over the warm sweeps, result cache off.  Runs inside the
    ``--warm-pass`` subprocess so every in-process memo starts cold and
    the only carried state is the on-disk warm store."""
    figures = {}
    total = 0.0
    for name, build in WARM_SWEEPS:
        points = build()
        outcome = run_sweep(points, jobs=jobs, cache=None)
        figures[name] = {
            "points": len(points),
            "seconds": round(outcome.elapsed_seconds, 3),
            "warm_hits": outcome.warm_hits,
            "warm_misses": outcome.warm_misses,
        }
        total += outcome.elapsed_seconds
    return {
        "figures": figures,
        "seconds": round(total, 3),
        "warm_hits": sum(f["warm_hits"] for f in figures.values()),
        "warm_misses": sum(f["warm_misses"] for f in figures.values()),
    }


def warm_store_two_pass(jobs: int) -> dict:
    """Cold-then-warm figure passes in fresh subprocesses (see module
    docstring); the warm pass is the ISSUE-5 headline measurement."""
    shutil.rmtree(WARM_DIR, ignore_errors=True)
    record = {"directory": os.path.relpath(WARM_DIR, REPO_ROOT),
              "passes": {}}
    env = dict(os.environ, REPRO_WARMSTORE_DIR=WARM_DIR)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env.pop("REPRO_TELEMETRY_DIR", None)
    # The third pass repeats the warm one with the event log on: same
    # points, same populated store, so the delta prices telemetry alone.
    for label in ("cold", "warm", "warm_telemetry"):
        pass_env = dict(env)
        if label == "warm_telemetry":
            shutil.rmtree(TELEMETRY_DIR, ignore_errors=True)
            os.makedirs(TELEMETRY_DIR, exist_ok=True)
            pass_env["REPRO_TELEMETRY_DIR"] = TELEMETRY_DIR
        proc = subprocess.run(
            [sys.executable, os.path.abspath(__file__),
             "--warm-pass", "--jobs", str(jobs)],
            capture_output=True, text=True, env=pass_env)
        if proc.returncode != 0:
            raise RuntimeError(f"warm {label} pass failed:\n{proc.stderr}")
        record["passes"][label] = json.loads(proc.stdout)
    cold = record["passes"]["cold"]["seconds"]
    warm = record["passes"]["warm"]["seconds"]
    record["speedup_vs_cold"] = round(cold / max(warm, 1e-9), 2)
    if os.path.exists(BASELINE):
        try:
            with open(BASELINE) as handle:
                baseline = json.load(handle)
            # Prefer the baseline's own warm-store warm pass (same
            # measurement, fresh subprocess); its top-level figure
            # timings may be result-cache hits (~0s) and incomparable.
            try:
                baseline_seconds = (
                    baseline["warm_store"]["passes"]["warm"]["seconds"])
            except KeyError:
                baseline_seconds = sum(
                    baseline["figures"][name]["seconds"]
                    for name, _ in WARM_SWEEPS)
            if baseline_seconds > 0.0:
                record["baseline_seconds"] = round(baseline_seconds, 3)
                record["speedup_vs_baseline"] = round(
                    baseline_seconds / max(warm, 1e-9), 2)
        except (OSError, KeyError, ValueError):
            pass
    return record


def telemetry_overhead(warm_record: dict) -> dict:
    """Price of the causal event log: the telemetry-on warm pass vs the
    identical telemetry-off one, plus a chain-integrity check over the
    log the pass just wrote (every span complete, none duplicated)."""
    from repro.obs import telemetry

    passes = warm_record["passes"]
    plain = passes["warm"]["seconds"]
    logged = passes["warm_telemetry"]["seconds"]
    events = telemetry.read_events(TELEMETRY_DIR)
    return {
        "warm_seconds": plain,
        "telemetry_seconds": logged,
        "overhead_pct": round((logged - plain) / max(plain, 1e-9) * 100.0,
                              2),
        "events": len(events),
        "spans": len({e["span_id"] for e in events if "span_id" in e}),
        "chain_errors": len(telemetry.verify_chains(events)),
    }


def _quiesce_heap() -> None:
    """Drop sweep leftovers and stop the GC from scanning what remains.

    The figure sweeps that run before the micro-benches leave large
    resident heaps (the pristine-system pool, warm-state payloads, sweep
    results).  Generational GC then scans those heaps from inside the
    timed loops — measured at a ~13% ops/s penalty on the simulator
    hot path (the PR2->PR5 "regression" was exactly this, not access-path
    code).  Clearing the pools and freezing survivors takes the heap out
    of collection entirely."""
    from repro.exp import shutdown_pool
    from repro.exp.warmstore import clear_pristine_pool, reset_active_store

    clear_pristine_pool()
    reset_active_store()
    shutdown_pool()
    gc.collect()
    gc.freeze()


def simulator_ops_per_sec() -> dict:
    """Raw hot-path rate: the 200k-access demand stream through the full
    hierarchy (cache lookups, replacement, prefetchers, DRAM timing).

    Driven through ``access_batch`` with the vector backend on — the code
    path the figure sweeps actually execute (this stream is miss-dominated,
    so with prefetchers live the engine's sampling pre-check routes it to
    the hoisted reference loop; hit-heavy streams take the bulk-commit path measured by
    :func:`simulator_batch_ops_per_sec`).  Median of three runs on a
    quiesced heap (see :func:`_quiesce_heap`) so the number tracks
    access-path cost, not allocator history.
    """
    from repro.config import SystemConfig
    from repro.system import System

    _quiesce_heap()
    n = 200_000
    addrs = [(i * 64 * 7) % (1 << 24) for i in range(n)]
    runs = []
    try:
        for _ in range(3):
            system = System(SystemConfig.paper_default())
            started = time.perf_counter()
            system.hierarchy.access_batch(0, addrs, 0, pc=0,
                                          backend="vector")
            runs.append(time.perf_counter() - started)
    finally:
        gc.unfreeze()
    elapsed = statistics.median(runs)
    return {
        "accesses": n,
        "runs": len(runs),
        "backend": "vector",
        "seconds": round(elapsed, 3),
        "ops_per_sec": round(n / elapsed),
    }


def simulator_batch_ops_per_sec() -> dict:
    """Batch hot path: scalar reference loop vs the numpy vector engine.

    The workload is the receiver shape the vector engine targets — a
    warmed 256-line probe array replayed for 200k hit-heavy accesses
    (prefetchers off, the measurement posture every timed experiment
    uses).  Median of three per backend on a quiesced heap; the vector
    row is the BENCH_PR6 headline and what ``repro bench`` reports.
    """
    from repro.config import SystemConfig
    from repro.system import System

    _quiesce_heap()
    n = 200_000
    probe = [0x100000 + i * 64 for i in range(256)]
    addrs = [probe[i & 255] for i in range(n)]
    record = {"accesses": n, "pattern": "probe-array replay (256 lines)"}
    try:
        for backend in ("scalar", "vector"):
            runs = []
            for _ in range(3):
                config = SystemConfig.paper_default()
                config = dataclasses.replace(
                    config, hierarchy=dataclasses.replace(
                        config.hierarchy, prefetchers_enabled=False))
                system = System(config)
                system.hierarchy.access_batch(0, probe, 0, backend="scalar")
                started = time.perf_counter()
                system.hierarchy.access_batch(0, addrs, 10_000,
                                              backend=backend)
                runs.append(time.perf_counter() - started)
            elapsed = statistics.median(runs)
            record[backend] = {
                "seconds": round(elapsed, 4),
                "ops_per_sec": round(n / elapsed),
            }
    finally:
        gc.unfreeze()
    record["speedup"] = round(record["vector"]["ops_per_sec"]
                              / record["scalar"]["ops_per_sec"], 2)
    return record


def conflict_replay_addrs(system, count):
    """Bank-conflict-alternating replay, spread across cache sets.

    Adjacent accesses alternate two rows of the same bank (every access
    a row-buffer conflict — the covert-channel sender/receiver shape),
    while the line addresses walk distinct sets so no cache level
    filters the stream: every access is a full miss.  This is the
    pattern the PR 7 miss engine bulk-commits.
    """
    nb = system.num_banks
    addrs = []
    for i in range(count):
        bank = (i // 2) % nb
        col = (i // (2 * nb)) % 128
        pair = i // (2 * nb * 128)
        row = 2 * pair + (i & 1)
        addrs.append(system.address_of(bank, row % 4096, col * 64))
    return addrs


def simulator_miss_batch_ops_per_sec() -> dict:
    """Miss-dominated batch hot path: scalar reference vs the vectorized
    miss engine (PR 7 headline).

    Two shapes, each 100k accesses with prefetchers off:

    - ``conflict_replay`` — every access a full miss *and* a DRAM
      row-buffer conflict (see :func:`conflict_replay_addrs`); the
      acceptance pattern, gated at >=5x by ``scripts/bench_gate.py``.
    - ``streaming_sweep`` — a sequential line sweep, the fig11
      streaming shape.

    Best of three per backend on a quiesced heap: the ratio of two
    best-case samples is far more stable on a noisy shared runner than
    a ratio of medians, and the engine's cost model is deterministic —
    slower samples are scheduler noise, not the code under test.
    """
    from repro.config import SystemConfig
    from repro.system import System

    _quiesce_heap()
    n = 100_000
    record = {"accesses": n}
    try:
        for pattern in ("conflict_replay", "streaming_sweep"):
            entry = {}
            for backend in ("scalar", "vector"):
                best = None
                for _ in range(3):
                    config = SystemConfig.paper_default()
                    config = dataclasses.replace(
                        config, hierarchy=dataclasses.replace(
                            config.hierarchy, prefetchers_enabled=False))
                    system = System(config)
                    if pattern == "conflict_replay":
                        addrs = conflict_replay_addrs(system, n)
                    else:
                        addrs = [0x2000000 + i * 64 for i in range(n)]
                    started = time.perf_counter()
                    system.hierarchy.access_batch(0, addrs, 0,
                                                  backend=backend)
                    elapsed = time.perf_counter() - started
                    if best is None or elapsed < best:
                        best = elapsed
                entry[backend] = {
                    "seconds": round(best, 4),
                    "ops_per_sec": round(n / best),
                }
            entry["speedup"] = round(entry["vector"]["ops_per_sec"]
                                     / entry["scalar"]["ops_per_sec"], 2)
            record[pattern] = entry
    finally:
        gc.unfreeze()
    record["speedup"] = record["conflict_replay"]["speedup"]
    return record


def scheduler_checkpoints_per_sec() -> dict:
    """Scheduler micro-bench: checkpoint-dense threads, fast path vs the
    heap-only slow path (``fast_path=False``)."""
    from repro.sim import Scheduler

    def body(ctx, steps):
        for _ in range(steps):
            ctx.advance(3)
            yield None

    steps = 50_000
    threads = 4
    record = {}
    for label, fast in (("fast_path", True), ("slow_path", False)):
        sched = Scheduler(fast_path=fast)
        for t in range(threads):
            # Staggered starts keep one thread globally minimal for long
            # stretches — the run-to-block pattern the attacks exhibit.
            sched.spawn(body, steps, name=f"t{t}", start_time=t * steps)
        started = time.perf_counter()
        sched.run()
        elapsed = time.perf_counter() - started
        record[label] = {
            "checkpoints": steps * threads,
            "seconds": round(elapsed, 3),
            "checkpoints_per_sec": round(steps * threads / elapsed),
            "fast_resumes": sched.fast_resumes,
        }
    return record


def snapshot_restore_speedup() -> dict:
    """Warm-up replay vs snapshot restore for one Fig. 11 workload."""
    from repro.system import System
    from repro.workloads.kernels import workload_spec
    from repro.workloads.runner import _warm, fig11_config

    spec = workload_spec("PR")
    stream = spec.refs(graph=spec.build_graph(), max_refs=20_000)
    config = fig11_config()

    system = System(config)
    started = time.perf_counter()
    _warm(system, [stream, stream])
    warm_seconds = time.perf_counter() - started
    snap = system.snapshot()

    fresh = System(config)
    started = time.perf_counter()
    fresh.restore(snap)
    restore_seconds = time.perf_counter() - started
    return {
        "warmup_seconds": round(warm_seconds, 4),
        "restore_seconds": round(restore_seconds, 4),
        "speedup": round(warm_seconds / max(restore_seconds, 1e-9), 1),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: all CPUs)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")
    parser.add_argument("--output", default=OUTPUT)
    parser.add_argument("--warm-pass", action="store_true",
                        help=argparse.SUPPRESS)  # internal: one warm pass,
    # JSON on stdout (spawned twice by warm_store_two_pass)
    args = parser.parse_args(argv)

    jobs = args.jobs if args.jobs is not None else default_jobs()
    if args.warm_pass:
        json.dump(run_warm_sweeps(jobs), sys.stdout)
        return 0
    cache = None if args.no_cache else ResultCache(CACHE_DIR)

    record = {
        "code_version": code_version(),
        "jobs": jobs,
        "cache": not args.no_cache,
        "figures": {},
    }
    suite_started = time.perf_counter()
    for name, build in QUICK_SWEEPS:
        points = build()
        outcome = run_sweep(points, jobs=jobs, cache=cache)
        record["figures"][name] = {
            "points": len(points),
            "seconds": round(outcome.elapsed_seconds, 3),
            "parallel": outcome.parallel,
            "cache_hits": outcome.cache_hits,
            "cache_misses": outcome.cache_misses,
        }
        if outcome.fallback_reason:
            record["figures"][name]["fallback"] = outcome.fallback_reason
        print(f"{name}: {len(points)} points in "
              f"{outcome.elapsed_seconds:.2f}s "
              f"({outcome.cache_hits} cached, jobs={jobs})")
    record["suite_seconds"] = round(time.perf_counter() - suite_started, 3)

    print("timing simulator hot path...")
    record["simulator"] = simulator_ops_per_sec()
    print(f"simulator: {record['simulator']['ops_per_sec']:,} accesses/sec")

    print("timing batch hot path (scalar vs vector)...")
    record["simulator_batch"] = simulator_batch_ops_per_sec()
    batch = record["simulator_batch"]
    print(f"batch: {batch['scalar']['ops_per_sec']:,}/sec scalar vs "
          f"{batch['vector']['ops_per_sec']:,}/sec vector "
          f"({batch['speedup']}x)")

    print("timing miss-dominated batch hot path (scalar vs vector)...")
    record["simulator_miss_batch"] = simulator_miss_batch_ops_per_sec()
    miss = record["simulator_miss_batch"]
    for pattern in ("conflict_replay", "streaming_sweep"):
        entry = miss[pattern]
        print(f"miss batch [{pattern}]: "
              f"{entry['scalar']['ops_per_sec']:,}/sec scalar vs "
              f"{entry['vector']['ops_per_sec']:,}/sec vector "
              f"({entry['speedup']}x)")

    print("timing scheduler checkpoints...")
    record["scheduler"] = scheduler_checkpoints_per_sec()
    fast = record["scheduler"]["fast_path"]["checkpoints_per_sec"]
    slow = record["scheduler"]["slow_path"]["checkpoints_per_sec"]
    print(f"scheduler: {fast:,}/sec fast path vs {slow:,}/sec slow path")

    print("timing warm-up vs snapshot restore...")
    record["snapshot"] = snapshot_restore_speedup()
    print(f"snapshot restore: {record['snapshot']['speedup']}x faster "
          f"than re-warming")

    print("measuring warm-state store (cold + warm passes)...")
    record["warm_store"] = warm_store_two_pass(jobs)
    warm = record["warm_store"]
    line = (f"warm store: cold {warm['passes']['cold']['seconds']:.2f}s -> "
            f"warm {warm['passes']['warm']['seconds']:.2f}s "
            f"({warm['speedup_vs_cold']}x, "
            f"{warm['passes']['warm']['warm_hits']} warm hits)")
    if "speedup_vs_baseline" in warm:
        line += f"; {warm['speedup_vs_baseline']}x vs {BASELINE_NAME}"
    print(line)

    record["telemetry_overhead"] = telemetry_overhead(warm)
    overhead = record["telemetry_overhead"]
    print(f"telemetry: warm {overhead['warm_seconds']:.2f}s -> "
          f"logged {overhead['telemetry_seconds']:.2f}s "
          f"({overhead['overhead_pct']:+.1f}%, {overhead['events']} events, "
          f"{overhead['spans']} spans, "
          f"{overhead['chain_errors']} chain errors)")

    record["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    # The sweep-engine section is produced by scripts/bench_sweep.py
    # (make bench-sweep) and merged into the same snapshot; a quick-bench
    # refresh must not silently drop it.
    try:
        with open(args.output) as handle:
            previous = json.load(handle)
        if "sweep_engine" in previous:
            record["sweep_engine"] = previous["sweep_engine"]
    except (OSError, ValueError):
        pass
    with open(args.output, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"suite: {record['suite_seconds']:.2f}s -> {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
