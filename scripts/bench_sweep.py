#!/usr/bin/env python
"""Sweep-engine acceptance bench: adaptive rep savings + straggler p99.

Two measurements, both written into the ``sweep_engine`` section of the
committed bench snapshot (``BENCH_PR10.json`` by default, merged — the
other sections come from ``scripts/bench_snapshot.py``)::

    PYTHONPATH=src python scripts/bench_sweep.py [--jobs 2] [--output ...]

- ``adaptive`` — the fig8-style quality sweep run through
  :func:`repro.exp.run_adaptive_sweep`: repetitions scheduled in rounds,
  each point early-stopped once every Bernoulli stream's pooled Wilson
  CI half-width meets the target.  The headline is
  ``rep_savings_ratio``: executed repetitions vs the fixed grid
  (``points * max_reps``) that would reach the same CI floor by brute
  force.  Acceptance (gated by ``scripts/bench_gate.py``): >= 2x.

- ``straggler_redispatch`` — repeated small sweeps on the pool backend
  with one *injected* straggler per sweep (a sentinel file makes the
  first executor of one point sleep ~1s; any re-executor runs fast, the
  same shape as a transiently sick worker).  The baseline runs with
  re-dispatch off; the measured mode enables :class:`StragglerPolicy`,
  so flagged points race a speculative twin on an idle worker.
  Acceptance: sweep-latency p99 improves >= 1.5x, with zero duplicate
  commits and zero causal-chain errors in the telemetry log.

Both runs also verify causal hygiene from the event logs they write:
every span commits exactly once (first-commit-wins held), and
``telemetry.verify_chains`` is clean (re-dispatches excused by their
``point_retried`` markers).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.exp import (  # noqa: E402
    AdaptiveConfig,
    ConvergenceTarget,
    ResultCache,
    StragglerPolicy,
    bernoulli_probe_point,
    run_adaptive_sweep,
    run_sweep,
    shutdown_pool,
    sweep_points,
)
from repro.exp.figures import fig8_quality_point  # noqa: E402
from repro.obs import telemetry  # noqa: E402

OUTPUT = os.path.join(REPO_ROOT, "BENCH_PR10.json")


def chain_hygiene(telemetry_dir: str) -> dict:
    """Commit/chain integrity of one run's event log: duplicate commits
    (spans with more than one ``point_committed``) and verify_chains
    errors."""
    events = telemetry.read_events(telemetry_dir)
    commits: dict = {}
    for event in events:
        if event.get("event") == "point_committed" and event.get("span_id"):
            commits[event["span_id"]] = commits.get(event["span_id"], 0) + 1
    return {
        "events": len(events),
        "committed_spans": len(commits),
        "duplicate_commits": sum(count - 1 for count in commits.values()
                                 if count > 1),
        "chain_errors": len(telemetry.verify_chains(events)),
    }


def bench_adaptive(jobs: int, tmp: str) -> dict:
    """Adaptive fig8 quality sweep vs its fixed-grid repetition budget."""
    # bits=192 keeps the shortest per-rep stream (DRAMA-eviction, 1/8 of
    # the scale) at 24 trials, so a clean point's pooled CI meets the
    # 0.05 target at the 2-rep floor instead of straddling it.
    points = sweep_points("fig8-quality", fig8_quality_point, "llc_mb",
                          [8.0, 64.0], bits=192)
    config = AdaptiveConfig(
        rep_axis="seed", min_reps=2, max_reps=8, round_reps=2,
        target=ConvergenceTarget(ber_ci_halfwidth=0.05))
    telemetry_dir = os.path.join(tmp, "telemetry-adaptive")
    outcome = run_adaptive_sweep(
        points, config=config, jobs=jobs,
        cache=ResultCache(os.path.join(tmp, "cache-adaptive")),
        telemetry_dir=telemetry_dir, backend="pool")
    worst_hw = max((result.halfwidth for result in outcome.results
                    if result.halfwidth is not None), default=None)
    record = {
        "points": len(points),
        "bits": 192,
        "target_ber_ci_halfwidth": config.target.ber_ci_halfwidth,
        "min_reps": config.min_reps,
        "max_reps": config.max_reps,
        "executed_reps": outcome.executed_reps,
        "fixed_reps": outcome.fixed_reps,
        "rep_savings_ratio": round(outcome.rep_savings_ratio, 2),
        "rounds": outcome.rounds,
        "converged_points": sum(1 for r in outcome.results if r.converged),
        "achieved_ci_halfwidth": (round(worst_hw, 4)
                                  if worst_hw is not None else None),
        "seconds": round(outcome.elapsed_seconds, 3),
        "per_point_reps": {result.point.describe(): result.reps
                           for result in outcome.results},
    }
    record.update(chain_hygiene(telemetry_dir))
    return record


def _straggler_sweep(mode: str, index: int, jobs: int, tmp: str,
                     policy: "StragglerPolicy | None") -> tuple:
    """One small sweep with an injected slow first-executor; returns
    ``(elapsed_seconds, redispatches)``."""
    from repro.exp import SweepPoint

    sentinel = os.path.join(tmp, f"sentinel-{mode}-{index}")
    # Seeds are unique per (mode, sweep, point) so no result-cache hit or
    # in-flight dedup short-circuits a measured execution.
    base = 1000 * index + (500_000 if mode != "baseline" else 0)
    fast = [SweepPoint("bernoulli", bernoulli_probe_point,
                       {"p": 0.1, "bits": 256, "seed": base + i,
                        "fast_seconds": 0.03})
            for i in range(6)]
    slow = [SweepPoint("bernoulli", bernoulli_probe_point,
                       {"p": 0.1, "bits": 256, "seed": base + 999,
                        "slow_sentinel": sentinel, "slow_seconds": 1.0,
                        "fast_seconds": 0.03})]
    telemetry_dir = os.path.join(tmp, f"telemetry-{mode}")
    outcome = run_sweep(slow + fast, jobs=jobs,
                        cache=ResultCache(os.path.join(tmp, f"cache-{mode}")),
                        telemetry_dir=telemetry_dir, backend="pool",
                        straggler=policy)
    return outcome.elapsed_seconds, outcome.redispatches


def bench_straggler(jobs: int, sweeps: int, tmp: str) -> dict:
    """Injected-straggler sweep latency: re-dispatch off vs on."""
    policy = StragglerPolicy(factor=3.0, min_seconds=0.15, min_samples=3)
    record: dict = {"sweeps": sweeps, "points_per_sweep": 7, "jobs": jobs,
                    "slow_seconds": 1.0, "fast_seconds": 0.03,
                    "policy": {"factor": policy.factor,
                               "min_seconds": policy.min_seconds,
                               "min_samples": policy.min_samples}}
    for mode, active in (("baseline", None), ("redispatch", policy)):
        # A fresh pool per mode: worker duration history must not leak
        # from one mode's median into the other's straggler threshold.
        shutdown_pool()
        latencies = []
        redispatches = 0
        for index in range(sweeps):
            elapsed, sweep_redispatches = _straggler_sweep(
                mode, index, jobs, tmp, active)
            latencies.append(elapsed)
            redispatches += sweep_redispatches
        latencies.sort()
        entry = {
            "p50_s": round(statistics.median(latencies), 3),
            "p99_s": round(
                latencies[min(len(latencies) - 1,
                              round(0.99 * (len(latencies) - 1)))], 3),
            "max_s": round(latencies[-1], 3),
            "latencies_s": [round(value, 3) for value in latencies],
        }
        if mode == "redispatch":
            entry["redispatches"] = redispatches
        entry.update(chain_hygiene(os.path.join(tmp, f"telemetry-{mode}")))
        record[mode] = entry
    shutdown_pool()
    record["p99_improvement"] = round(
        record["baseline"]["p99_s"]
        / max(record["redispatch"]["p99_s"], 1e-9), 2)
    record["p50_improvement"] = round(
        record["baseline"]["p50_s"]
        / max(record["redispatch"]["p50_s"], 1e-9), 2)
    # The gate floors read these from the redispatch mode's log.
    record["duplicate_commits"] = record["redispatch"]["duplicate_commits"]
    record["chain_errors"] = record["redispatch"]["chain_errors"]
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=2,
                        help="pool workers (default 2: one straggler, one "
                             "rescuer — the worst case for re-dispatch)")
    parser.add_argument("--sweeps", type=int, default=12,
                        help="sweeps per straggler mode (default 12)")
    parser.add_argument("--output", default=OUTPUT,
                        help="bench snapshot to merge the sweep_engine "
                             "section into (default BENCH_PR10.json)")
    args = parser.parse_args(argv)

    tmp = tempfile.mkdtemp(prefix="repro-bench-sweep-")
    try:
        print("adaptive fig8 quality sweep (CI-convergence early-stop)...")
        adaptive = bench_adaptive(args.jobs, tmp)
        print(f"adaptive: {adaptive['executed_reps']} reps executed vs "
              f"{adaptive['fixed_reps']} fixed "
              f"({adaptive['rep_savings_ratio']}x savings, "
              f"{adaptive['rounds']} rounds, "
              f"worst CI half-width {adaptive['achieved_ci_halfwidth']}, "
              f"{adaptive['duplicate_commits']} dup commits, "
              f"{adaptive['chain_errors']} chain errors)")

        print(f"injected-straggler sweeps ({args.sweeps} per mode)...")
        straggler = bench_straggler(args.jobs, args.sweeps, tmp)
        print(f"straggler: p99 {straggler['baseline']['p99_s']}s baseline "
              f"-> {straggler['redispatch']['p99_s']}s with re-dispatch "
              f"({straggler['p99_improvement']}x; "
              f"{straggler['redispatch']['redispatches']} re-dispatches, "
              f"{straggler['duplicate_commits']} dup commits, "
              f"{straggler['chain_errors']} chain errors)")
    finally:
        shutdown_pool()
        shutil.rmtree(tmp, ignore_errors=True)

    section = {"adaptive": adaptive, "straggler_redispatch": straggler,
               "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                          time.gmtime())}
    try:
        with open(args.output) as handle:
            record = json.load(handle)
    except (OSError, ValueError):
        record = {}
    record["sweep_engine"] = section
    with open(args.output, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"sweep_engine section merged into {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
