"""IMPACT reproduction: PiM-based main-memory timing covert and side channels.

A full-system reproduction of *"Amplifying Main Memory-Based Timing Covert
and Side Channels using Processing-in-Memory Operations"* (DSN 2025):
a cycle-accounting simulator of a PiM-enabled machine (DRAM banks and row
buffers, cache hierarchy, MMU, PEI and RowClone engines), the seven
covert-channel attacks of §5, the read-mapping side channel of §4.3, and
the three defenses of §6.

Quickstart::

    from repro import System, SystemConfig
    from repro.attacks import ImpactPnmChannel

    system = System(SystemConfig.paper_default())
    result = ImpactPnmChannel(system).transmit_random(bits=1024)
    print(result.throughput_mbps, result.error_rate)
"""

from repro.config import DMAConfig, NoiseConfig, SystemConfig
from repro.system import BackgroundNoise, System

__version__ = "1.0.0"

__all__ = [
    "BackgroundNoise",
    "DMAConfig",
    "NoiseConfig",
    "System",
    "SystemConfig",
    "__version__",
]
