"""Analysis helpers shared by benches and examples: statistics and
paper-style result tables."""

from repro.analysis.coding import (
    FecAssessment,
    decode_stream,
    encode_stream,
    fec_assessment,
    hamming74_decode,
    hamming74_encode,
)
from repro.analysis.figures import bar_chart, grouped_bar_chart, latency_histogram
from repro.analysis.quality import (
    TVLA_T_THRESHOLD,
    ChannelQuality,
    bin_latencies,
    channel_quality,
    mutual_information_bits,
    wilson_interval,
)
from repro.analysis.report import ResultTable, format_markdown_table, format_table
from repro.analysis.runreport import (
    collect_run_report,
    render_markdown,
    write_run_report,
)
from repro.analysis.stats import (
    LatencyStats,
    WelchT,
    percentile,
    split_by_bit,
    summarize_latencies,
    welch_t_from_summary,
    welch_t_stat,
)

__all__ = [
    "FecAssessment",
    "LatencyStats",
    "ResultTable",
    "ChannelQuality",
    "TVLA_T_THRESHOLD",
    "WelchT",
    "bar_chart",
    "grouped_bar_chart",
    "latency_histogram",
    "bin_latencies",
    "channel_quality",
    "collect_run_report",
    "decode_stream",
    "encode_stream",
    "fec_assessment",
    "format_markdown_table",
    "format_table",
    "hamming74_decode",
    "hamming74_encode",
    "mutual_information_bits",
    "percentile",
    "render_markdown",
    "split_by_bit",
    "summarize_latencies",
    "welch_t_from_summary",
    "welch_t_stat",
    "wilson_interval",
    "write_run_report",
]
