"""Analysis helpers shared by benches and examples: statistics and
paper-style result tables."""

from repro.analysis.coding import (
    FecAssessment,
    decode_stream,
    encode_stream,
    fec_assessment,
    hamming74_decode,
    hamming74_encode,
)
from repro.analysis.figures import bar_chart, grouped_bar_chart, latency_histogram
from repro.analysis.report import ResultTable, format_table
from repro.analysis.stats import LatencyStats, split_by_bit, summarize_latencies

__all__ = [
    "FecAssessment",
    "LatencyStats",
    "ResultTable",
    "bar_chart",
    "grouped_bar_chart",
    "latency_histogram",
    "decode_stream",
    "encode_stream",
    "fec_assessment",
    "format_table",
    "hamming74_decode",
    "hamming74_encode",
    "split_by_bit",
    "summarize_latencies",
]
