"""Benchmark trajectory across the committed ``BENCH_PR*.json`` files.

Every PR that touched performance committed a snapshot (see
``scripts/bench_snapshot.py``); ``scripts/bench_gate.py`` compares fresh
numbers against the newest one, but its verdict is binary.  This module
turns the whole committed sequence into a per-metric trend table —
``repro bench history`` for humans, :func:`format_trajectory` for the
gate's failure diagnostics — so "simulator ops/s dropped 18%" comes with
the context of where the metric has been since PR 1.

Snapshots have grown sections over time (miss-batch engine in PR 7, the
serve daemon in PR 8, telemetry overhead in PR 9, the adaptive sweep
engine in PR 10); missing sections render as gaps, not errors.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Tracked metrics: (name, dotted path into the snapshot JSON, direction)
#: — direction says which way is better, so deltas can be judged.
BENCH_METRICS: List[Tuple[str, str, str]] = [
    ("simulator.ops_per_sec", "simulator.ops_per_sec", "higher"),
    ("batch.probe_replay.speedup", "simulator_batch.speedup", "higher"),
    ("miss.conflict_replay.speedup",
     "simulator_miss_batch.conflict_replay.speedup", "higher"),
    ("miss.streaming_sweep.speedup",
     "simulator_miss_batch.streaming_sweep.speedup", "higher"),
    ("scheduler.checkpoints_per_sec",
     "scheduler.fast_path.checkpoints_per_sec", "higher"),
    ("snapshot.restore_speedup", "snapshot.speedup", "higher"),
    ("warm_store.speedup_vs_cold", "warm_store.speedup_vs_cold", "higher"),
    ("suite_seconds", "suite_seconds", "lower"),
    ("serve.points_per_sec", "unique_load.points_per_sec", "higher"),
    ("serve.storm_p99_over_solo_p50",
     "acceptance.storm_p99_over_solo_p50", "lower"),
    ("telemetry.warm_overhead_pct",
     "telemetry_overhead.overhead_pct", "lower"),
    ("sweep.adaptive_rep_savings",
     "sweep_engine.adaptive.rep_savings_ratio", "higher"),
    ("sweep.redispatch_p99_improvement",
     "sweep_engine.straggler_redispatch.p99_improvement", "higher"),
]

_BENCH_RE = re.compile(r"BENCH_PR(\d+)\.json$")


def load_bench_records(root: str) -> List[Tuple[int, str, Dict[str, Any]]]:
    """The committed snapshots under ``root`` as ``(pr_number, path,
    data)``, sorted by PR number; unreadable files are skipped."""
    records: List[Tuple[int, str, Dict[str, Any]]] = []
    try:
        names = os.listdir(root)
    except OSError:
        return records
    for name in names:
        match = _BENCH_RE.match(name)
        if not match:
            continue
        path = os.path.join(root, name)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            continue
        if isinstance(data, dict):
            records.append((int(match.group(1)), path, data))
    records.sort(key=lambda record: record[0])
    return records


def dig(data: Dict[str, Any], dotted: str) -> Optional[float]:
    """Numeric value at a dotted path, or ``None`` when absent."""
    node: Any = data
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def collect_history(root: str,
                    fresh: Optional[Dict[str, float]] = None,
                    ) -> Dict[str, Any]:
    """Per-metric trajectory over every committed snapshot.

    ``fresh`` optionally appends a just-measured column (metric name ->
    value) labelled ``fresh``, so a live run can be placed against the
    committed history.  Returns ``{"columns": [...], "metrics": [...]}``
    where each metric row carries its series, latest/previous values,
    and the percent delta between them (sign-adjusted so negative is
    always "got worse")."""
    records = load_bench_records(root)
    columns = [f"PR{pr}" for pr, _path, _data in records]
    if fresh:
        columns.append("fresh")
    metrics: List[Dict[str, Any]] = []
    for name, path, direction in BENCH_METRICS:
        series: List[Optional[float]] = [dig(data, path)
                                         for _pr, _path, data in records]
        if fresh:
            series.append(fresh.get(name))
        present = [value for value in series if value is not None]
        if not present:
            continue
        latest = present[-1]
        previous = present[-2] if len(present) > 1 else None
        delta_pct: Optional[float] = None
        if previous:
            delta_pct = (latest - previous) / previous * 100.0
            if direction == "lower":
                delta_pct = -delta_pct
        metrics.append({
            "name": name, "direction": direction, "series": series,
            "latest": latest, "previous": previous,
            "delta_pct": delta_pct,
        })
    return {"columns": columns, "metrics": metrics}


def _format_value(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if abs(value) >= 10_000:
        return f"{value:,.0f}"
    if abs(value) >= 100:
        return f"{value:.1f}"
    return f"{value:.2f}"


def _format_delta(metric: Dict[str, Any]) -> str:
    delta = metric["delta_pct"]
    if delta is None:
        return "-"
    arrow = "+" if delta >= 0 else ""
    return f"{arrow}{delta:.1f}%"


def history_rows(history: Dict[str, Any],
                 ) -> Tuple[List[str], List[List[str]]]:
    """``(headers, rows)`` for table rendering: one row per metric, one
    column per snapshot, a trailing sign-adjusted delta column (positive
    = improved, negative = regressed, whatever the metric's direction)."""
    headers = ["metric"] + list(history["columns"]) + ["last Δ"]
    rows: List[List[str]] = []
    for metric in history["metrics"]:
        rows.append([metric["name"]]
                    + [_format_value(value) for value in metric["series"]]
                    + [_format_delta(metric)])
    return headers, rows


def render_history(history: Dict[str, Any],
                   title: str = "benchmark history") -> str:
    """ASCII trend table (``repro bench history``)."""
    from repro.analysis.report import format_table

    headers, rows = history_rows(history)
    if not rows:
        return "no BENCH_PR*.json snapshots found"
    return format_table(headers, rows, title=title)


def render_history_markdown(history: Dict[str, Any]) -> str:
    """The same table as GitHub-flavoured markdown (the CI artifact)."""
    headers, rows = history_rows(history)
    if not rows:
        return "no BENCH_PR*.json snapshots found\n"
    lines = ["# Benchmark history", "",
             "| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    lines += ["| " + " | ".join(row) + " |" for row in rows]
    lines.append("")
    lines.append("`last Δ` is sign-adjusted: positive = improved, "
                 "negative = regressed, regardless of metric direction.")
    return "\n".join(lines) + "\n"


def format_trajectory(root: str, metric_name: str,
                      fresh: Optional[float] = None) -> str:
    """One metric's committed trajectory as a single diagnostic line,
    e.g. ``simulator.ops_per_sec: PR2 43,812 -> ... -> PR7 50,843
    (fresh 41,020)`` — what ``bench_gate.py`` prints on failure."""
    for name, path, _direction in BENCH_METRICS:
        if name == metric_name:
            break
    else:
        return f"{metric_name}: not a tracked metric"
    steps = [f"PR{pr} {_format_value(dig(data, path))}"
             for pr, _path, data in load_bench_records(root)
             if dig(data, path) is not None]
    if not steps:
        return f"{metric_name}: no committed history"
    line = f"{metric_name}: " + " -> ".join(steps)
    if fresh is not None:
        line += f" (fresh {_format_value(fresh)})"
    return line
