"""Forward error correction over the covert channel.

The paper measures effective throughput as "successfully leaked bits";
a real attacker instead protects the stream with coding so *usable* bits
survive channel errors.  This module provides a Hamming(7,4) SEC code and
the goodput arithmetic, quantifying how much of a noisy channel's raw
bandwidth an attacker actually keeps — the engineering step between
Fig. 8's raw numbers and an exploitable channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

# Hamming(7,4): positions 1..7, parity at 1, 2, 4 (1-indexed convention).
_DATA_POSITIONS = (3, 5, 6, 7)
_PARITY_POSITIONS = (1, 2, 4)


def hamming74_encode(nibble: Sequence[int]) -> List[int]:
    """Encode 4 data bits into a 7-bit Hamming codeword."""
    if len(nibble) != 4 or any(b not in (0, 1) for b in nibble):
        raise ValueError("need exactly 4 bits of 0/1")
    word = [0] * 8  # index 1..7
    for position, bit in zip(_DATA_POSITIONS, nibble):
        word[position] = bit
    for parity in _PARITY_POSITIONS:
        value = 0
        for position in range(1, 8):
            if position & parity and position != parity:
                value ^= word[position]
        word[parity] = value
    return word[1:]


def hamming74_decode(codeword: Sequence[int]) -> List[int]:
    """Decode a 7-bit codeword, correcting any single-bit error."""
    if len(codeword) != 7 or any(b not in (0, 1) for b in codeword):
        raise ValueError("need exactly 7 bits of 0/1")
    word = [0] + list(codeword)
    syndrome = 0
    for parity in _PARITY_POSITIONS:
        value = 0
        for position in range(1, 8):
            if position & parity:
                value ^= word[position]
        if value:
            syndrome |= parity
    if syndrome:
        word[syndrome] ^= 1  # single-error correction
    return [word[position] for position in _DATA_POSITIONS]


def encode_stream(bits: Sequence[int]) -> List[int]:
    """Encode a bit stream in 4-bit blocks (zero-padded)."""
    padded = list(bits)
    while len(padded) % 4:
        padded.append(0)
    out: List[int] = []
    for i in range(0, len(padded), 4):
        out.extend(hamming74_encode(padded[i:i + 4]))
    return out


def decode_stream(bits: Sequence[int]) -> List[int]:
    """Decode a stream of 7-bit codewords back to data bits."""
    if len(bits) % 7:
        raise ValueError("encoded stream length must be a multiple of 7")
    out: List[int] = []
    for i in range(0, len(bits), 7):
        out.extend(hamming74_decode(bits[i:i + 7]))
    return out


@dataclass(frozen=True)
class FecAssessment:
    """Usable-bandwidth accounting for a coded channel."""

    raw_throughput_mbps: float
    channel_error_rate: float
    residual_error_rate: float
    goodput_mbps: float

    def summary(self) -> str:
        return (f"raw {self.raw_throughput_mbps:.2f} Mb/s @ "
                f"{self.channel_error_rate:.2%} errors -> Hamming(7,4) "
                f"goodput {self.goodput_mbps:.2f} Mb/s @ "
                f"{self.residual_error_rate:.3%} residual")


def fec_assessment(raw_throughput_mbps: float,
                   channel_error_rate: float) -> FecAssessment:
    """Goodput of the channel under Hamming(7,4) protection.

    A 7-bit block decodes wrongly when it suffers 2+ errors; the rate 4/7
    overhead buys correction of every single-error block.
    """
    if raw_throughput_mbps < 0:
        raise ValueError("throughput must be >= 0")
    if not 0.0 <= channel_error_rate <= 1.0:
        raise ValueError("error rate must be within [0, 1]")
    p = channel_error_rate
    block_ok = (1 - p) ** 7 + 7 * p * (1 - p) ** 6
    residual_block_error = 1 - block_ok
    # Approximate residual data-bit error: a failed block garbles ~half
    # its 4 data bits.
    residual_bit_error = residual_block_error * 0.5
    goodput = raw_throughput_mbps * (4 / 7) * block_ok
    return FecAssessment(raw_throughput_mbps=raw_throughput_mbps,
                         channel_error_rate=p,
                         residual_error_rate=residual_bit_error,
                         goodput_mbps=goodput)
