"""Terminal-friendly chart rendering for the paper's figures.

Benches persist their numbers as tables; these helpers render the same
series as ASCII bar charts so examples and the CLI can show a figure's
*shape* — who wins, where the curve bends — without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def bar_chart(items: Sequence[Tuple[str, float]], width: int = 48,
              title: Optional[str] = None, unit: str = "") -> str:
    """Horizontal bar chart, one bar per (label, value)."""
    if width < 8:
        raise ValueError("width must be >= 8")
    if not items:
        return title or ""
    peak = max(value for _label, value in items)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label, _ in items)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in items:
        filled = int(round(width * value / peak))
        bar = "#" * filled
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)}| "
                     f"{value:g}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(groups: Sequence[Tuple[str, Dict[str, float]]],
                      width: int = 40, title: Optional[str] = None,
                      unit: str = "") -> str:
    """Grouped bars (e.g. Fig. 11: one group per workload, one bar per
    defense)."""
    if not groups:
        return title or ""
    peak = max((value for _g, series in groups for value in series.values()),
               default=1.0)
    if peak <= 0:
        peak = 1.0
    series_names = sorted({name for _g, series in groups for name in series})
    name_width = max(len(name) for name in series_names)
    lines: List[str] = []
    if title:
        lines.append(title)
    for group_label, series in groups:
        lines.append(group_label)
        for name in series_names:
            if name not in series:
                continue
            value = series[name]
            filled = int(round(width * value / peak))
            lines.append(f"  {name.ljust(name_width)} "
                         f"|{('#' * filled).ljust(width)}| {value:g}{unit}")
    return "\n".join(lines)


def latency_histogram(latencies: Sequence[int], bucket_cycles: int = 10,
                      width: int = 40, threshold: Optional[int] = None,
                      title: Optional[str] = None) -> str:
    """Fig. 7-style latency distribution with an optional threshold marker."""
    if bucket_cycles < 1:
        raise ValueError("bucket_cycles must be >= 1")
    if not latencies:
        return title or ""
    buckets: Dict[int, int] = {}
    for latency in latencies:
        bucket = (latency // bucket_cycles) * bucket_cycles
        buckets[bucket] = buckets.get(bucket, 0) + 1
    peak = max(buckets.values())
    lines: List[str] = []
    if title:
        lines.append(title)
    marker_done = threshold is None
    for bucket in sorted(buckets):
        if not marker_done and bucket > threshold:
            lines.append(f"{'--- threshold':>12} {threshold} cycles ---")
            marker_done = True
        count = buckets[bucket]
        bar = "#" * max(1, int(round(width * count / peak)))
        lines.append(f"{bucket:>8}-{bucket + bucket_cycles - 1:<6} "
                     f"{bar} {count}")
    if not marker_done:
        lines.append(f"{'--- threshold':>12} {threshold} cycles ---")
    return "\n".join(lines)
