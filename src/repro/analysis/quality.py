"""Channel-quality analytics: BER confidence intervals, capacity
estimates, leakage scores, and eye-diagram summaries.

These are the quantities the paper (and the related RowHammer-defense /
PRAC timing-channel literature) actually reports about a covert channel:

- **bit-error rate** with a Wilson score confidence interval (robust at
  the BER≈0 operating points the channels reach),
- a **mutual-information capacity estimate** from the joint distribution
  of transmitted bit and observed probe latency (falls back to the
  sent/received confusion matrix when no latencies were captured),
- a **TVLA-style leakage score**: Welch's t between the latency samples
  under bit 0 and bit 1 (|t| > 4.5 ⇒ the timing distinguishably leaks),
- **eye-diagram summaries**: per-bit latency statistics, the eye gap
  between the two latency clusters, and the decode threshold's margins.

:func:`channel_quality` bundles all of them into one JSON-able
:class:`ChannelQuality`; ``ChannelResult.quality()`` is the convenient
entry point from an attack run.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import (
    LatencyStats,
    WelchT,
    _percentile,
    split_by_bit,
    summarize_latencies,
    welch_t_stat,
)

#: The TVLA pass/fail boundary: |t| above this means the two latency
#: populations are distinguishable, i.e. the channel leaks.
TVLA_T_THRESHOLD = 4.5


def wilson_interval(successes: int, trials: int,
                    z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved at the boundary proportions covert channels live at
    (BER 0 or 1), where the naive normal interval collapses to a point.
    ``trials == 0`` returns the vacuous ``(0, 1)``.
    """
    if successes < 0 or trials < 0 or successes > trials:
        raise ValueError("need 0 <= successes <= trials")
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (p + z2 / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / trials
                                   + z2 / (4 * trials * trials))
    return (max(0.0, center - half), min(1.0, center + half))


def wilson_halfwidth(successes: int, trials: int, z: float = 1.96) -> float:
    """Half-width of the Wilson score interval — the adaptive sweep
    engine's convergence measure for BER estimates.  ``trials == 0``
    returns the vacuous ``0.5`` (the full ``(0, 1)`` interval).

    Monotonically non-increasing in ``trials`` for a fixed observed
    proportion, which is what makes "stop when the half-width drops
    below target" a sound early-stop rule.
    """
    lo, hi = wilson_interval(successes, trials, z)
    return (hi - lo) / 2.0


def relative_spread(values: Sequence[float]) -> Optional[float]:
    """``(max - min) / max(|mean|, eps)`` over a window of estimates —
    the stability measure for capacity-style metrics that have no
    closed-form CI.  ``None`` until at least two values exist."""
    vals = [float(v) for v in values]
    if len(vals) < 2:
        return None
    mean = sum(vals) / len(vals)
    scale = max(abs(mean), 1e-12)
    return (max(vals) - min(vals)) / scale


def bin_latencies(latencies: Sequence[int], bins: int = 8) -> List[int]:
    """Quantize latencies into at most ``bins`` equal-frequency bins.

    Edges are interior percentiles of the sample; duplicate edges (heavy
    ties — deterministic timings cluster on a few values) collapse, so
    the effective bin count adapts to the sample's support.
    """
    if bins < 1:
        raise ValueError("bins must be >= 1")
    if not latencies:
        return []
    ordered = sorted(latencies)
    edges: List[float] = []
    for i in range(1, bins):
        edge = _percentile(ordered, i / bins)
        if not edges or edge > edges[-1]:
            edges.append(edge)
    return [bisect_left(edges, lat) for lat in latencies]


def mutual_information_bits(xs: Sequence[Any], ys: Sequence[Any]) -> float:
    """Mutual information I(X; Y) in bits from paired discrete samples."""
    n = len(xs)
    if n == 0:
        return 0.0
    if len(ys) != n:
        raise ValueError("samples must align")
    joint: Dict[Tuple[Any, Any], int] = {}
    px: Dict[Any, int] = {}
    py: Dict[Any, int] = {}
    for x, y in zip(xs, ys):
        joint[(x, y)] = joint.get((x, y), 0) + 1
        px[x] = px.get(x, 0) + 1
        py[y] = py.get(y, 0) + 1
    mi = 0.0
    for (x, y), count in joint.items():
        p_xy = count / n
        mi += p_xy * math.log2(p_xy * n * n / (px[x] * py[y]))
    # Clamp tiny negative float residue from the log sums.
    return max(0.0, mi)


@dataclass(frozen=True)
class ChannelQuality:
    """Channel-quality metrics for one transmission (all JSON-able via
    :meth:`to_dict`)."""

    bits: int
    errors: int
    ber: float
    ber_ci95: Tuple[float, float]
    mutual_information_bits: float
    capacity_mbps: float
    leakage: WelchT
    threshold_cycles: Optional[int]
    eye_gap: Optional[float]
    zero_latency: Optional[LatencyStats]
    one_latency: Optional[LatencyStats]

    @property
    def leaks(self) -> bool:
        """TVLA verdict: are the two latency populations distinguishable?"""
        return abs(self.leakage.t) > TVLA_T_THRESHOLD

    def threshold_margins(self) -> Optional[Tuple[float, float]]:
        """(threshold − max zero-latency, min one-latency − threshold):
        both positive ⇔ the fixed threshold decodes this sample error-free."""
        if (self.threshold_cycles is None or self.zero_latency is None
                or self.one_latency is None):
            return None
        return (self.threshold_cycles - self.zero_latency.maximum,
                self.one_latency.minimum - self.threshold_cycles)

    def to_dict(self) -> Dict[str, Any]:
        margins = self.threshold_margins()
        return {
            "bits": self.bits,
            "errors": self.errors,
            "ber": self.ber,
            "ber_ci95": [self.ber_ci95[0], self.ber_ci95[1]],
            "mutual_information_bits": self.mutual_information_bits,
            "capacity_mbps": self.capacity_mbps,
            "leakage_t": self.leakage.t,
            "leakage_dof": self.leakage.dof,
            "leaks": self.leaks,
            "threshold_cycles": self.threshold_cycles,
            "eye_gap": self.eye_gap,
            "threshold_margins": list(margins) if margins else None,
            "zero_latency": (self.zero_latency.to_dict()
                             if self.zero_latency else None),
            "one_latency": (self.one_latency.to_dict()
                            if self.one_latency else None),
        }


def channel_quality(sent: Sequence[int], received: Sequence[int],
                    latencies: Optional[Sequence[int]] = None,
                    threshold_cycles: Optional[int] = None,
                    cycles: int = 0, cpu_hz: float = 0.0) -> ChannelQuality:
    """Compute every channel-quality metric for one transmission.

    ``latencies`` are the receiver's per-bit probe timings aligned with
    ``sent`` (as :class:`repro.attacks.ChannelResult` records them); when
    absent or misaligned, latency-based metrics degrade gracefully — MI
    falls back to the sent/received confusion matrix and the leakage
    score to 0.
    """
    if len(sent) != len(received):
        raise ValueError("sent and received lengths differ")
    bits = len(sent)
    errors = sum(1 for s, r in zip(sent, received) if s != r)
    ber = errors / bits if bits else 0.0
    ci = wilson_interval(errors, bits)

    lat = list(latencies) if latencies is not None else []
    aligned = len(lat) == bits and bits > 0
    if aligned:
        mi = mutual_information_bits(list(sent), bin_latencies(lat))
        zeros, ones = split_by_bit(lat, sent)
        leakage = welch_t_stat(ones, zeros)
        zero_stats = summarize_latencies(zeros) if zeros else None
        one_stats = summarize_latencies(ones) if ones else None
        eye_gap = (float(min(ones) - max(zeros))
                   if zeros and ones else None)
    else:
        mi = mutual_information_bits(list(sent), list(received))
        leakage = WelchT(t=0.0, dof=0.0, n_a=0, n_b=0)
        zero_stats = one_stats = None
        eye_gap = None

    capacity = 0.0
    if cycles > 0 and cpu_hz > 0 and bits:
        # MI per symbol x symbol rate: an achievable-rate estimate for
        # the channel as operated (same units as throughput_mbps).
        capacity = mi * bits * cpu_hz / cycles / 1e6
    return ChannelQuality(
        bits=bits, errors=errors, ber=ber, ber_ci95=ci,
        mutual_information_bits=mi, capacity_mbps=capacity,
        leakage=leakage, threshold_cycles=threshold_cycles,
        eye_gap=eye_gap, zero_latency=zero_stats, one_latency=one_stats)
