"""ASCII result tables mirroring the paper's tables and figure series."""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence


def format_markdown_table(headers: Sequence[str],
                          rows: Sequence[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table (used by run reports)."""
    def cell(value: object) -> str:
        return str(value).replace("|", "\\|")

    lines = ["| " + " | ".join(cell(h) for h in headers) + " |",
             "| " + " | ".join("---" for _ in headers) + " |"]
    for row in rows:
        lines.append("| " + " | ".join(cell(c) for c in row) + " |")
    return "\n".join(lines)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table."""
    columns = [[str(h)] + [str(row[i]) for row in rows]
               for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(str(cell).ljust(w)
                                for cell, w in zip(row, widths)))
    return "\n".join(lines)


class ResultTable:
    """Collects experiment rows, prints them, and persists them.

    Benches emit one ResultTable per paper table/figure; the rendered
    table goes to stdout (visible under ``pytest -s``) and to
    ``<output_dir>/<name>.txt`` so results survive capture.
    """

    def __init__(self, name: str, headers: Sequence[str],
                 title: Optional[str] = None,
                 output_dir: str = "benchmarks/results") -> None:
        self.name = name
        self.headers = list(headers)
        self.title = title or name
        self.output_dir = output_dir
        self.rows: List[List[object]] = []

    def add(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns")
        self.rows.append(list(cells))

    def add_mapping(self, mapping: Dict[str, object]) -> None:
        self.add(*[mapping[h] for h in self.headers])

    def render(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)

    def emit(self) -> str:
        """Print and persist the table; returns the rendered text."""
        text = self.render()
        print("\n" + text + "\n")
        os.makedirs(self.output_dir, exist_ok=True)
        path = os.path.join(self.output_dir, f"{self.name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        return text
