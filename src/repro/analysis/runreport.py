"""Run reports: one markdown + JSON document per sweep.

``repro report <experiment>`` runs a sweep with per-point metrics (and
optionally traces) enabled, then calls :func:`collect_run_report` to join
three artifact streams by point label:

- the sweep **payloads** (the figure numbers themselves),
- the per-point **metrics** files ``run_sweep(metrics_dir=...)`` wrote
  (counters, histograms, phase profiles),
- optional **trace summaries** from the matching Chrome-trace files.

The joined report is written to ``reports/<experiment>.json`` (machine
consumers) and ``reports/<experiment>.md`` (humans), the markdown built
from :func:`repro.analysis.report.format_markdown_table`.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_markdown_table

#: Quality columns rendered for payloads shaped like ``fig8_quality_point``
#: output (``{"attacks": {name: {metric: value}}}``).
_QUALITY_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("throughput_mbps", "Mb/s"),
    ("ber", "BER"),
    ("ber_ci95", "BER 95% CI"),
    ("mutual_information_bits", "MI (bits)"),
    ("capacity_mbps", "Capacity Mb/s"),
    ("leakage_t", "Leakage t"),
    ("leaks", "Leaks"),
    ("eye_gap", "Eye gap"),
)


def _fmt(value: Any) -> str:
    """Human-friendly cell formatting (floats shortened, lists joined)."""
    if value is None:
        return "—"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_fmt(v) for v in value) + "]"
    return str(value)


def collect_run_report(experiment: str, points: Sequence[Any],
                       outcome: Any,
                       metrics_dir: Optional[str] = None,
                       trace_dir: Optional[str] = None) -> Dict[str, Any]:
    """Join sweep payloads with per-point metrics/trace artifacts.

    ``points`` and ``outcome`` are the exact arguments/return of the
    :func:`repro.exp.run_sweep` call that produced the artifacts — the
    join key is each point's :func:`repro.exp.point_slug`, which is also
    how the runner named the files.
    """
    from repro.exp import code_version, metrics_path, point_slug
    from repro.obs import MetricsRegistry, summarize_chrome_trace

    entries: List[Dict[str, Any]] = []
    metric_dicts: List[Dict[str, Any]] = []
    for point, payload in zip(points, outcome.results):
        entry: Dict[str, Any] = {
            "label": point.describe(),
            "slug": point_slug(point),
            "params": dict(point.params),
            "payload": payload,
            "metrics": None,
            "trace_summary": None,
        }
        if metrics_dir:
            path = metrics_path(metrics_dir, point)
            if os.path.exists(path):
                with open(path, encoding="utf-8") as fh:
                    entry["metrics"] = json.load(fh)
                metric_dicts.append(entry["metrics"])
        if trace_dir:
            path = os.path.join(trace_dir,
                                f"{point_slug(point)}.trace.json")
            if os.path.exists(path):
                entry["trace_summary"] = summarize_chrome_trace(path)
        entries.append(entry)

    return {
        "experiment": experiment,
        "generated": time.strftime("%Y-%m-%d %H:%M:%S"),
        "code_version": code_version(),
        "jobs": outcome.jobs,
        "parallel": outcome.parallel,
        "elapsed_seconds": round(outcome.elapsed_seconds, 3),
        "points": entries,
        "totals": (MetricsRegistry.merge_dicts(metric_dicts)
                   if metric_dicts else None),
    }


def _quality_section(payload: Dict[str, Any]) -> List[str]:
    """Markdown for a ``{"attacks": {...}}`` quality payload."""
    rows = []
    for attack, metrics in payload["attacks"].items():
        rows.append([attack] + [_fmt(metrics.get(key))
                                for key, _ in _QUALITY_COLUMNS])
    headers = ["Attack"] + [title for _, title in _QUALITY_COLUMNS]
    return [format_markdown_table(headers, rows), ""]


def _scalar_section(payload: Dict[str, Any]) -> List[str]:
    """Markdown key/value table for a flat payload."""
    rows = [[key, _fmt(value)] for key, value in payload.items()
            if not isinstance(value, dict)]
    if not rows:
        return []
    return [format_markdown_table(["Field", "Value"], rows), ""]


def _phases_section(phases: Dict[str, Dict[str, Any]]) -> List[str]:
    rows = [[name, entry.get("calls", 0), _fmt(entry.get("seconds")),
             entry.get("ops", 0), _fmt(entry.get("ops_per_sec"))]
            for name, entry in sorted(phases.items())]
    return ["**Phase profile**", "",
            format_markdown_table(
                ["Phase", "Calls", "Seconds", "Ops", "Ops/s"], rows),
            ""]


def _counters_section(counters: Dict[str, int]) -> List[str]:
    rows = [[name, value] for name, value in sorted(counters.items())]
    return ["**Event counters**", "",
            format_markdown_table(["Counter", "Count"], rows), ""]


def _trace_section(summary: Dict[str, Any]) -> List[str]:
    span = summary.get("span_cycles") or [0, 0]
    lines = ["**Trace summary** — "
             f"{summary.get('events', 0)} events, cycles "
             f"{_fmt(span[0])}–{_fmt(span[1])}", ""]
    per_requestor = summary.get("per_requestor") or {}
    if per_requestor:
        rows = [[name, stats.get("events", 0), stats.get("operations", 0),
                 _fmt(stats.get("busy_cycles")),
                 _fmt(stats.get("queue_cycles")),
                 stats.get("hits", 0), stats.get("conflicts", 0)]
                for name, stats in sorted(per_requestor.items())]
        lines += [format_markdown_table(
            ["Requestor", "Events", "Ops", "Busy cyc", "Queue cyc",
             "Hits", "Conflicts"], rows), ""]
    return lines


def render_markdown(report: Dict[str, Any]) -> str:
    """The human-readable face of :func:`collect_run_report`'s output."""
    lines: List[str] = [
        f"# Run report: {report['experiment']}",
        "",
        f"- generated: {report['generated']}",
        f"- code version: `{report['code_version']}`",
        f"- jobs: {report['jobs']} "
        f"({'parallel' if report['parallel'] else 'serial'})",
        f"- elapsed: {report['elapsed_seconds']} s",
        "",
    ]
    for entry in report["points"]:
        lines += [f"## {entry['label']}", ""]
        payload = entry.get("payload")
        if isinstance(payload, dict):
            if isinstance(payload.get("attacks"), dict):
                lines += _quality_section(payload)
            else:
                lines += _scalar_section(payload)
        metrics = entry.get("metrics")
        if metrics:
            if metrics.get("phases"):
                lines += _phases_section(metrics["phases"])
            if metrics.get("counters"):
                lines += _counters_section(metrics["counters"])
        if entry.get("trace_summary"):
            lines += _trace_section(entry["trace_summary"])
    totals = report.get("totals")
    if totals:
        lines += ["## Sweep totals", ""]
        if totals.get("phases"):
            lines += _phases_section(totals["phases"])
        if totals.get("counters"):
            lines += _counters_section(totals["counters"])
    return "\n".join(lines).rstrip() + "\n"


def write_run_report(report: Dict[str, Any],
                     out_dir: str = "reports") -> Tuple[str, str]:
    """Write ``<experiment>.md`` + ``<experiment>.json`` under ``out_dir``;
    returns ``(markdown_path, json_path)``."""
    os.makedirs(out_dir, exist_ok=True)
    base = os.path.join(out_dir, report["experiment"])
    json_path = base + ".json"
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    md_path = base + ".md"
    with open(md_path, "w", encoding="utf-8") as fh:
        fh.write(render_markdown(report))
    return md_path, json_path
