"""Shared statistics primitives: latency summaries, percentiles, and
Welch's t-test.

This module is the single home for percentile math (``percentile`` /
``_percentile``) and for the Welch t-statistic — the workload trace
profiler, the channel-quality analyzers (:mod:`repro.analysis.quality`),
and the cache-monitor detector (:mod:`repro.detection`) all route through
it rather than carrying private copies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: Variance attributed to a cycle-resolution timer's quantization
#: (uniform over one cycle): keeps Welch's t finite when a deterministic
#: simulation produces zero-variance samples.
TIMER_QUANTIZATION_VARIANCE = 1.0 / 12.0


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample."""

    count: int
    mean: float
    stdev: float
    minimum: int
    maximum: int
    p50: float
    p95: float

    def summary(self) -> str:
        return (f"n={self.count} mean={self.mean:.1f} sd={self.stdev:.1f} "
                f"min={self.minimum} p50={self.p50:.0f} p95={self.p95:.0f} "
                f"max={self.maximum}")

    def to_dict(self) -> dict:
        return {"count": self.count, "mean": self.mean, "stdev": self.stdev,
                "min": self.minimum, "max": self.maximum,
                "p50": self.p50, "p95": self.p95}


def _percentile(ordered: Sequence[int], fraction: float) -> float:
    """Linear-interpolation percentile of an already *sorted* sample."""
    if not ordered:
        raise ValueError("empty sample")
    if len(ordered) == 1:
        return float(ordered[0])
    rank = fraction * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = min(lo + 1, len(ordered) - 1)
    weight = rank - lo
    return ordered[lo] * (1 - weight) + ordered[hi] * weight


def percentile(values: Sequence[int], fraction: float) -> float:
    """Linear-interpolation percentile of an unsorted sample.

    The one percentile implementation in the repo — callers holding a
    pre-sorted sample may use :func:`_percentile` directly.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    return _percentile(sorted(values), fraction)


def summarize_latencies(latencies: Sequence[int]) -> LatencyStats:
    """Descriptive statistics of a latency sample (cycles).

    A single-element sample is legal (stdev 0, every percentile equal to
    the value); an empty sample raises ``ValueError``.
    """
    if not latencies:
        raise ValueError("empty latency sample")
    ordered = sorted(latencies)
    n = len(ordered)
    mean = sum(ordered) / n
    variance = sum((x - mean) ** 2 for x in ordered) / n
    return LatencyStats(count=n, mean=mean, stdev=math.sqrt(variance),
                        minimum=ordered[0], maximum=ordered[-1],
                        p50=_percentile(ordered, 0.5),
                        p95=_percentile(ordered, 0.95))


def split_by_bit(latencies: Sequence[int],
                 bits: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Partition probe latencies by the transmitted bit (for Fig. 7)."""
    if len(latencies) != len(bits):
        raise ValueError("latencies and bits must align")
    zeros = [lat for lat, bit in zip(latencies, bits) if bit == 0]
    ones = [lat for lat, bit in zip(latencies, bits) if bit == 1]
    return zeros, ones


# ---------------------------------------------------------------------------
# Welch's t-test (TVLA-style leakage scoring, detector anomaly scoring)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WelchT:
    """Welch's t-statistic with its Welch–Satterthwaite degrees of
    freedom; the TVLA convention flags |t| > 4.5 as leakage."""

    t: float
    dof: float
    n_a: int
    n_b: int


def welch_t_from_summary(mean_a: float, var_a: float, n_a: int,
                         mean_b: float, var_b: float, n_b: int,
                         var_floor: float = 0.0) -> float:
    """Welch's t from summary statistics (means, variances, counts).

    ``var_floor`` bounds each sample's variance from below — pass
    :data:`TIMER_QUANTIZATION_VARIANCE` for cycle-quantized timings so a
    deterministic simulation (zero measured variance) yields a large but
    finite, JSON-able score instead of infinity.
    """
    if n_a < 1 or n_b < 1:
        return 0.0
    se2 = max(var_a, var_floor) / n_a + max(var_b, var_floor) / n_b
    if se2 <= 0.0:
        return 0.0
    return (mean_a - mean_b) / math.sqrt(se2)


def welch_t_stat(sample_a: Sequence[float],
                 sample_b: Sequence[float]) -> WelchT:
    """Welch's two-sample t-test over raw samples.

    Sample variances use Bessel's correction; the cycle-quantization
    variance floor keeps the statistic finite for deterministic samples.
    Fewer than two observations on either side scores 0 (no evidence).
    """
    n_a, n_b = len(sample_a), len(sample_b)
    if n_a < 2 or n_b < 2:
        return WelchT(t=0.0, dof=0.0, n_a=n_a, n_b=n_b)
    mean_a = sum(sample_a) / n_a
    mean_b = sum(sample_b) / n_b
    var_a = sum((x - mean_a) ** 2 for x in sample_a) / (n_a - 1)
    var_b = sum((x - mean_b) ** 2 for x in sample_b) / (n_b - 1)
    t = welch_t_from_summary(mean_a, var_a, n_a, mean_b, var_b, n_b,
                             var_floor=TIMER_QUANTIZATION_VARIANCE)
    fa = max(var_a, TIMER_QUANTIZATION_VARIANCE) / n_a
    fb = max(var_b, TIMER_QUANTIZATION_VARIANCE) / n_b
    dof = (fa + fb) ** 2 / (fa ** 2 / (n_a - 1) + fb ** 2 / (n_b - 1))
    return WelchT(t=t, dof=dof, n_a=n_a, n_b=n_b)
