"""Latency statistics used by the PoC validation and benches."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample."""

    count: int
    mean: float
    stdev: float
    minimum: int
    maximum: int
    p50: float
    p95: float

    def summary(self) -> str:
        return (f"n={self.count} mean={self.mean:.1f} sd={self.stdev:.1f} "
                f"min={self.minimum} p50={self.p50:.0f} p95={self.p95:.0f} "
                f"max={self.maximum}")


def _percentile(ordered: Sequence[int], fraction: float) -> float:
    if not ordered:
        raise ValueError("empty sample")
    if len(ordered) == 1:
        return float(ordered[0])
    rank = fraction * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = min(lo + 1, len(ordered) - 1)
    weight = rank - lo
    return ordered[lo] * (1 - weight) + ordered[hi] * weight


def summarize_latencies(latencies: Sequence[int]) -> LatencyStats:
    """Descriptive statistics of a latency sample (cycles)."""
    if not latencies:
        raise ValueError("empty latency sample")
    ordered = sorted(latencies)
    n = len(ordered)
    mean = sum(ordered) / n
    variance = sum((x - mean) ** 2 for x in ordered) / n
    return LatencyStats(count=n, mean=mean, stdev=math.sqrt(variance),
                        minimum=ordered[0], maximum=ordered[-1],
                        p50=_percentile(ordered, 0.5),
                        p95=_percentile(ordered, 0.95))


def split_by_bit(latencies: Sequence[int],
                 bits: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Partition probe latencies by the transmitted bit (for Fig. 7)."""
    if len(latencies) != len(bits):
        raise ValueError("latencies and bits must align")
    zeros = [lat for lat, bit in zip(latencies, bits) if bit == 0]
    ones = [lat for lat, bit in zip(latencies, bits) if bit == 1]
    return zeros, ones
