"""IMPACT attacks: covert channels, side channel, and comparison points.

The seven §5 covert channels:

==================  ===========================================  =========
Class               Primitive                                    Section
==================  ===========================================  =========
DramaClflushChannel clflush through the LLC                      §5.1 (i)
DramaEvictionChannel eviction sets (xor-mapped banks)            §5.1 (ii)
(analytical)        Streamline flushless cache channel           §5.1 (iii)
DmaEngineChannel    user-space DMA engine                        §5.1 (iv)
PnmOffchipChannel   PEI behind an off-chip predictor             §5.1 (v)
ImpactPnmChannel    PEI to bank PCUs (locality-monitor bypass)   §4.1 (vi)
ImpactPumChannel    masked multi-bank RowClone                   §4.2 (vii)
==================  ===========================================  =========

plus the §3.3 motivation attacks (:mod:`repro.attacks.sec33`), the Table 1
primitive layer (:mod:`repro.attacks.primitives`), the analytical
upper-bound models (:mod:`repro.attacks.analytical`), and the §4.3
read-mapping side channel (:mod:`repro.attacks.sidechannel`).
"""

from repro.attacks.analytical import (
    ChannelCostParameters,
    direct_access_upper_bound_mbps,
    drama_clflush_upper_bound_mbps,
    drama_eviction_upper_bound_mbps,
    streamline_upper_bound_mbps,
)
from repro.attacks.channel import (
    DEFAULT_THRESHOLD_CYCLES,
    ChannelResult,
    CovertChannel,
    random_bits,
)
from repro.attacks.dma import DmaEngineChannel
from repro.attacks.drama import DramaClflushChannel, DramaEvictionChannel
from repro.attacks.drama_spy import (
    DramaKeystrokeSpy,
    KeystrokeSpyResult,
    poisson_keystrokes,
)
from repro.attacks.impact_pnm import ImpactPnmChannel
from repro.attacks.inference import (
    IdentificationResult,
    ReadIdentifier,
    RegionScore,
    longest_common_subsequence,
)
from repro.attacks.impact_pum import ImpactPumChannel
from repro.attacks.multi_pair import MultiPairResult, PairOutcome, run_multi_pair
from repro.attacks.pnm_offchip import PnmOffchipChannel
from repro.attacks.primitives import (
    TABLE1,
    PrimitiveProperties,
    measure_all,
    properties_for,
)
from repro.attacks.sec33 import (
    BaselineEvictionAttack,
    DirectAccessAttack,
    run_sec33_point,
)
from repro.attacks.recon import AddressReconnaissance, BankFunctionModel
from repro.attacks.streamline import StreamlineChannel
from repro.attacks.sidechannel import (
    ConcurrentSideChannel,
    ReadMappingSideChannel,
    SideChannelConfig,
    SideChannelResult,
    fake_schedule,
)

__all__ = [
    "AddressReconnaissance",
    "BankFunctionModel",
    "BaselineEvictionAttack",
    "ChannelCostParameters",
    "ChannelResult",
    "ConcurrentSideChannel",
    "CovertChannel",
    "DEFAULT_THRESHOLD_CYCLES",
    "DirectAccessAttack",
    "DmaEngineChannel",
    "DramaClflushChannel",
    "DramaEvictionChannel",
    "DramaKeystrokeSpy",
    "KeystrokeSpyResult",
    "MultiPairResult",
    "PairOutcome",
    "IdentificationResult",
    "ImpactPnmChannel",
    "ImpactPumChannel",
    "PnmOffchipChannel",
    "PrimitiveProperties",
    "ReadIdentifier",
    "ReadMappingSideChannel",
    "RegionScore",
    "SideChannelConfig",
    "SideChannelResult",
    "StreamlineChannel",
    "TABLE1",
    "fake_schedule",
    "longest_common_subsequence",
    "poisson_keystrokes",
    "direct_access_upper_bound_mbps",
    "drama_clflush_upper_bound_mbps",
    "drama_eviction_upper_bound_mbps",
    "measure_all",
    "properties_for",
    "random_bits",
    "run_multi_pair",
    "run_sec33_point",
    "streamline_upper_bound_mbps",
]
