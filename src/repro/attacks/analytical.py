"""Analytical upper-bound throughput models (§5.1 methodology).

The paper compares against DRAMA and Streamline by *modeling their maximum
throughput*: simulation-extracted parameters (LLC hit/lookup latency,
average miss latency, hit/miss ratios) feed an analytical model, validated
against the attacks' published real-system numbers (e.g. Streamline
reports 1.8 Mb/s on hardware; the model bounds it at 2.7 Mb/s for the
smallest LLC).  This module implements those models; the parameters are
extracted from a built :class:`repro.system.System` so the bounds move
with the swept cache configuration exactly as in Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.system import System


@dataclass(frozen=True)
class ChannelCostParameters:
    """Simulation-extracted latency parameters (§5.1)."""

    l1_latency: int
    l2_latency: int
    llc_latency: int
    queue_cycles: int
    dram_hit_cycles: int
    dram_conflict_cycles: int
    cpu_hz: float

    @staticmethod
    def from_system(system: System) -> "ChannelCostParameters":
        h = system.config.hierarchy
        t = system.config.timings
        return ChannelCostParameters(
            l1_latency=h.l1_latency,
            l2_latency=h.l2_latency,
            llc_latency=h.llc_latency_cycles,
            queue_cycles=system.config.queue_cycles,
            dram_hit_cycles=t.hit_cycles,
            dram_conflict_cycles=t.conflict_cycles,
            cpu_hz=system.cpu_hz,
        )

    @property
    def lookup_path_cycles(self) -> int:
        """Full-depth cache lookup on the way to memory."""
        return self.l1_latency + self.l2_latency + self.llc_latency

    @property
    def dram_avg_cycles(self) -> float:
        """Average DRAM access over an even hit/conflict mix."""
        return (self.dram_hit_cycles + self.dram_conflict_cycles) / 2

    @property
    def miss_path_cycles(self) -> float:
        """Average latency of a demand access that misses every cache."""
        return self.lookup_path_cycles + self.queue_cycles + self.dram_avg_cycles

    def mbps(self, cycles_per_bit: float) -> float:
        if cycles_per_bit <= 0:
            return 0.0
        return self.cpu_hz / cycles_per_bit / 1e6


def streamline_upper_bound_mbps(system: System,
                                redundancy: float = 3.0) -> float:
    """Maximum throughput of the Streamline cache channel [115].

    Streamline is flushless: sender and receiver stream asynchronously over
    a shared array much larger than the LLC, one bit per cache line.  Per
    bit, the bound charges:

    - the sender's store miss (full lookup path + DRAM fill),
    - the resulting dirty-line write-back (an extra DRAM write on the
      channel's bandwidth),
    - the receiver's load miss (full lookup path + DRAM),

    all scaled by ``redundancy`` — the synchronization-free protocol's
    coding/guard-band overhead (Streamline transmits error-correction
    margin and rate-matching gaps instead of synchronizing).  With the
    default parameters the smallest-LLC (2 MB) bound is ~2.7 Mb/s,
    matching §5.1's validation figure (vs 1.8 Mb/s measured on real
    hardware by [115]), and it shrinks as the LLC lookup latency grows.
    """
    if redundancy < 1.0:
        raise ValueError("redundancy must be >= 1.0")
    p = ChannelCostParameters.from_system(system)
    sender_store = p.miss_path_cycles
    writeback = p.llc_latency + p.queue_cycles + p.dram_avg_cycles
    receiver_load = p.miss_path_cycles
    cycles_per_bit = redundancy * (sender_store + writeback + receiver_load)
    return p.mbps(cycles_per_bit)


def drama_clflush_upper_bound_mbps(system: System) -> float:
    """Maximum throughput of DRAMA-clflush [68] under the §5.1 cost model.

    Per bit (lockstep): sender's flush (LLC probe + write-back) and reload,
    receiver's timed reload and flush, plus fence/sync serialization.
    """
    p = ChannelCostParameters.from_system(system)
    flush = p.llc_latency + p.queue_cycles + p.dram_avg_cycles  # dirty WB
    reload_ = p.miss_path_cycles
    sync = 2 * 60 + 2 * 30  # two semaphore hops + two fences
    cycles_per_bit = flush + reload_ + reload_ + sync
    return p.mbps(cycles_per_bit)


def drama_eviction_upper_bound_mbps(system: System) -> float:
    """Maximum throughput of DRAMA with eviction sets (§3.3 cost model):
    one access per LLC way, each paying the full lookup path."""
    p = ChannelCostParameters.from_system(system)
    ways = system.config.hierarchy.llc_ways
    eviction = ways * (p.lookup_path_cycles * 0.5 + p.queue_cycles)
    # 0.5: roughly half the walk hits higher levels on a warm set.
    reload_ = p.miss_path_cycles
    sync = 2 * 60
    cycles_per_bit = eviction + 2 * reload_ + sync
    return p.mbps(cycles_per_bit)


def direct_access_upper_bound_mbps(system: System) -> float:
    """Maximum throughput of the §3.3 direct-memory-access attack: one
    uncached request per side per bit."""
    p = ChannelCostParameters.from_system(system)
    per_side = p.queue_cycles + p.dram_avg_cycles
    cycles_per_bit = 2 * per_side + 80  # light shared-memory handshake
    return p.mbps(cycles_per_bit)
