"""Covert-channel framework: encoding, measurement, and reporting.

Common machinery shared by all seven §5 channels: message generation,
threshold calibration against the row-buffer latency distributions,
result accounting (error rate and the paper's effective-throughput metric
— §5.1: *"We measure the throughput of each attack only based on the
successfully leaked data"*), and the cost model for user-space
synchronization (POSIX semaphores/barriers, §4.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.obs import metrics_phase
from repro.system import System

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.analysis.quality import ChannelQuality

#: Decode threshold from Fig. 7: latencies above => row-buffer conflict
#: => logic-1; below => hit => logic-0.
DEFAULT_THRESHOLD_CYCLES = 150

#: POSIX semaphore post/wait cost (shared-memory fast path + occasional
#: futex).
SEM_OP_CYCLES = 80

#: Arrival/departure cost of a pthread-style barrier.
BARRIER_OP_CYCLES = 120

#: Per-bit receiver-side decode cost (compare + store).
DECODE_CYCLES = 8

#: Loop bookkeeping per transmitted bit (index math, branch).
LOOP_OVERHEAD_CYCLES = 6


def random_bits(count: int, seed: int = 0) -> List[int]:
    """A reproducible random message of ``count`` bits."""
    if count < 0:
        raise ValueError("count must be >= 0")
    rng = random.Random(seed)
    return [rng.randint(0, 1) for _ in range(count)]


@dataclass
class ChannelResult:
    """Outcome of one covert-channel transmission.

    ``cycles`` is wall-clock virtual time from the start of transmission to
    the last decoded bit.  ``raw_throughput_mbps`` counts every transmitted
    bit; ``throughput_mbps`` counts only correctly received bits — the
    paper's metric.
    """

    attack: str
    sent: List[int]
    received: List[int]
    cycles: int
    cpu_hz: float
    probe_latencies: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.sent) != len(self.received):
            raise ValueError("sent and received lengths differ")
        if self.cycles < 0:
            raise ValueError("cycles must be >= 0")

    @property
    def bits(self) -> int:
        return len(self.sent)

    @property
    def errors(self) -> int:
        return sum(1 for s, r in zip(self.sent, self.received) if s != r)

    @property
    def correct_bits(self) -> int:
        return self.bits - self.errors

    @property
    def error_rate(self) -> float:
        return self.errors / self.bits if self.bits else 0.0

    def _mbps(self, bits: int) -> float:
        if self.cycles <= 0:
            return 0.0
        return bits * self.cpu_hz / self.cycles / 1e6

    @property
    def raw_throughput_mbps(self) -> float:
        return self._mbps(self.bits)

    @property
    def throughput_mbps(self) -> float:
        """Effective throughput over successfully leaked bits only (§5.1)."""
        return self._mbps(self.correct_bits)

    @property
    def cycles_per_bit(self) -> float:
        return self.cycles / self.bits if self.bits else 0.0

    def summary(self) -> str:
        return (f"{self.attack}: {self.bits} bits in {self.cycles} cycles "
                f"-> {self.throughput_mbps:.2f} Mb/s "
                f"(raw {self.raw_throughput_mbps:.2f}), "
                f"error rate {self.error_rate:.2%}")

    def quality(self, threshold_cycles: int = DEFAULT_THRESHOLD_CYCLES
                ) -> "ChannelQuality":
        """Channel-quality analytics for this transmission: BER with a
        Wilson confidence interval, a mutual-information capacity
        estimate, the TVLA Welch-t leakage score, and eye-diagram
        summaries (see :mod:`repro.analysis.quality`)."""
        from repro.analysis.quality import channel_quality

        return channel_quality(self.sent, self.received,
                               self.probe_latencies, threshold_cycles,
                               cycles=self.cycles, cpu_hz=self.cpu_hz)


class CovertChannel:
    """Base class for the §5 covert channels.

    Subclasses implement :meth:`transmit`; the base provides message
    generation, threshold handling, and decode helpers.
    """

    name = "covert-channel"

    def __init__(self, system: System,
                 threshold_cycles: int = DEFAULT_THRESHOLD_CYCLES) -> None:
        if threshold_cycles <= 0:
            raise ValueError("threshold must be positive")
        self.system = system
        self.threshold_cycles = threshold_cycles

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def transmit(self, bits: Sequence[int]) -> ChannelResult:
        """Send ``bits`` from the sender to the receiver; returns the
        decoded result."""
        raise NotImplementedError

    def transmit_random(self, bits: int, seed: int = 0) -> ChannelResult:
        """Send a reproducible random message of ``bits`` bits.

        When a metrics registry is installed the whole transmission is
        profiled as phase ``transmit:<attack>`` with bits as its ops.
        """
        message = random_bits(bits, seed)
        with metrics_phase(f"transmit:{self.name}") as span:
            result = self.transmit(message)
            span.add_ops(len(message))
        return result

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def decode(self, latency: int) -> int:
        """Latency above the threshold => interference => logic-1."""
        return 1 if latency > self.threshold_cycles else 0

    @staticmethod
    def check_bits(bits: Sequence[int]) -> List[int]:
        out = []
        for bit in bits:
            if bit not in (0, 1):
                raise ValueError(f"message bits must be 0/1, got {bit!r}")
            out.append(int(bit))
        return out

    def make_result(self, sent: Sequence[int], received: Sequence[int],
                    cycles: int,
                    probe_latencies: Optional[List[int]] = None) -> ChannelResult:
        result = ChannelResult(attack=self.name, sent=list(sent),
                               received=list(received), cycles=cycles,
                               cpu_hz=self.system.cpu_hz,
                               probe_latencies=probe_latencies or [])
        registry = self.system.metrics
        if registry is not None:
            registry.counter("channel.bits").inc(result.bits)
            registry.counter("channel.bit_errors").inc(result.errors)
            registry.counter(f"channel.transmissions.{self.name}").inc()
            registry.histogram("channel.probe_latency").observe_many(
                result.probe_latencies)
            registry.gauge(
                f"channel.{self.name}.throughput_mbps").set(
                    result.throughput_mbps)
        return result
