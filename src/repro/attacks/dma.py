"""DMA-engine row-buffer covert channel (§5.1 comparison point iv).

Structurally the same bank-per-bit pipelined protocol as IMPACT-PnM, but
every memory touch goes through the (R)DMA engine: no cache lookups, yet
each operation drags the software stack with it — descriptor setup,
doorbell, completion — whose cost also jitters.  The threat model follows
the paper's "powerful attacker" (§5.1): context-switch and OS latencies
are ignored in the *measurement* but still serialize the accesses, and
the jitter erodes the 70-cycle row-buffer gap (Table 1).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.attacks.channel import (
    DECODE_CYCLES,
    LOOP_OVERHEAD_CYCLES,
    SEM_OP_CYCLES,
    ChannelResult,
    CovertChannel,
)
from repro.sim.scheduler import Barrier, Context, Scheduler, Semaphore
from repro.system import System

#: The decode threshold sits above the DMA software stack (overhead + queue
#: + row hit vs conflict, + timer read).  The +/-40-cycle stack jitter makes
#: the two distributions overlap around this midpoint — the coarseness
#: Table 1 flags for the DMA primitive.
DMA_THRESHOLD_CYCLES = 426

NOP_CYCLES = 2


class DmaEngineChannel(CovertChannel):
    """Row-buffer covert channel over a user-space DMA engine."""

    name = "DMA-engine"

    def __init__(self, system: System, batch_size: int = 4,
                 banks: Optional[List[int]] = None,
                 init_row: int = 100, interference_row: int = 200,
                 threshold_cycles: int = DMA_THRESHOLD_CYCLES) -> None:
        super().__init__(system, threshold_cycles)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        self.banks = banks if banks is not None else list(range(system.num_banks))
        if not self.banks:
            raise ValueError("need at least one bank")
        if batch_size > len(self.banks):
            raise ValueError(
                f"batch_size {batch_size} exceeds the {len(self.banks)} "
                f"available banks")
        self._init_addrs = [system.address_of(b, init_row) for b in self.banks]
        self._intf_addrs = [system.address_of(b, interference_row)
                            for b in self.banks]

    def transmit(self, bits: Sequence[int]) -> ChannelResult:
        message = self.check_bits(bits)
        system = self.system

        sched = Scheduler()
        start_barrier = Barrier(parties=2, name="start")
        sem = Semaphore(name="batch-ready")
        credit_count = max(1, len(self.banks) // self.batch_size - 1)
        credits = Semaphore(initial=credit_count, name="credits")
        received: List[int] = []
        probe_latencies: List[int] = []
        window = {"t0": 0, "t1": 0, "noise_mark": 0}
        batches = [message[i:i + self.batch_size]
                   for i in range(0, len(message), self.batch_size)]

        def sender(ctx: Context, sys_: System):
            yield start_barrier.wait()
            cursor = 0
            for batch in batches:
                ctx.advance(SEM_OP_CYCLES)
                yield credits.acquire()
                for bit in batch:
                    bank_index = cursor % len(self.banks)
                    if bit:
                        sys_.dma_access(ctx, self._intf_addrs[bank_index],
                                        requestor="sender")
                    else:
                        ctx.advance(NOP_CYCLES)
                    ctx.advance(LOOP_OVERHEAD_CYCLES)
                    cursor += 1
                    yield None
                ctx.advance(SEM_OP_CYCLES)
                yield sem.release()

        def receiver(ctx: Context, sys_: System):
            for addr in self._init_addrs:
                sys_.dma_access(ctx, addr, requestor="receiver")
                yield None
            yield start_barrier.wait()
            window["t0"] = ctx.now
            window["noise_mark"] = ctx.now
            timer = sys_.new_timer()
            cursor = 0
            for batch in batches:
                ctx.advance(SEM_OP_CYCLES)
                yield sem.acquire()
                for _bit in batch:
                    bank_index = cursor % len(self.banks)
                    sys_.noise.run(window["noise_mark"], ctx.now)
                    window["noise_mark"] = ctx.now
                    timer.start(ctx)
                    sys_.dma_access(ctx, self._init_addrs[bank_index],
                                    requestor="receiver")
                    latency = timer.stop(ctx)
                    probe_latencies.append(latency)
                    received.append(self.decode(latency))
                    ctx.advance(DECODE_CYCLES + LOOP_OVERHEAD_CYCLES)
                    cursor += 1
                    yield None
                yield credits.release()
            window["t1"] = ctx.now

        sched.spawn(sender, system, name="sender")
        sched.spawn(receiver, system, name="receiver")
        sched.run()
        cycles = window["t1"] - window["t0"]
        return self.make_result(message, received, cycles, probe_latencies)
