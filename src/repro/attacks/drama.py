"""DRAMA-style row-buffer covert channels through the cache hierarchy [68].

Two variants, matching the §5.1 comparison points:

- **DRAMA-clflush** — sender and receiver force their loads to DRAM with
  ``clflush`` (flush-after-use, so the timed load of the next round
  misses).  The flush probes the LLC; a dirty line puts the write-back on
  the critical path (§3.2).
- **DRAMA-eviction** — ``clflush`` replaced with eviction-set walks.
  Eviction is *probabilistic* under SRRIP (Table 1), so failed evictions
  surface as decode errors, and its cost scales with LLC ways and lookup
  latency — the effect Figs. 2/3/8 quantify.

Both run in lockstep over a single shared DRAM bank: the sender encodes a
1 by opening *its* row (a conflict for the receiver's row), a 0 by staying
idle (the receiver's own row stays open => hit).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.attacks.channel import (
    DECODE_CYCLES,
    LOOP_OVERHEAD_CYCLES,
    SEM_OP_CYCLES,
    ChannelResult,
    CovertChannel,
)
from repro.sim.scheduler import Barrier, Context, Scheduler, Semaphore
from repro.system import System

#: Serialization (mfence/lfence) around flushes and timed loads.
FENCE_CYCLES = 30

#: Sender-side idle slot when transmitting a 0.
IDLE_CYCLES = 4


class DramaClflushChannel(CovertChannel):
    """DRAMA covert channel using clflush as the cache-bypass primitive."""

    name = "DRAMA-clflush"

    def __init__(self, system: System, bank: int = 0, sender_row: int = 300,
                 receiver_row: int = 310, threshold_cycles: int = 150,
                 probes_per_bit: int = 3) -> None:
        super().__init__(system, threshold_cycles)
        if sender_row == receiver_row:
            raise ValueError("sender and receiver rows must differ")
        if probes_per_bit < 1:
            raise ValueError("probes_per_bit must be >= 1")
        self.bank = bank
        self.sender_addr = system.address_of(bank, sender_row)
        self.receiver_addr = system.address_of(bank, receiver_row)
        self.probes_per_bit = probes_per_bit

    # Subclass hook: how each side pushes its line out of the caches.
    def _sender_bypass(self, ctx: Context, sys_: System) -> None:
        sys_.clflush(ctx, core=0, addr=self.sender_addr, requestor="sender")
        ctx.advance(FENCE_CYCLES)

    def _receiver_bypass(self, ctx: Context, sys_: System) -> None:
        sys_.clflush(ctx, core=1, addr=self.receiver_addr,
                     requestor="receiver")
        ctx.advance(FENCE_CYCLES)

    def transmit(self, bits: Sequence[int]) -> ChannelResult:
        message = self.check_bits(bits)
        system = self.system
        system.warm_up([self.sender_addr, self.receiver_addr])

        sched = Scheduler()
        start_barrier = Barrier(parties=2, name="start")
        sent_sem = Semaphore(name="sent")
        probed_sem = Semaphore(initial=1, name="probed")
        received: List[int] = []
        probe_latencies: List[int] = []
        window = {"t0": 0, "t1": 0, "noise_mark": 0}

        def sender(ctx: Context, sys_: System):
            # Warm round: line starts uncached, row state unknown.
            yield start_barrier.wait()
            for bit in message:
                ctx.advance(SEM_OP_CYCLES)
                yield probed_sem.acquire()
                if bit:
                    sys_.load(ctx, core=0, addr=self.sender_addr,
                              requestor="sender")
                    self._sender_bypass(ctx, sys_)
                else:
                    ctx.advance(IDLE_CYCLES)
                ctx.advance(LOOP_OVERHEAD_CYCLES + SEM_OP_CYCLES)
                yield sent_sem.release()

        def receiver(ctx: Context, sys_: System):
            # Open the receiver's row so the first 0-bit decodes as a hit,
            # and flush the line so the first timed load reaches DRAM.
            sys_.load(ctx, core=1, addr=self.receiver_addr,
                      requestor="receiver")
            self._receiver_bypass(ctx, sys_)
            yield start_barrier.wait()
            window["t0"] = ctx.now
            window["noise_mark"] = ctx.now
            timer = sys_.new_timer()
            for _bit in message:
                ctx.advance(SEM_OP_CYCLES)
                yield sent_sem.acquire()
                sys_.noise.run(window["noise_mark"], ctx.now)
                window["noise_mark"] = ctx.now
                # No scheduler checkpoint inside the probe loop: the sender
                # is blocked on probed_sem for the whole bit, so there is
                # nothing to interleave with (the batching-safety rule;
                # see EXPERIMENTS.md).
                worst = 0
                for probe in range(self.probes_per_bit):
                    timer.start(ctx)
                    sys_.load(ctx, core=1, addr=self.receiver_addr,
                              requestor="receiver")
                    latency = timer.stop(ctx)
                    worst = max(worst, latency)
                    self._receiver_bypass(ctx, sys_)
                probe_latencies.append(worst)
                received.append(self.decode(worst))
                ctx.advance(DECODE_CYCLES + LOOP_OVERHEAD_CYCLES + SEM_OP_CYCLES)
                yield probed_sem.release()
            window["t1"] = ctx.now

        sched.spawn(sender, system, name="sender")
        sched.spawn(receiver, system, name="receiver")
        sched.run()
        cycles = window["t1"] - window["t0"]
        return self.make_result(message, received, cycles, probe_latencies)


class DramaEvictionChannel(DramaClflushChannel):
    """DRAMA covert channel using eviction sets instead of clflush.

    Eviction-set lines are chosen congruent in the LLC set but landing in
    *other* DRAM banks, so walking them does not disturb the target bank's
    row buffer.  That requires an address mapping where bank bits are not
    fully determined by the LLC set bits — the ``xor`` mapping (the kind
    of bank hash DRAMA reverse-engineers).  ``eviction_factor`` scales the
    walk beyond one access per way, the "much higher actual latency"
    caveat of §3.3.
    """

    name = "DRAMA-eviction"

    def __init__(self, system: System, bank: int = 0, sender_row: int = 300,
                 receiver_row: int = 310, threshold_cycles: int = 150,
                 probes_per_bit: int = 1, eviction_factor: int = 2) -> None:
        # A single probe per bit: each probe already drags a full
        # eviction walk with it, so repeating it is unaffordable.
        super().__init__(system, bank=bank, sender_row=sender_row,
                         receiver_row=receiver_row,
                         threshold_cycles=threshold_cycles,
                         probes_per_bit=probes_per_bit)
        if eviction_factor < 1:
            raise ValueError("eviction_factor must be >= 1")
        self.eviction_factor = eviction_factor
        self._sender_set = self._build_safe_eviction_set(self.sender_addr)
        self._receiver_set = self._build_safe_eviction_set(self.receiver_addr)

    def _build_safe_eviction_set(self, addr: int) -> List[int]:
        """LLC-set-congruent addresses that avoid the channel's bank."""
        hierarchy = self.system.hierarchy
        mapper = self.system.controller.mapper
        size = hierarchy.config.llc_ways * self.eviction_factor
        stride = hierarchy.llc_set_stride()
        capacity = self.system.controller.config.geometry.capacity_bytes
        base = hierarchy.llc.line_addr(addr)
        result: List[int] = []
        k = 1
        attempts = 0
        max_attempts = size * 64
        while len(result) < size and attempts < max_attempts:
            candidate = (base + k * stride) % capacity
            k += 1
            attempts += 1
            if candidate == base:
                continue
            if mapper.decode(candidate).bank == self.bank:
                continue
            if candidate not in result:
                result.append(candidate)
        if len(result) < size:
            raise ValueError(
                "cannot build a bank-safe eviction set under this address "
                "mapping; use the 'xor' mapping (SystemConfig(mapping='xor'))"
            )
        return result

    def _walk(self, ctx: Context, sys_: System, eviction_set: List[int],
              core: int, requestor: str) -> None:
        # Batched: the peer thread is blocked on the channel's semaphores
        # whenever a walk runs, so eliding per-load checkpoints is safe.
        sys_.load_many(ctx, core=core, addrs=eviction_set,
                       requestor=requestor)

    def _sender_bypass(self, ctx: Context, sys_: System) -> None:
        self._walk(ctx, sys_, self._sender_set, core=0, requestor="sender")

    def _receiver_bypass(self, ctx: Context, sys_: System) -> None:
        self._walk(ctx, sys_, self._receiver_set, core=1, requestor="receiver")
