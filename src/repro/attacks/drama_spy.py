"""DRAMA's original side channel: spying on event timing (§2.3, [68]).

DRAMA's headline demonstration leaks *keystroke timing*: the victim's
input handler appends to a buffer on every keystroke, activating the
buffer's DRAM row; an attacker that co-locates a row in the same bank and
continuously probes it (flush + timed reload) sees a row-buffer conflict
exactly when a keystroke landed in between.  Recovered inter-keystroke
intervals feed classic typing-dynamics inference.

Included here as the processor-centric counterpart to the §4.3 PiM side
channel: same physical channel (the shared row buffer), but the probe
path must fight the cache hierarchy — which is precisely the cost IMPACT
eliminates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.sim.scheduler import Context, Scheduler
from repro.system import System

#: Decode threshold for the attacker's timed reload (full cache-miss path).
PROBE_THRESHOLD_CYCLES = 150


@dataclass(frozen=True)
class KeystrokeSpyResult:
    """Recovered event timeline vs ground truth."""

    true_times: Tuple[int, ...]
    detected_times: Tuple[int, ...]
    probe_period_cycles: float

    @property
    def matches(self) -> int:
        """Events recovered within a few probe periods (the victim's
        access latency plus one probe round trip)."""
        tolerance = 3 * self.probe_period_cycles
        detected = list(self.detected_times)
        hits = 0
        for true_time in self.true_times:
            for i, det in enumerate(detected):
                if abs(det - true_time) <= tolerance:
                    hits += 1
                    del detected[i]
                    break
        return hits

    @property
    def recall(self) -> float:
        if not self.true_times:
            return 1.0
        return self.matches / len(self.true_times)

    @property
    def precision(self) -> float:
        if not self.detected_times:
            return 1.0
        return self.matches / len(self.detected_times)

    def interval_error_cycles(self) -> Optional[float]:
        """Mean absolute error of recovered inter-event intervals (the
        typing-dynamics signal), when counts line up."""
        if (len(self.detected_times) != len(self.true_times)
                or len(self.true_times) < 2):
            return None
        true_gaps = [b - a for a, b in zip(self.true_times,
                                           self.true_times[1:])]
        det_gaps = [b - a for a, b in zip(self.detected_times,
                                          self.detected_times[1:])]
        return sum(abs(t - d) for t, d in zip(true_gaps, det_gaps)) \
            / len(true_gaps)


class DramaKeystrokeSpy:
    """Flush+reload row-buffer monitor over one shared bank."""

    def __init__(self, system: System, bank: int = 0, victim_row: int = 400,
                 attacker_row: int = 410,
                 threshold_cycles: int = PROBE_THRESHOLD_CYCLES) -> None:
        if victim_row == attacker_row:
            raise ValueError("victim and attacker rows must differ")
        self.system = system
        self.bank = bank
        self.victim_row = victim_row
        self.attacker_row = attacker_row
        self.threshold_cycles = threshold_cycles
        self.probe_count = 0

    def spy(self, event_times: Sequence[int]) -> KeystrokeSpyResult:
        """Run victim and attacker concurrently; recover the event times.

        ``event_times`` are the keystrokes' virtual times (ascending).
        """
        times = sorted(event_times)
        system = self.system
        line = system.config.hierarchy.line_bytes
        attacker_addr = system.address_of(self.bank, self.attacker_row)
        detected: List[int] = []
        state = {"done_at": None}
        probe_times: List[int] = []

        def victim(ctx: Context, sys_: System):
            for i, event_time in enumerate(times):
                ctx.advance_to(event_time)
                # Checkpoint after the idle jump so lower-time threads
                # (the attacker's probes) run before this access lands.
                yield None
                # The handler appends to its buffer: a fresh line in the
                # victim row each keystroke => a real DRAM activation.
                offset = (i * line) % sys_.config.geometry.row_bytes
                addr = sys_.address_of(self.bank, self.victim_row, offset)
                sys_.load(ctx, core=0, addr=addr, is_write=True,
                          requestor="victim")
                yield None
            state["done_at"] = ctx.now

        def attacker(ctx: Context, sys_: System):
            timer = sys_.new_timer()
            # Open the attacker's row once.
            sys_.load(ctx, core=1, addr=attacker_addr, requestor="attacker")
            sys_.clflush(ctx, core=1, addr=attacker_addr,
                         requestor="attacker")
            yield None
            while state["done_at"] is None or ctx.now < state["done_at"]:
                timer.start(ctx)
                sys_.load(ctx, core=1, addr=attacker_addr,
                          requestor="attacker")
                latency = timer.stop(ctx)
                self.probe_count += 1
                probe_times.append(ctx.now)
                if latency > self.threshold_cycles:
                    detected.append(ctx.now)
                sys_.clflush(ctx, core=1, addr=attacker_addr,
                             requestor="attacker")
                yield None

        sched = Scheduler()
        sched.spawn(victim, system, name="victim")
        sched.spawn(attacker, system, name="attacker")
        sched.run()
        if len(probe_times) >= 2:
            period = ((probe_times[-1] - probe_times[0])
                      / (len(probe_times) - 1))
        else:
            period = 1.0
        # Drop the warm-up detection (the first probe conflicts with the
        # victim row only if an event preceded it).
        return KeystrokeSpyResult(true_times=tuple(times),
                                  detected_times=tuple(detected),
                                  probe_period_cycles=period)


def poisson_keystrokes(count: int, mean_gap_cycles: int = 50_000,
                       start: int = 10_000, seed: int = 0) -> List[int]:
    """A human-ish keystroke schedule (exponential inter-arrival)."""
    if count < 0 or mean_gap_cycles < 1:
        raise ValueError("count >= 0 and mean_gap_cycles >= 1 required")
    rng = random.Random(seed)
    times: List[int] = []
    now = start
    for _ in range(count):
        now += max(1, int(rng.expovariate(1.0 / mean_gap_cycles)))
        times.append(now)
    return times
