"""IMPACT-PnM: the PEI-based covert channel (§4.1, Listing 1).

Protocol:

1. The receiver initializes one predetermined row per DRAM bank with PEIs
   (bypassing the locality monitor via the ignore flag), then both sides
   synchronize on a barrier.
2. The sender transmits batches of M bits, one bank per bit: logic-1 =>
   PEI to a *different* row of that bank (row-buffer conflict planted);
   logic-0 => NOP.  After each batch it executes a memory fence and posts
   a semaphore.
3. The receiver blocks on the semaphore, then probes each bank of the
   batch with a PEI to the *initialized* row, timing it with rdtscp:
   above-threshold latency => the sender perturbed the bank => 1.

The semaphore pipelines sender and receiver: while the receiver probes
batch k, the sender already transmits batch k+1 on the next banks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.attacks.channel import (
    DECODE_CYCLES,
    LOOP_OVERHEAD_CYCLES,
    SEM_OP_CYCLES,
    ChannelResult,
    CovertChannel,
)
from repro.obs import metrics_phase
from repro.sim.scheduler import Barrier, Context, Scheduler, Semaphore
from repro.system import System

#: Cost of the sender's NOP slot for a logic-0 (issue-width bubble).
NOP_CYCLES = 2


class ImpactPnmChannel(CovertChannel):
    """The IMPACT-PnM covert channel (§4.1)."""

    name = "IMPACT-PnM"

    def __init__(self, system: System, batch_size: int = 4,
                 banks: Optional[List[int]] = None,
                 init_row: int = 100, interference_row: int = 200,
                 threshold_cycles: int = 150) -> None:
        super().__init__(system, threshold_cycles)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if init_row == interference_row:
            raise ValueError("init and interference rows must differ")
        self.batch_size = batch_size
        self.banks = banks if banks is not None else list(range(system.num_banks))
        if not self.banks:
            raise ValueError("need at least one bank")
        if batch_size > len(self.banks):
            # One bank holds one bit of row-buffer evidence per batch; a
            # batch wider than the bank set would overwrite itself.
            raise ValueError(
                f"batch_size {batch_size} exceeds the {len(self.banks)} "
                f"available banks")
        self.init_row = init_row
        self.interference_row = interference_row
        self._init_addrs = [system.address_of(b, init_row) for b in self.banks]
        self._intf_addrs = [system.address_of(b, interference_row)
                            for b in self.banks]

    # ------------------------------------------------------------------
    # Hooks (overridden by the PnM-OffChip baseline)
    # ------------------------------------------------------------------

    def _sender_op(self, ctx: Context, sys_: System, bank_index: int) -> None:
        """Plant a row-buffer conflict in the bank (a logic-1)."""
        sys_.pei_op(ctx, self._intf_addrs[bank_index], set_ignore=True,
                    requestor="sender")

    def _receiver_init(self, ctx: Context, sys_: System, bank_index: int) -> None:
        """Open the bank's predetermined row (step 1)."""
        sys_.pei_op(ctx, self._init_addrs[bank_index], set_ignore=True,
                    requestor="receiver")

    def _receiver_probe(self, ctx: Context, sys_: System, bank_index: int) -> None:
        """Re-activate the initialized row; the caller times this."""
        sys_.pei_op(ctx, self._init_addrs[bank_index], set_ignore=True,
                    requestor="receiver")

    def _receiver_recover(self, ctx: Context, sys_: System, bank_index: int,
                          latency: int) -> None:
        """Post-probe fixup hook (no-op for plain IMPACT-PnM)."""

    # ------------------------------------------------------------------

    def transmit(self, bits: Sequence[int]) -> ChannelResult:
        message = self.check_bits(bits)
        system = self.system
        with metrics_phase("warm-up"):
            system.warm_up(self._init_addrs + self._intf_addrs)

        sched = Scheduler()
        start_barrier = Barrier(parties=2, name="start")
        sem = Semaphore(name="batch-ready")
        # Backpressure: the sender may run at most (banks/batch - 1)
        # batches ahead, or it would wrap around and perturb banks the
        # receiver has not probed yet.
        credit_count = max(1, len(self.banks) // self.batch_size - 1)
        credits = Semaphore(initial=credit_count, name="credits")
        received: List[int] = []
        probe_latencies: List[int] = []
        window = {"t0": 0, "t1": 0, "noise_mark": 0}
        batches = [message[i:i + self.batch_size]
                   for i in range(0, len(message), self.batch_size)]

        def sender(ctx: Context, sys_: System):
            yield start_barrier.wait()
            bank_cursor = 0
            for batch in batches:
                ctx.advance(SEM_OP_CYCLES)
                yield credits.acquire()
                for bit in batch:
                    bank_index = bank_cursor % len(self.banks)
                    if bit:
                        self._sender_op(ctx, sys_, bank_index)
                    else:
                        ctx.advance(NOP_CYCLES)
                    ctx.advance(LOOP_OVERHEAD_CYCLES)
                    bank_cursor += 1
                    yield None
                ctx.fence()
                ctx.advance(SEM_OP_CYCLES)
                yield sem.release()

        def receiver(ctx: Context, sys_: System):
            # Step 1: initialize every used bank (opens init_row).
            for bank_index in range(len(self.banks)):
                self._receiver_init(ctx, sys_, bank_index)
                yield None
            yield start_barrier.wait()
            window["t0"] = ctx.now
            window["noise_mark"] = ctx.now
            timer = sys_.new_timer()
            bank_cursor = 0
            for batch in batches:
                ctx.advance(SEM_OP_CYCLES)
                yield sem.acquire()
                for _bit in batch:
                    bank_index = bank_cursor % len(self.banks)
                    sys_.noise.run(window["noise_mark"], ctx.now)
                    window["noise_mark"] = ctx.now
                    timer.start(ctx)
                    self._receiver_probe(ctx, sys_, bank_index)
                    latency = timer.stop(ctx)
                    probe_latencies.append(latency)
                    received.append(self.decode(latency))
                    self._receiver_recover(ctx, sys_, bank_index, latency)
                    ctx.advance(DECODE_CYCLES + LOOP_OVERHEAD_CYCLES)
                    bank_cursor += 1
                    yield None
                yield credits.release()
            window["t1"] = ctx.now

        sched.spawn(sender, system, name="sender")
        sched.spawn(receiver, system, name="receiver")
        with metrics_phase("transmit") as span:
            sched.run()
            span.add_ops(len(message))
        cycles = window["t1"] - window["t0"]
        with metrics_phase("decode"):
            return self.make_result(message, received, cycles,
                                    probe_latencies)

    # ------------------------------------------------------------------
    # Fig. 9 support
    # ------------------------------------------------------------------

    def sender_receiver_breakdown(self, bits: int = 16, seed: int = 0) -> dict:
        """Cycles the sender spends sending vs the receiver reading one
        fully-encoded ``bits``-bit message, without pipelining (Fig. 9).

        The message is all ones — the sender-side cost that bounds the
        sender's rate (a zero is a free NOP slot).  The PnM sender issues
        its PEIs one at a time, which is why it is ~14x slower than the
        single-RowClone PuM sender (§5.3)."""
        message = [1] * bits
        system = self.system
        sched = Scheduler()
        times = {}

        def body(ctx: Context, sys_: System):
            for bank_index in range(min(bits, len(self.banks))):
                self._receiver_init(ctx, sys_, bank_index)
                yield None
            t0 = ctx.now
            for i, bit in enumerate(message):
                bank_index = i % len(self.banks)
                if bit:
                    self._sender_op(ctx, sys_, bank_index)
                else:
                    ctx.advance(NOP_CYCLES)
                ctx.advance(LOOP_OVERHEAD_CYCLES)
                yield None
            ctx.fence()
            times["send_cycles"] = ctx.now - t0
            t1 = ctx.now
            timer = sys_.new_timer()
            for i in range(len(message)):
                bank_index = i % len(self.banks)
                timer.start(ctx)
                self._receiver_probe(ctx, sys_, bank_index)
                timer.stop(ctx)
                ctx.advance(DECODE_CYCLES + LOOP_OVERHEAD_CYCLES)
                yield None
            times["read_cycles"] = ctx.now - t1

        sched.spawn(body, system, name="breakdown")
        sched.run()
        return times

    # ------------------------------------------------------------------
    # Threshold calibration
    # ------------------------------------------------------------------

    def calibrate_threshold(self, samples: int = 8,
                            calibration_rows: tuple = (900, 910)) -> int:
        """Measure hit and conflict PEI latencies on this system and set
        the decode threshold to their midpoint.

        Real attackers calibrate online rather than hard-coding Fig. 7's
        150 cycles; this reproduces that step.  Uses spare rows so the
        channel's init/interference rows stay untouched.  Returns (and
        installs) the calibrated threshold.
        """
        if samples < 1:
            raise ValueError("samples must be >= 1")
        row_a, row_b = calibration_rows
        if row_a == row_b:
            raise ValueError("calibration rows must differ")
        system = self.system
        bank = self.banks[0]
        addr_a = system.address_of(bank, row_a)
        addr_b = system.address_of(bank, row_b)
        hits: List[int] = []
        conflicts: List[int] = []
        sched = Scheduler()

        def body(ctx: Context, sys_: System):
            timer = sys_.new_timer()
            sys_.pei_op(ctx, addr_a, set_ignore=True, requestor="calibrate")
            for _ in range(samples):
                timer.start(ctx)
                sys_.pei_op(ctx, addr_a, set_ignore=True,
                            requestor="calibrate")
                hits.append(timer.stop(ctx))
                ctx.advance(200)
                yield None
            for i in range(samples):
                target = addr_b if i % 2 == 0 else addr_a
                timer.start(ctx)
                sys_.pei_op(ctx, target, set_ignore=True,
                            requestor="calibrate")
                conflicts.append(timer.stop(ctx))
                ctx.advance(200)
                yield None

        sched.spawn(body, system, name="calibrate")
        sched.run()
        hit_mean = sum(hits) / len(hits)
        conflict_mean = sum(conflicts) / len(conflicts)
        if conflict_mean <= hit_mean:
            raise RuntimeError(
                "calibration found no usable timing gap (defended system?)")
        self.threshold_cycles = int(round((hit_mean + conflict_mean) / 2))
        return self.threshold_cycles
