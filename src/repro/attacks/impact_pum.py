"""IMPACT-PuM: the RowClone-based covert channel (§4.2, Listing 2).

Protocol, per N-bit round (N = number of banks):

1. The receiver initializes all banks with one full-mask RowClone; both
   sides meet at barrier 1.
2. The sender encodes the round's N bits in a RowClone *mask* and issues a
   single masked RowClone: selected banks get their row buffer perturbed in
   parallel; both sides meet at barrier 2.
3. The receiver probes each bank with a single-bank RowClone whose source
   is the row it last left open there, timing each probe: an
   above-threshold latency means the sender's clone displaced the open row
   (the extra precharge) => logic-1.

The sender's entire round is one operation — that parallelism is the
advantage over IMPACT-PnM (§4.2) and the 14x sender speedup of Fig. 9.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.attacks.channel import (
    BARRIER_OP_CYCLES,
    DECODE_CYCLES,
    LOOP_OVERHEAD_CYCLES,
    ChannelResult,
    CovertChannel,
)
from repro.pim.rowclone import RowCloneEngine
from repro.sim.scheduler import Barrier, Context, Scheduler
from repro.system import System

#: Receiver-side row schedule: probes alternate between these rows so the
#: probe source always matches what the receiver last left open.
_RECEIVER_ROWS = (20, 30)
#: Sender-side rows: the masked clone leaves _SENDER_DST open (a conflict
#: for any receiver probe).
_SENDER_SRC = 200
_SENDER_DST = 210
_RECEIVER_INIT_SRC = 10


class ImpactPumChannel(CovertChannel):
    """The IMPACT-PuM covert channel (§4.2)."""

    name = "IMPACT-PuM"

    def __init__(self, system: System, threshold_cycles: int = 150) -> None:
        super().__init__(system, threshold_cycles)
        self.num_banks = system.num_banks
        if self.num_banks > 64:
            # RowClone masks are arbitrary-width ints; this cap only keeps
            # rounds (and thus barrier overhead amortization) reasonable.
            self.num_banks = 64

    def transmit(self, bits: Sequence[int]) -> ChannelResult:
        message = self.check_bits(bits)
        system = self.system
        engine = system.rowclone_engine
        n = self.num_banks
        rounds = [message[i:i + n] for i in range(0, len(message), n)]

        sched = Scheduler()
        barrier_1 = Barrier(parties=2, name="round-start")
        barrier_2 = Barrier(parties=2, name="sent")
        received: List[int] = []
        probe_latencies: List[int] = []
        window = {"t0": 0, "t1": 0, "noise_mark": 0}

        src_s = system.address_of(bank=0, row=_SENDER_SRC)
        dst_s = system.address_of(bank=0, row=_SENDER_DST)

        def sender(ctx: Context, sys_: System):
            for round_bits in rounds:
                ctx.advance(BARRIER_OP_CYCLES)
                yield barrier_1.wait()
                mask = RowCloneEngine.mask_from_bits(list(round_bits))
                if mask:
                    sys_.rowclone(ctx, src_s, dst_s, mask, requestor="sender")
                ctx.advance(BARRIER_OP_CYCLES)
                yield barrier_2.wait()

        def receiver(ctx: Context, sys_: System):
            # Step 1: initialize all banks with a single RowClone.
            init_src = sys_.address_of(bank=0, row=_RECEIVER_INIT_SRC)
            init_dst = sys_.address_of(bank=0, row=_RECEIVER_ROWS[0])
            full_mask = (1 << n) - 1
            sys_.rowclone(ctx, init_src, init_dst, full_mask,
                          requestor="receiver")
            yield None
            window["t0"] = ctx.now
            window["noise_mark"] = ctx.now
            timer = sys_.new_timer()
            parity = 0
            for round_bits in rounds:
                ctx.advance(BARRIER_OP_CYCLES)
                yield barrier_1.wait()
                ctx.advance(BARRIER_OP_CYCLES)
                yield barrier_2.wait()
                src_row = _RECEIVER_ROWS[parity]
                dst_row = _RECEIVER_ROWS[1 - parity]
                src = sys_.address_of(bank=0, row=src_row)
                dst = sys_.address_of(bank=0, row=dst_row)
                for bank in range(len(round_bits)):
                    sys_.noise.run(window["noise_mark"], ctx.now)
                    window["noise_mark"] = ctx.now
                    timer.start(ctx)
                    sys_.rowclone(ctx, src, dst, 1 << bank,
                                  requestor="receiver")
                    latency = timer.stop(ctx)
                    probe_latencies.append(latency)
                    received.append(self.decode(latency))
                    ctx.advance(DECODE_CYCLES + LOOP_OVERHEAD_CYCLES)
                    yield None
                parity = 1 - parity
            window["t1"] = ctx.now

        sched.spawn(sender, system, name="sender")
        sched.spawn(receiver, system, name="receiver")
        sched.run()
        cycles = window["t1"] - window["t0"]
        return self.make_result(message, received, cycles, probe_latencies)

    # ------------------------------------------------------------------
    # Fig. 9 support
    # ------------------------------------------------------------------

    def sender_receiver_breakdown(self, bits: int = 16, seed: int = 0) -> dict:
        """Cycles the sender spends sending vs the receiver reading one
        fully-encoded (all-ones) ``bits``-bit message (Fig. 9)."""
        message = [1] * bits
        system = self.system
        engine = system.rowclone_engine
        mask = RowCloneEngine.mask_from_bits(message)
        src_s = system.address_of(bank=0, row=_SENDER_SRC)
        dst_s = system.address_of(bank=0, row=_SENDER_DST)

        sched = Scheduler()
        times = {}

        def body(ctx: Context, sys_: System):
            init_src = sys_.address_of(bank=0, row=_RECEIVER_INIT_SRC)
            init_dst = sys_.address_of(bank=0, row=_RECEIVER_ROWS[0])
            sys_.rowclone(ctx, init_src, init_dst, (1 << bits) - 1,
                          requestor="receiver")
            yield None
            t0 = ctx.now
            if mask:
                sys_.rowclone(ctx, src_s, dst_s, mask, requestor="sender")
            times["send_cycles"] = ctx.now - t0
            t1 = ctx.now
            timer = sys_.new_timer()
            src = sys_.address_of(bank=0, row=_RECEIVER_ROWS[0])
            dst = sys_.address_of(bank=0, row=_RECEIVER_ROWS[1])
            for bank in range(bits):
                timer.start(ctx)
                sys_.rowclone(ctx, src, dst, 1 << bank, requestor="receiver")
                timer.stop(ctx)
                ctx.advance(DECODE_CYCLES + LOOP_OVERHEAD_CYCLES)
                yield None
            times["read_cycles"] = ctx.now - t1

        sched.spawn(body, system, name="breakdown")
        sched.run()
        return times

    # ------------------------------------------------------------------
    # Threshold calibration
    # ------------------------------------------------------------------

    def calibrate_threshold(self, samples: int = 8) -> int:
        """Measure quiet vs perturbed RowClone probe latencies and set the
        decode threshold to their midpoint (the PuM analogue of
        :meth:`ImpactPnmChannel.calibrate_threshold`)."""
        if samples < 1:
            raise ValueError("samples must be >= 1")
        system = self.system
        quiet: List[int] = []
        perturbed: List[int] = []
        sched = Scheduler()
        rows = (240, 250, 260)

        def body(ctx: Context, sys_: System):
            timer = sys_.new_timer()
            src = sys_.address_of(bank=0, row=rows[0])
            dst = sys_.address_of(bank=0, row=rows[1])
            alt = sys_.address_of(bank=0, row=rows[2])
            sys_.rowclone(ctx, src, dst, 0b1, requestor="calibrate")
            for i in range(samples):
                # Quiet probe: source row is what we last left open.
                a, b = (dst, src) if i % 2 == 0 else (src, dst)
                timer.start(ctx)
                sys_.rowclone(ctx, a, b, 0b1, requestor="calibrate")
                quiet.append(timer.stop(ctx))
                ctx.advance(200)
                yield None
            for i in range(samples):
                # Perturb the row buffer, then probe.
                sys_.controller.activate(0, rows[2] + 20 + i, ctx.now,
                                         requestor="calibrate")
                a, b = (dst, src) if i % 2 == 0 else (src, dst)
                timer.start(ctx)
                sys_.rowclone(ctx, a, b, 0b1, requestor="calibrate")
                perturbed.append(timer.stop(ctx))
                ctx.advance(200)
                yield None

        sched.spawn(body, system, name="calibrate")
        sched.run()
        quiet_mean = sum(quiet) / len(quiet)
        perturbed_mean = sum(perturbed) / len(perturbed)
        if perturbed_mean <= quiet_mean:
            raise RuntimeError(
                "calibration found no usable timing gap (defended system?)")
        self.threshold_cycles = int(round((quiet_mean + perturbed_mean) / 2))
        return self.threshold_cycles
