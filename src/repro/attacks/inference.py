"""Step 4 of the §4.3 attack: from leaked banks to genome inference.

The side channel (Fig. 6, steps 1-3) leaks *which bank* each of the
victim's hash-table probes touched.  This module implements the
completion step the paper defers to imputation literature [110-113] in
its simplest concrete form: because the index layout is public (every
user of the mapping tool shares it), the attacker can *predict* the bank
sequence any candidate genome region would produce — and match the leak
against those predictions to identify where the victim's read came from.

The precision discussion of §5.4 becomes measurable here: more banks =>
fewer candidate buckets per bank => sharper predicted sequences => the
correct region separates from the decoys faster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.genomics.index import ReferenceIndex
from repro.genomics.minimizers import extract_minimizers


def longest_common_subsequence(a: Sequence[int], b: Sequence[int]) -> int:
    """LCS length — order-preserving overlap of two bank sequences."""
    if not a or not b:
        return 0
    previous = [0] * (len(b) + 1)
    for x in a:
        current = [0]
        for j, y in enumerate(b, start=1):
            if x == y:
                current.append(previous[j - 1] + 1)
            else:
                current.append(max(previous[j], current[-1]))
        previous = current
    return previous[-1]


@dataclass(frozen=True)
class RegionScore:
    """How well one candidate region explains the leak."""

    region_start: int
    score: float
    predicted_banks: Tuple[int, ...]


@dataclass(frozen=True)
class IdentificationResult:
    """Ranking of candidate regions against one leaked sequence."""

    ranking: Tuple[RegionScore, ...]

    @property
    def best(self) -> RegionScore:
        return self.ranking[0]

    def rank_of(self, region_start: int, tolerance: int = 0) -> Optional[int]:
        """1-based rank of the candidate at/near ``region_start``."""
        for i, entry in enumerate(self.ranking, start=1):
            if abs(entry.region_start - region_start) <= tolerance:
                return i
        return None

    @property
    def margin(self) -> float:
        """Score gap between the best and second-best candidate."""
        if len(self.ranking) < 2:
            return self.ranking[0].score if self.ranking else 0.0
        return self.ranking[0].score - self.ranking[1].score


class ReadIdentifier:
    """Matches leaked bank sequences against candidate reference regions."""

    def __init__(self, reference: str, index: ReferenceIndex,
                 read_length: int = 150) -> None:
        if read_length < index.k:
            raise ValueError("read_length must cover at least one k-mer")
        self.reference = reference
        self.index = index
        self.read_length = read_length
        self._prediction_cache: Dict[int, Tuple[int, ...]] = {}

    def predicted_banks(self, region_start: int) -> Tuple[int, ...]:
        """The bank sequence a read from ``region_start`` would probe.

        Derived entirely from public information: the reference sequence
        and the shared index layout."""
        if not 0 <= region_start <= len(self.reference) - self.read_length:
            raise ValueError(f"region {region_start} out of range")
        cached = self._prediction_cache.get(region_start)
        if cached is not None:
            return cached
        fragment = self.reference[region_start:region_start + self.read_length]
        banks: List[int] = []
        for minimizer in extract_minimizers(fragment, k=self.index.k,
                                            w=self.index.w):
            location = self.index.location_of_hash(minimizer.hash_value)
            if location is not None:
                banks.append(location.bank)
        result = tuple(banks)
        self._prediction_cache[region_start] = result
        return result

    def score_region(self, leaked_banks: Sequence[int],
                     region_start: int) -> RegionScore:
        """Normalized order-preserving overlap between leak and prediction."""
        predicted = self.predicted_banks(region_start)
        if not predicted or not leaked_banks:
            return RegionScore(region_start=region_start, score=0.0,
                               predicted_banks=predicted)
        overlap = longest_common_subsequence(list(leaked_banks),
                                             list(predicted))
        score = overlap / max(len(predicted), len(leaked_banks))
        return RegionScore(region_start=region_start, score=score,
                           predicted_banks=predicted)

    def identify(self, leaked_banks: Sequence[int],
                 candidate_starts: Sequence[int]) -> IdentificationResult:
        """Rank candidate regions by how well they explain the leak."""
        if not candidate_starts:
            raise ValueError("need at least one candidate region")
        scores = [self.score_region(leaked_banks, start)
                  for start in candidate_starts]
        scores.sort(key=lambda s: (-s.score, s.region_start))
        return IdentificationResult(ranking=tuple(scores))

    def identification_accuracy(self,
                                trials: Sequence[Tuple[Sequence[int], int]],
                                candidate_starts: Sequence[int],
                                tolerance: int = 0) -> float:
        """Fraction of (leak, true_region) trials ranked first."""
        if not trials:
            return 0.0
        hits = 0
        for leaked_banks, true_start in trials:
            result = self.identify(leaked_banks, candidate_starts)
            if result.rank_of(true_start, tolerance=tolerance) == 1:
                hits += 1
        return hits / len(trials)
