"""Multi-pair IMPACT-PnM: aggregate throughput across concurrent channels.

The paper evaluates one sender/receiver pair (§5.3).  Bank-level
parallelism leaves headroom: k pairs on disjoint bank subsets share only
the PiM interface and the controller, so aggregate throughput scales
close to k until the shared front-end saturates.  This module runs all
pairs inside one scheduler (genuinely concurrent, contending for the same
banks/controller state) and reports per-pair and aggregate results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.attacks.channel import (
    DECODE_CYCLES,
    LOOP_OVERHEAD_CYCLES,
    SEM_OP_CYCLES,
    random_bits,
)
from repro.attacks.impact_pnm import NOP_CYCLES
from repro.sim.scheduler import Barrier, Context, Scheduler, Semaphore
from repro.system import System


@dataclass(frozen=True)
class PairOutcome:
    """One pair's transmission result."""

    pair: int
    banks: Tuple[int, ...]
    sent: Tuple[int, ...]
    received: Tuple[int, ...]
    cycles: int

    @property
    def errors(self) -> int:
        return sum(1 for s, r in zip(self.sent, self.received) if s != r)

    @property
    def error_rate(self) -> float:
        return self.errors / len(self.sent) if self.sent else 0.0


@dataclass(frozen=True)
class MultiPairResult:
    """Aggregate outcome of k concurrent IMPACT-PnM channels."""

    outcomes: Tuple[PairOutcome, ...]
    cpu_hz: float

    @property
    def pairs(self) -> int:
        return len(self.outcomes)

    @property
    def total_correct_bits(self) -> int:
        return sum(len(o.sent) - o.errors for o in self.outcomes)

    @property
    def makespan_cycles(self) -> int:
        return max((o.cycles for o in self.outcomes), default=0)

    @property
    def aggregate_throughput_mbps(self) -> float:
        if self.makespan_cycles <= 0:
            return 0.0
        return (self.total_correct_bits * self.cpu_hz
                / self.makespan_cycles / 1e6)

    @property
    def worst_error_rate(self) -> float:
        return max((o.error_rate for o in self.outcomes), default=0.0)


def run_multi_pair(system: System, pairs: int, bits_per_pair: int = 256,
                   batch_size: int = 4, init_row: int = 100,
                   interference_row: int = 200, threshold_cycles: int = 150,
                   seed: int = 0) -> MultiPairResult:
    """Run ``pairs`` concurrent IMPACT-PnM channels on disjoint bank sets.

    Banks are split evenly; each pair runs the full §4.1 protocol
    (initialization, credit-backpressured batches, semaphore pipelining)
    inside one shared scheduler, so controller- and bank-level contention
    between pairs is real, not assumed away.
    """
    if pairs < 1:
        raise ValueError("pairs must be >= 1")
    num_banks = system.num_banks
    banks_per_pair = num_banks // pairs
    if banks_per_pair < batch_size:
        raise ValueError(
            f"{pairs} pairs over {num_banks} banks leaves {banks_per_pair} "
            f"banks per pair — below the batch size {batch_size}")
    sched = Scheduler()
    outcomes: List[PairOutcome] = [None] * pairs  # type: ignore[list-item]

    for pair in range(pairs):
        banks = tuple(range(pair * banks_per_pair,
                            (pair + 1) * banks_per_pair))
        message = random_bits(bits_per_pair, seed=seed + pair)
        init_addrs = [system.address_of(b, init_row) for b in banks]
        intf_addrs = [system.address_of(b, interference_row) for b in banks]
        batches = [message[i:i + batch_size]
                   for i in range(0, len(message), batch_size)]
        start_barrier = Barrier(parties=2, name=f"start-{pair}")
        sem = Semaphore(name=f"ready-{pair}")
        credits = Semaphore(initial=max(1, len(banks) // batch_size - 1),
                            name=f"credits-{pair}")

        def sender(ctx: Context, sys_: System, intf=intf_addrs,
                   batches=batches, banks=banks, start=start_barrier,
                   sem=sem, credits=credits):
            yield start.wait()
            cursor = 0
            for batch in batches:
                ctx.advance(SEM_OP_CYCLES)
                yield credits.acquire()
                for bit in batch:
                    if bit:
                        sys_.pei_op(ctx, intf[cursor % len(banks)],
                                    set_ignore=True,
                                    requestor=f"sender-{banks[0]}")
                    else:
                        ctx.advance(NOP_CYCLES)
                    ctx.advance(LOOP_OVERHEAD_CYCLES)
                    cursor += 1
                    yield None
                ctx.fence()
                ctx.advance(SEM_OP_CYCLES)
                yield sem.release()

        def receiver(ctx: Context, sys_: System, pair=pair, init=init_addrs,
                     message=message, batches=batches, banks=banks,
                     start=start_barrier, sem=sem, credits=credits):
            for addr in init:
                sys_.pei_op(ctx, addr, set_ignore=True,
                            requestor=f"receiver-{banks[0]}")
                yield None
            yield start.wait()
            t0 = ctx.now
            timer = sys_.new_timer()
            received: List[int] = []
            cursor = 0
            for batch in batches:
                ctx.advance(SEM_OP_CYCLES)
                yield sem.acquire()
                for _bit in batch:
                    timer.start(ctx)
                    sys_.pei_op(ctx, init[cursor % len(banks)],
                                set_ignore=True,
                                requestor=f"receiver-{banks[0]}")
                    latency = timer.stop(ctx)
                    received.append(1 if latency > threshold_cycles else 0)
                    ctx.advance(DECODE_CYCLES + LOOP_OVERHEAD_CYCLES)
                    cursor += 1
                    yield None
                yield credits.release()
            outcomes[pair] = PairOutcome(pair=pair, banks=banks,
                                         sent=tuple(message),
                                         received=tuple(received),
                                         cycles=ctx.now - t0)

        sched.spawn(sender, system, name=f"sender-{pair}")
        sched.spawn(receiver, system, name=f"receiver-{pair}")

    sched.run()
    return MultiPairResult(outcomes=tuple(outcomes), cpu_hz=system.cpu_hz)
