"""PnM-OffChip: PEI attack against a predictor-guarded PnM system (§5.1 v).

Same protocol as IMPACT-PnM, but the architecture dispatches each PEI with
a Hermes-style off-chip predictor [116] instead of the PMU's (bypassable)
locality monitor: if the predictor believes the data is on-chip, the PEI
executes on the host CPU through the cache hierarchy.

Consequences for the attacker (§5.3, observation five):

- host-executed probes are slower (cache lookups) and, once the line is
  cached, stop observing DRAM at all — the receiver detects the giveaway
  (an implausibly fast probe) and pays a ``clflush`` to recover;
- larger LLCs bias the predictor toward on-chip execution, so throughput
  falls from ~12.6 Mb/s to ~10.6 Mb/s as the LLC grows.
"""

from __future__ import annotations

from typing import List, Optional

from repro.attacks.impact_pnm import ImpactPnmChannel
from repro.sim.scheduler import Context
from repro.system import System

#: A probe faster than this never reached DRAM: it was served by a cache
#: on the host path (L1/L2 hit), so the row-buffer observation is void.
CACHE_HIT_GIVEAWAY_CYCLES = 60


class PnmOffchipChannel(ImpactPnmChannel):
    """IMPACT-PnM against a PnM architecture with an off-chip predictor."""

    name = "PnM-OffChip"

    def __init__(self, system: System, batch_size: int = 4,
                 banks: Optional[List[int]] = None,
                 init_row: int = 100, interference_row: int = 200,
                 threshold_cycles: int = 150) -> None:
        super().__init__(system, batch_size=batch_size, banks=banks,
                         init_row=init_row, interference_row=interference_row,
                         threshold_cycles=threshold_cycles)
        if system.offchip_predictor is None:
            system.enable_offchip_predictor()
        self.recoveries = 0

    def _sender_op(self, ctx: Context, sys_: System, bank_index: int) -> None:
        sys_.pei_op_predicted(ctx, self._intf_addrs[bank_index],
                              requestor="sender")

    def _receiver_init(self, ctx: Context, sys_: System, bank_index: int) -> None:
        sys_.pei_op_predicted(ctx, self._init_addrs[bank_index],
                              requestor="receiver")

    def _receiver_probe(self, ctx: Context, sys_: System, bank_index: int) -> None:
        sys_.pei_op_predicted(ctx, self._init_addrs[bank_index],
                              requestor="receiver")

    def _receiver_recover(self, ctx: Context, sys_: System, bank_index: int,
                          latency: int) -> None:
        """If the probe was served from a cache, flush the line and redo
        the bank initialization so the next round observes DRAM again."""
        if latency < CACHE_HIT_GIVEAWAY_CYCLES:
            self.recoveries += 1
            sys_.clflush(ctx, core=1, addr=self._init_addrs[bank_index],
                         requestor="receiver")
