"""Attack primitives for reaching main memory — the Table 1 comparison.

Each primitive is one way to make a memory request observe DRAM row-buffer
state from user space (§3.2).  The module provides (i) the qualitative
property matrix of Table 1 and (ii) measured probe functions so the Table 1
bench can print both the paper's check marks and the latencies behind them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.sim.scheduler import Context, Scheduler
from repro.system import System


@dataclass(frozen=True)
class PrimitiveProperties:
    """Table 1's four columns for one attack primitive."""

    name: str
    no_cache_lookup: bool
    no_excessive_accesses: bool
    timing_detectability: bool
    isa_guarantee: bool

    def row(self) -> Dict[str, str]:
        def mark(flag: bool) -> str:
            return "yes" if flag else "no"
        return {
            "primitive": self.name,
            "no_cache_lookup": mark(self.no_cache_lookup),
            "no_excessive_accesses": mark(self.no_excessive_accesses),
            "timing_detectability": mark(self.timing_detectability),
            "isa_guarantee": mark(self.isa_guarantee),
        }


#: Table 1, verbatim.  DMA's ISA column is N/A in the paper; we record it
#: as False (no architectural guarantee exists either way).
TABLE1: List[PrimitiveProperties] = [
    PrimitiveProperties("specialized-instructions", no_cache_lookup=False,
                        no_excessive_accesses=True,
                        timing_detectability=True, isa_guarantee=True),
    PrimitiveProperties("eviction-sets", no_cache_lookup=False,
                        no_excessive_accesses=False,
                        timing_detectability=True, isa_guarantee=False),
    PrimitiveProperties("dma", no_cache_lookup=True,
                        no_excessive_accesses=True,
                        timing_detectability=False, isa_guarantee=False),
    PrimitiveProperties("non-temporal-hints", no_cache_lookup=False,
                        no_excessive_accesses=True,
                        timing_detectability=True, isa_guarantee=False),
    PrimitiveProperties("pim-operations", no_cache_lookup=True,
                        no_excessive_accesses=True,
                        timing_detectability=True, isa_guarantee=True),
]


def properties_for(name: str) -> PrimitiveProperties:
    for entry in TABLE1:
        if entry.name == name:
            return entry
    raise ValueError(f"unknown primitive {name!r}")


# ---------------------------------------------------------------------------
# Measured probes: cycles for one direct-memory observation per primitive.
# ---------------------------------------------------------------------------

def _run(system: System, body) -> int:
    sched = Scheduler()
    thread = sched.spawn(body, system)
    sched.run()
    return thread.result


def measure_clflush_probe(system: System, addr: int) -> int:
    """Flush + reload: one row-buffer observation via clflush."""
    def body(ctx: Context, sys_: System):
        sys_.load(ctx, core=0, addr=addr)  # line cached, row open
        start = ctx.now
        sys_.clflush(ctx, core=0, addr=addr)
        sys_.load(ctx, core=0, addr=addr)
        yield None
        return ctx.now - start
    return _run(system, body)


def measure_eviction_probe(system: System, addr: int) -> int:
    """Evict (one access per LLC way) + reload."""
    def body(ctx: Context, sys_: System):
        sys_.load(ctx, core=0, addr=addr)
        eviction_set = sys_.hierarchy.build_eviction_set(addr)
        start = ctx.now
        # Single-threaded scheduler: the batched walk is trivially safe.
        sys_.load_many(ctx, core=0, addrs=eviction_set)
        sys_.load(ctx, core=0, addr=addr)
        yield None
        return ctx.now - start
    return _run(system, body)


def measure_dma_probe(system: System, addr: int) -> int:
    """One DMA-engine access (software stack included)."""
    def body(ctx: Context, sys_: System):
        start = ctx.now
        sys_.dma_access(ctx, addr)
        yield None
        return ctx.now - start
    return _run(system, body)


def measure_nt_probe(system: System, addr: int) -> int:
    """One non-temporal access (bypass not guaranteed)."""
    def body(ctx: Context, sys_: System):
        start = ctx.now
        sys_.nt_load(ctx, core=0, addr=addr)
        yield None
        return ctx.now - start
    return _run(system, body)


def measure_pim_probe(system: System, addr: int) -> int:
    """One PEI round trip to the bank PCU."""
    def body(ctx: Context, sys_: System):
        start = ctx.now
        sys_.pei_op(ctx, addr)
        yield None
        return ctx.now - start
    return _run(system, body)


PROBES: Dict[str, Callable[[System, int], int]] = {
    "specialized-instructions": measure_clflush_probe,
    "eviction-sets": measure_eviction_probe,
    "dma": measure_dma_probe,
    "non-temporal-hints": measure_nt_probe,
    "pim-operations": measure_pim_probe,
}


def measure_all(system: System, bank: int = 0, row: int = 64) -> Dict[str, int]:
    """Probe latency of every primitive against a fresh (bank, row).

    Each primitive measures on its own freshly built system (same
    configuration) so one probe's bank occupancy cannot queue behind
    another's."""
    results = {}
    for i, (name, probe) in enumerate(sorted(PROBES.items())):
        fresh = System(system.config)
        addr = fresh.address_of(bank=bank, row=row + i)
        results[name] = probe(fresh, addr)
    return results
