"""Timing-based DRAM address-mapping reconnaissance (§2.3, §4.1).

Before any row-buffer channel can run, the attacker must (i) reverse-
engineer which physical-address bits select the DRAM bank — the DRAMA
technique [68] that works on XOR-hashed mappings too [75-78] — and
(ii) *massage* memory until it owns addresses co-located with the victim's
bank.  This module implements both, purely from timing:

- :meth:`AddressReconnaissance.same_bank_different_row` — the classic
  alternating-access probe: two addresses in the same bank but different
  rows evict each other's row continuously, so the pair's mean access
  latency sits at conflict level; any other relation stays fast.
- :meth:`AddressReconnaissance.recover_bank_function` — classifies every
  address bit (column / row-only / bank-affecting) and groups
  bank-affecting bits into XOR classes.
- :meth:`AddressReconnaissance.find_same_bank_addresses` — the memory-
  massaging step the covert channels assume has already happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.sim.scheduler import Context, Scheduler
from repro.system import System


@dataclass(frozen=True)
class BankFunctionModel:
    """Recovered bank-addressing function.

    ``xor_groups``: sets of bit positions whose XOR feeds one bank-index
    bit (a group of size one is a plain bank bit); ``row_bits`` and
    ``column_bits`` are the non-bank-affecting classifications.
    """

    bank_bits: Tuple[int, ...]
    row_bits: Tuple[int, ...]
    column_bits: Tuple[int, ...]
    xor_groups: Tuple[Tuple[int, ...], ...]

    def describe(self) -> str:
        groups = ", ".join("^".join(f"b{bit}" for bit in group)
                           for group in self.xor_groups) or "-"
        return (f"bank bits: {list(self.bank_bits)}; xor groups: {groups}; "
                f"row bits: {len(self.row_bits)}; "
                f"column bits: {len(self.column_bits)}")


class AddressReconnaissance:
    """Reverse-engineers the bank function of a live system by timing."""

    def __init__(self, system: System, pair_probes: int = 4,
                 conflict_threshold: Optional[int] = None) -> None:
        if pair_probes < 2:
            raise ValueError("pair_probes must be >= 2")
        self.system = system
        self.pair_probes = pair_probes
        t = system.config.timings
        q = system.config.queue_cycles
        if conflict_threshold is None:
            # Midpoint between a hit and a conflict as seen by a raw probe.
            conflict_threshold = q + (t.hit_cycles + t.conflict_cycles) // 2
        self.conflict_threshold = conflict_threshold
        self.timing_probes = 0

    # ------------------------------------------------------------------
    # Timing primitive
    # ------------------------------------------------------------------

    def _mean_pair_latency(self, addr_a: int, addr_b: int) -> float:
        """Alternate accesses to the pair; mean latency of the tail."""
        system = self.system
        latencies: List[int] = []

        def body(ctx: Context, sys_: System):
            for i in range(self.pair_probes * 2):
                addr = addr_a if i % 2 == 0 else addr_b
                result = sys_.controller.access(addr, ctx.now,
                                                requestor="recon")
                ctx.advance_to(result.finish)
                ctx.advance(50)  # de-correlate from bank busy windows
                if i >= 2:  # skip the warm-up pair
                    latencies.append(result.latency)
                yield None

        sched = Scheduler()
        sched.spawn(body, system, name="recon")
        sched.run()
        self.timing_probes += self.pair_probes * 2
        return sum(latencies) / len(latencies)

    def same_bank_different_row(self, addr_a: int, addr_b: int) -> bool:
        """True iff the pair thrashes one row buffer (same bank, rows
        differ) — the DRAMA timing signature."""
        return self._mean_pair_latency(addr_a, addr_b) > self.conflict_threshold

    # ------------------------------------------------------------------
    # Bank-function recovery
    # ------------------------------------------------------------------

    def _addressable_bits(self) -> List[int]:
        capacity = self.system.config.geometry.capacity_bytes
        return list(range(6, capacity.bit_length() - 1))  # skip line offset

    def recover_bank_function(self, base: int = 0) -> BankFunctionModel:
        """Classify every physical-address bit by timing alone."""
        bits = self._addressable_bits()
        # Step 1: bits whose flip keeps the pair in one bank (slow pair)
        # while changing the row => row bits; a fast pair means the bit
        # changed the bank OR stayed inside the same row (column bit).
        slow_bits: Set[int] = set()
        fast_bits: Set[int] = set()
        for bit in bits:
            flipped = base ^ (1 << bit)
            if self.same_bank_different_row(base, flipped):
                slow_bits.add(bit)
            else:
                fast_bits.add(bit)
        if not slow_bits:
            raise RuntimeError("found no row bit; cannot disambiguate")
        reference_row_bit = max(slow_bits)
        # Step 2: disambiguate fast bits — flip together with a known row
        # bit: if the pair is now slow, the bit never changed the bank
        # (it was a column bit); if still fast, it is bank-affecting.
        bank_affecting: Set[int] = set()
        column_bits: Set[int] = set()
        for bit in sorted(fast_bits):
            flipped = base ^ (1 << bit) ^ (1 << reference_row_bit)
            if self.same_bank_different_row(base, flipped):
                column_bits.add(bit)
            else:
                bank_affecting.add(bit)
        # Step 3: XOR groups — two bank-affecting bits whose joint flip
        # cancels (pair slow again) feed the same bank-index bit.
        remaining = sorted(bank_affecting)
        groups: List[Tuple[int, ...]] = []
        grouped: Set[int] = set()
        for i, bit_i in enumerate(remaining):
            if bit_i in grouped:
                continue
            group = [bit_i]
            for bit_j in remaining[i + 1:]:
                if bit_j in grouped:
                    continue
                flipped = base ^ (1 << bit_i) ^ (1 << bit_j)
                if self.same_bank_different_row(base, flipped):
                    group.append(bit_j)
                    grouped.add(bit_j)
            grouped.add(bit_i)
            groups.append(tuple(group))
        return BankFunctionModel(
            bank_bits=tuple(sorted(bank_affecting)),
            row_bits=tuple(sorted(slow_bits)),
            column_bits=tuple(sorted(column_bits)),
            xor_groups=tuple(groups))

    # ------------------------------------------------------------------
    # Memory massaging
    # ------------------------------------------------------------------

    def find_same_bank_addresses(self, base: int, count: int,
                                 stride: Optional[int] = None,
                                 search_limit: int = 4096) -> List[int]:
        """Collect ``count`` addresses co-located with ``base``'s bank (in
        distinct rows) by timing candidate addresses — the §4.1 memory-
        massaging step."""
        if count < 1:
            raise ValueError("count must be >= 1")
        geometry = self.system.config.geometry
        step = stride if stride is not None else geometry.row_bytes
        capacity = geometry.capacity_bytes
        found: List[int] = []
        candidate = base
        for _ in range(search_limit):
            candidate = (candidate + step) % capacity
            if candidate == base:
                continue
            if self.same_bank_different_row(base, candidate):
                found.append(candidate)
                if len(found) >= count:
                    return found
        raise RuntimeError(
            f"massaging found only {len(found)}/{count} co-located addresses")
