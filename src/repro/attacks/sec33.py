"""The §3.3 motivation experiments: cache-mediated vs direct-access channels.

Two attacks over one shared DRAM bank, measured across LLC configurations
(Figs. 2 and 3):

- **Baseline (eviction) attack** — to send one bit through the row buffer,
  the sender first evicts its line with one access per LLC way, then loads
  it (planting a row conflict); the receiver probes its own row.  The
  eviction walk's cost grows with both LLC size (lookup latency) and ways
  (number of accesses).
- **Direct-memory-access attack** — the same bit needs exactly one memory
  request on each side, no cache interaction at all; its throughput is
  flat across every cache configuration.

Following §3.3, the eviction walk is modeled at the paper's granularity —
N requests for an N-way cache ("the actual eviction latency can be much
higher" with modern replacement policies; the full-protocol channels in
:mod:`repro.attacks.drama` model that effect).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.attacks.channel import (
    DECODE_CYCLES,
    LOOP_OVERHEAD_CYCLES,
    SEM_OP_CYCLES,
    ChannelResult,
    CovertChannel,
    random_bits,
)
from repro.sim.scheduler import Context, Scheduler
from repro.system import System

#: Lightweight per-bit handshake (shared-memory flag spin, not a futex).
HANDSHAKE_CYCLES = 40


@dataclass
class Sec33Result:
    """One point of Fig. 2/3: throughput plus mean eviction latency."""

    channel: ChannelResult
    eviction_latency_cycles: float

    @property
    def throughput_mbps(self) -> float:
        return self.channel.throughput_mbps


#: Decode threshold for the §3.3 attacks: their probes are *raw* memory
#: requests (no uncore/PEI network), so hit/conflict land at ~59/~129
#: cycles instead of Fig. 7's ~114/~184; the midpoint is ~94.
SEC33_THRESHOLD_CYCLES = 94


class DirectAccessAttack(CovertChannel):
    """§3.3's direct-memory-access attack: one request per bit, no caches."""

    name = "direct-access"

    def __init__(self, system: System, bank: int = 0, sender_row: int = 300,
                 receiver_row: int = 310,
                 threshold_cycles: int = SEC33_THRESHOLD_CYCLES) -> None:
        super().__init__(system, threshold_cycles)
        self.bank = bank
        self.sender_addr = system.address_of(bank, sender_row)
        self.receiver_addr = system.address_of(bank, receiver_row)

    def transmit(self, bits: Sequence[int]) -> ChannelResult:
        message = self.check_bits(bits)
        system = self.system
        received: List[int] = []
        latencies: List[int] = []
        sched = Scheduler()
        window = {}

        def body(ctx: Context, sys_: System):
            # Receiver opens its row once.
            sys_.controller.access(self.receiver_addr, ctx.now,
                                   requestor="receiver")
            timer = sys_.new_timer()
            window["t0"] = ctx.now
            for bit in message:
                # Sender's turn: one direct request for a 1, nothing for 0.
                if bit:
                    result = sys_.controller.access(self.sender_addr, ctx.now,
                                                    requestor="sender")
                    ctx.advance_to(result.finish)
                ctx.advance(HANDSHAKE_CYCLES)
                # Receiver's turn: one timed direct request.
                timer.start(ctx)
                probe = sys_.controller.access(self.receiver_addr, ctx.now,
                                               requestor="receiver")
                ctx.advance_to(probe.finish)
                latency = timer.stop(ctx)
                latencies.append(latency)
                received.append(self.decode(latency))
                ctx.advance(DECODE_CYCLES + LOOP_OVERHEAD_CYCLES)
                yield None
            window["t1"] = ctx.now

        sched.spawn(body, system, name="direct")
        sched.run()
        cycles = window["t1"] - window["t0"]
        return self.make_result(message, received, cycles, latencies)


class BaselineEvictionAttack(CovertChannel):
    """§3.3's baseline attack: evict via the cache hierarchy, then access."""

    name = "baseline-eviction"

    def __init__(self, system: System, bank: int = 0, sender_row: int = 300,
                 receiver_row: int = 310,
                 threshold_cycles: int = SEC33_THRESHOLD_CYCLES) -> None:
        super().__init__(system, threshold_cycles)
        self.bank = bank
        self.sender_addr = system.address_of(bank, sender_row)
        self.receiver_addr = system.address_of(bank, receiver_row)
        self.eviction_latencies: List[int] = []

    def _evict(self, ctx: Context, sys_: System, addr: int,
               eviction_set: List[int]) -> None:
        start = ctx.now
        sys_.load_many(ctx, core=0, addrs=eviction_set, requestor="attacker")
        self.eviction_latencies.append(ctx.now - start)

    def transmit(self, bits: Sequence[int]) -> ChannelResult:
        message = self.check_bits(bits)
        system = self.system
        eviction_set = system.hierarchy.build_eviction_set(self.sender_addr)
        received: List[int] = []
        latencies: List[int] = []
        sched = Scheduler()
        window = {}

        def body(ctx: Context, sys_: System):
            sys_.controller.access(self.receiver_addr, ctx.now,
                                   requestor="receiver")
            # Warm the sender's line so there is something to evict.
            sys_.load(ctx, core=0, addr=self.sender_addr, requestor="sender")
            timer = sys_.new_timer()
            window["t0"] = ctx.now
            for bit in message:
                if bit:
                    self._evict(ctx, sys_, self.sender_addr, eviction_set)
                    sys_.load(ctx, core=0, addr=self.sender_addr,
                              requestor="sender")
                ctx.advance(HANDSHAKE_CYCLES)
                timer.start(ctx)
                probe = sys_.controller.access(self.receiver_addr, ctx.now,
                                               requestor="receiver")
                ctx.advance_to(probe.finish)
                latency = timer.stop(ctx)
                latencies.append(latency)
                received.append(self.decode(latency))
                ctx.advance(DECODE_CYCLES + LOOP_OVERHEAD_CYCLES)
                yield None
            window["t1"] = ctx.now

        sched.spawn(body, system, name="baseline")
        sched.run()
        cycles = window["t1"] - window["t0"]
        return self.make_result(message, received, cycles, latencies)

    def mean_eviction_latency(self) -> float:
        if not self.eviction_latencies:
            return 0.0
        return sum(self.eviction_latencies) / len(self.eviction_latencies)


def run_sec33_point(system: System, bits: int = 512,
                    seed: int = 0) -> "dict":
    """One (LLC config) point: both attacks + the eviction latency."""
    message = random_bits(bits, seed)
    direct = DirectAccessAttack(system)
    direct_result = direct.transmit(message)
    baseline = BaselineEvictionAttack(system)
    baseline_result = baseline.transmit(message)
    return {
        "direct_mbps": direct_result.throughput_mbps,
        "baseline_mbps": baseline_result.throughput_mbps,
        "eviction_latency_cycles": baseline.mean_eviction_latency(),
        "direct_error_rate": direct_result.error_rate,
        "baseline_error_rate": baseline_result.error_rate,
    }
