"""The read-mapping side channel (§4.3, Fig. 6, evaluated in Fig. 10).

The victim runs PiM-offloaded read mapping; its seeding step activates the
DRAM row holding each probed hash-table bucket.  The attacker keeps an
*anchor row* open in every bank and rescans all banks with back-to-back
PEIs after each victim probe: the bank whose rescan crosses the latency
threshold is the bank the victim touched, leaking ``log2(num_banks)`` bits
per observed probe (which bucket group — hence which candidate reference
positions — the victim's read hit).

The scan is rate-matched to the victim: seeding alternates hash-table
probes with computation (hashing, chaining bookkeeping), and the attacker
completes one full-bank scan per victim probe.  More banks => longer
scans => lower leakage bandwidth and a longer window for stray
activations (prefetchers, page-table walks) to pollute the decode — the
two trends of Fig. 10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.genomics.pim_mapper import SeedAccess
from repro.sim.scheduler import Context, Scheduler
from repro.system import System


@dataclass(frozen=True)
class SideChannelConfig:
    """Attack parameters.

    ``scan_issue_gap_cycles`` is the attacker core's sustained PEI issue
    rate during a scan (superscalar issue of minimal PEI packets);
    ``victim_compute_cycles`` is the victim's seeding computation between
    hash-table probes (k-mer hashing, anchor bookkeeping);
    ``anchor_row`` must differ from every hash-table row.
    """

    scan_issue_gap_cycles: float = 1.45
    scan_fixed_cycles: int = 250
    victim_compute_cycles: int = 1600
    threshold_cycles: int = 150
    anchor_row: int = 50

    def __post_init__(self) -> None:
        if self.scan_issue_gap_cycles <= 0:
            raise ValueError("scan_issue_gap_cycles must be positive")
        if self.victim_compute_cycles < 0 or self.scan_fixed_cycles < 0:
            raise ValueError("cycle costs must be >= 0")


@dataclass
class SideChannelResult:
    """Outcome of one attack run (one Fig. 10 point)."""

    num_banks: int
    rounds: int
    correct: int
    missed: int
    false_positives: int
    cycles: int
    cpu_hz: float
    entries_per_bank: float

    @property
    def bits_per_leak(self) -> float:
        return math.log2(self.num_banks) if self.num_banks > 1 else 0.0

    @property
    def leaked_bits(self) -> float:
        """Bits from *correct* guesses only (§5.4 measurement rule)."""
        return self.correct * self.bits_per_leak

    @property
    def throughput_mbps(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.leaked_bits * self.cpu_hz / self.cycles / 1e6

    @property
    def error_rate(self) -> float:
        total = self.correct + self.missed + self.false_positives
        if total == 0:
            return 0.0
        return (self.missed + self.false_positives) / total

    @property
    def accuracy(self) -> float:
        return 1.0 - self.error_rate

    def summary(self) -> str:
        return (f"side-channel @{self.num_banks} banks: "
                f"{self.throughput_mbps:.2f} Mb/s, "
                f"error {self.error_rate:.2%}, "
                f"{self.entries_per_bank:.1f} candidate entries/bank")


class ReadMappingSideChannel:
    """Executes the §4.3 attack against a victim access schedule."""

    def __init__(self, system: System,
                 config: Optional[SideChannelConfig] = None) -> None:
        self.system = system
        self.config = config or SideChannelConfig()
        self.num_banks = system.num_banks

    def _scan_addrs(self) -> List[int]:
        row = self.config.anchor_row
        return [self.system.address_of(bank, row)
                for bank in range(self.num_banks)]

    def run(self, accesses: Sequence[SeedAccess],
            entries_per_bank: float = 0.0) -> SideChannelResult:
        """Leak the victim's probe schedule; returns the scored result.

        ``accesses`` is the victim's ground-truth schedule (from
        :meth:`repro.genomics.pim_mapper.PimReadMapper.trace_for_reads`).
        """
        for access in accesses:
            if access.row == self.config.anchor_row:
                raise ValueError("anchor row collides with a hash-table row")
        system = self.system
        cfg = self.config
        # The scan targets are fixed for the whole run: the anchor row in
        # every bank.  Hand the PEI engine pre-decoded (bank, row) pairs
        # so the hot rescan loop skips per-address decode and result
        # objects (execute_parallel_raw is bit-identical to
        # execute_parallel and self-downgrades under observers).
        scan_locs = [(bank, cfg.anchor_row) for bank in range(self.num_banks)]
        threshold = cfg.threshold_cycles
        stats = {"correct": 0, "missed": 0, "fp": 0, "t0": 0, "t1": 0}

        def scan(ctx: Context) -> List[int]:
            """One full-bank rescan; returns banks seen in conflict."""
            raw = system.pei.execute_parallel_raw(
                scan_locs, ctx.now,
                issue_gap_cycles=cfg.scan_issue_gap_cycles,
                requestor="attacker")
            finish = max(item[2] for item in raw)
            ctx.advance_to(finish)
            ctx.advance(cfg.scan_fixed_cycles)
            return [bank for bank, issue_time, fin in raw
                    if fin - issue_time > threshold]

        def harness(ctx: Context, sys_: System):
            # Initial scan opens the anchor row everywhere.
            scan(ctx)
            yield None
            stats["t0"] = ctx.now
            noise_mark = ctx.now
            pim = sys_.pei
            for access in accesses:
                # Victim: one hash-table probe + seeding computation.
                addr = sys_.address_of(access.bank, access.row,
                                       access.location.col)
                sys_.pei_op(ctx, addr, requestor="victim")
                ctx.advance(cfg.victim_compute_cycles)
                # Background noise accumulated over the round's window.
                sys_.noise.run(noise_mark, ctx.now)
                noise_mark = ctx.now
                # Attacker: rescan and decode.
                decoded = scan(ctx)
                if access.bank in decoded:
                    stats["correct"] += 1
                    stats["fp"] += len(decoded) - 1
                else:
                    stats["missed"] += 1
                    stats["fp"] += len(decoded)
                yield None
            stats["t1"] = ctx.now

        sched = Scheduler()
        sched.spawn(harness, system, name="side-channel")
        sched.run()
        return SideChannelResult(
            num_banks=self.num_banks,
            rounds=len(accesses),
            correct=stats["correct"],
            missed=stats["missed"],
            false_positives=stats["fp"],
            cycles=stats["t1"] - stats["t0"],
            cpu_hz=system.cpu_hz,
            entries_per_bank=entries_per_bank,
        )


def fake_schedule(num_banks: int, count: int, seed: int = 0,
                  row_offset: int = 1024) -> List[SeedAccess]:
    """A synthetic victim schedule (uniform-random banks) for tests and
    microbenchmarks that do not need the full genomics pipeline."""
    import random

    from repro.genomics.index import BucketLocation

    rng = random.Random(seed)
    accesses = []
    for i in range(count):
        bank = rng.randrange(num_banks)
        accesses.append(SeedAccess(
            hash_value=i,
            location=BucketLocation(entry_index=i, bank=bank,
                                    row=row_offset + (i % 8),
                                    col=(i % 16) * 64)))
    return accesses


class ConcurrentSideChannel(ReadMappingSideChannel):
    """Fully concurrent variant: victim and attacker as independent threads.

    :meth:`ReadMappingSideChannel.run` rate-matches one scan per victim
    probe (the §5.4 steady state).  Here the attacker free-runs instead:
    it rescans all banks in a loop while the victim maps at its own pace,
    and each scan decodes *every* bank perturbed since the previous scan.
    This surfaces the failure mode the serialized harness cannot show —
    two victim probes landing in the same bank within one scan window
    merge into a single leak (a miss).
    """

    def run(self, accesses: Sequence[SeedAccess],
            entries_per_bank: float = 0.0) -> SideChannelResult:
        for access in accesses:
            if access.row == self.config.anchor_row:
                raise ValueError("anchor row collides with a hash-table row")
        system = self.system
        cfg = self.config
        scan_addrs = self._scan_addrs()
        victim_events: List[tuple] = []   # (time, bank)
        scan_windows: List[tuple] = []    # (end_time, decoded bank list)
        state = {"victim_done_at": None, "t0": 0}

        def victim(ctx: Context, sys_: System):
            for access in accesses:
                addr = sys_.address_of(access.bank, access.row,
                                       access.location.col)
                sys_.pei_op(ctx, addr, requestor="victim")
                victim_events.append((ctx.now, access.bank))
                ctx.advance(cfg.victim_compute_cycles)
                yield None
            state["victim_done_at"] = ctx.now

        def attacker(ctx: Context, sys_: System):
            noise_mark = ctx.now
            results = sys_.pei.execute_parallel(
                scan_addrs, ctx.now,
                issue_gap_cycles=cfg.scan_issue_gap_cycles,
                requestor="attacker")
            ctx.advance_to(max(r.finish for r in results))
            ctx.advance(cfg.scan_fixed_cycles)
            state["t0"] = ctx.now
            yield None
            while (state["victim_done_at"] is None
                   or ctx.now < state["victim_done_at"]):
                sys_.noise.run(noise_mark, ctx.now)
                noise_mark = ctx.now
                results = sys_.pei.execute_parallel(
                    scan_addrs, ctx.now,
                    issue_gap_cycles=cfg.scan_issue_gap_cycles,
                    requestor="attacker")
                ctx.advance_to(max(r.finish for r in results))
                ctx.advance(cfg.scan_fixed_cycles)
                decoded = [r.bank for r in results
                           if r.latency > cfg.threshold_cycles]
                scan_windows.append((ctx.now, decoded))
                yield None

        sched = Scheduler()
        sched.spawn(victim, system, name="victim")
        sched.spawn(attacker, system, name="attacker")
        sched.run()

        # Score: attribute each victim event to the first scan window
        # ending after it; a leak is correct when that window decoded the
        # event's bank (duplicates within one window merge => misses).
        correct = missed = 0
        decoded_budget = [set(banks) for _end, banks in scan_windows]
        window_ends = [end for end, _banks in scan_windows]
        for event_time, bank in victim_events:
            window_index = None
            for i, end in enumerate(window_ends):
                if end >= event_time:
                    window_index = i
                    break
            hit = False
            if window_index is not None:
                for i in (window_index, window_index + 1):
                    if i < len(decoded_budget) and bank in decoded_budget[i]:
                        decoded_budget[i].discard(bank)
                        hit = True
                        break
            if hit:
                correct += 1
            else:
                missed += 1
        false_positives = sum(len(rest) for rest in decoded_budget)
        end_time = scan_windows[-1][0] if scan_windows else state["t0"]
        return SideChannelResult(
            num_banks=self.num_banks,
            rounds=len(accesses),
            correct=correct,
            missed=missed,
            false_positives=false_positives,
            cycles=end_time - state["t0"],
            cpu_hz=system.cpu_hz,
            entries_per_bank=entries_per_bank,
        )
