"""Streamline: the flushless cache covert channel [115] (§5.1 iii).

Sender and receiver share a huge array (much larger than the LLC) and
walk it in a pre-agreed pseudorandom order with *no synchronization*:

- the sender encodes bit i by touching (1) or skipping (0) the i-th line
  group; the array's own traversal evicts old lines, so no flushes are
  needed;
- the receiver trails the sender by a fixed lag and times each probe:
  an LLC hit means the sender touched the group recently => 1.

Faithful protocol details carried over from the paper's description of
Streamline:

- **pseudorandom traversal** — a sequential walk would let the stream
  prefetchers fill lines ahead of the receiver and fake hits; the shared
  shuffled order defeats them;
- **redundancy** — each bit spans ``redundancy`` lines, majority-voted
  (Streamline's error-margin coding; also what the §5.1 analytical bound
  charges);
- **static rate-matching** — without synchronization both sides must pace
  at a worst-case line period so the receiver neither overruns the sender
  nor lags into eviction; that guard band is the channel's speed limit.

The §5.1 methodology models Streamline's *upper bound* analytically
(:func:`repro.attacks.analytical.streamline_upper_bound_mbps`); this
simulated implementation lands between the bound and the 1.8 Mb/s the
Streamline authors measured on hardware.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.attacks.channel import (
    DECODE_CYCLES,
    LOOP_OVERHEAD_CYCLES,
    ChannelResult,
    CovertChannel,
)
from repro.sim.scheduler import Barrier, Context, Scheduler
from repro.system import System

#: A probe faster than this hit the LLC (shared-array line present).
HIT_THRESHOLD_CYCLES = 100

#: Process-level memo of shared traversal orders, keyed (total_lines,
#: seed).  The shuffle is the single most expensive piece of building a
#: Streamline channel (millions of indices at large LLC sizes).
_ORDER_MEMO: dict = {}


def shared_order(total_lines: int, seed: int) -> List[int]:
    """The pre-agreed pseudorandom traversal order of the shared array.

    Bit-for-bit ``random.Random(seed).shuffle(list(range(total_lines)))``,
    but deterministic in its inputs and expensive to build — so it is
    memoized per process and persisted as a :mod:`repro.exp.warmstore`
    artifact (as a compact typed array) when a store is active.  The
    returned list is shared between callers and must be treated as
    immutable.  ``REPRO_NO_WARMSTORE=1`` forces the from-scratch build.
    """
    from array import array

    from repro.exp import warmstore

    if not warmstore.enabled():
        order = list(range(total_lines))
        random.Random(seed).shuffle(order)
        return order
    key = (total_lines, seed)
    order = _ORDER_MEMO.get(key)
    if order is not None:
        warmstore.record_event("hits")
        return order
    store = warmstore.current()
    recipe = ("streamline-order", total_lines, seed)
    if store is not None:
        loaded = store.load_artifact(recipe)
        if not store.is_missing(loaded):
            order = list(loaded)
            _ORDER_MEMO[key] = order
            return order
    order = list(range(total_lines))
    random.Random(seed).shuffle(order)
    _ORDER_MEMO[key] = order
    if store is not None:
        store.store_artifact(recipe, array("l", order))
    else:
        warmstore.record_event("misses")
    return order


def line_period_cycles(system: System) -> int:
    """The static per-line cadence both sides pace against.

    Without synchronization the rate must assume the worst case every
    slot: the sender's store misses, its displaced dirty line writes
    back, and the receiver's probe misses — all potentially serialized in
    one DRAM bank.  This is the same per-line cost the §5.1 analytical
    bound charges, so the simulated channel sits just under the bound and
    tracks it across LLC sizes.
    """
    from repro.attacks.analytical import ChannelCostParameters
    p = ChannelCostParameters.from_system(system)
    writeback = p.llc_latency + p.queue_cycles + p.dram_avg_cycles
    return int(round(p.miss_path_cycles + writeback + p.miss_path_cycles))


class StreamlineChannel(CovertChannel):
    """A simulated Streamline channel over the shared cache hierarchy."""

    name = "Streamline"

    def __init__(self, system: System, redundancy: int = 3,
                 lag_line_slots: int = 48, array_mb: float = 0.0,
                 order_seed: int = 1337,
                 threshold_cycles: int = HIT_THRESHOLD_CYCLES) -> None:
        super().__init__(system, threshold_cycles)
        if redundancy < 1 or redundancy % 2 == 0:
            raise ValueError("redundancy must be odd and >= 1")
        if lag_line_slots < 1:
            raise ValueError("lag_line_slots must be >= 1")
        self.redundancy = redundancy
        self.lag_line_slots = lag_line_slots
        line = system.config.hierarchy.line_bytes
        if array_mb <= 0:
            # Default: comfortably out-size the LLC (the channel's premise).
            array_mb = max(64.0, 4.0 * system.config.hierarchy.llc_size_mb)
        total_lines = int(array_mb * 1024 * 1024) // line
        llc_lines = (int(system.config.hierarchy.llc_size_mb * 1024 * 1024)
                     // line)
        if total_lines <= 2 * llc_lines:
            raise ValueError("shared array must be much larger than the LLC")
        capacity = system.config.geometry.capacity_bytes
        self._base = capacity // 2  # far from other experiments' regions
        self._line = line
        self._order = shared_order(total_lines, order_seed)
        self.line_period = line_period_cycles(system)

    def decode(self, latency: int) -> int:
        """Streamline inverts the usual convention: FAST (cache hit) = 1."""
        return 1 if latency < self.threshold_cycles else 0

    def _addr(self, slot: int) -> int:
        return self._base + self._order[slot % len(self._order)] * self._line

    def transmit(self, bits: Sequence[int]) -> ChannelResult:
        message = self.check_bits(bits)
        system = self.system
        total_slots = len(message) * self.redundancy
        if total_slots + self.lag_line_slots > len(self._order):
            raise ValueError("message too long for the shared array")

        sched = Scheduler()
        start_barrier = Barrier(parties=2, name="start")
        received: List[int] = []
        probe_latencies: List[int] = []
        window = {"t0": 0, "t1": 0}

        def sender(ctx: Context, sys_: System):
            yield start_barrier.wait()
            origin = ctx.now
            for slot in range(total_slots):
                deadline = origin + slot * self.line_period
                ctx.advance_to(deadline)
                yield None  # checkpoint: keep shared state in time order
                bit = message[slot // self.redundancy]
                if bit:
                    sys_.load(ctx, core=0, addr=self._addr(slot),
                              is_write=True, requestor="sender")
                ctx.advance(LOOP_OVERHEAD_CYCLES)
                yield None

        def receiver(ctx: Context, sys_: System):
            yield start_barrier.wait()
            origin = ctx.now
            window["t0"] = ctx.now
            timer = sys_.new_timer()
            votes = 0
            for slot in range(total_slots):
                deadline = (origin + (slot + self.lag_line_slots)
                            * self.line_period)
                ctx.advance_to(deadline)
                yield None  # checkpoint: keep shared state in time order
                timer.start(ctx)
                sys_.load(ctx, core=1, addr=self._addr(slot),
                          requestor="receiver")
                latency = timer.stop(ctx)
                probe_latencies.append(latency)
                votes += self.decode(latency)
                if slot % self.redundancy == self.redundancy - 1:
                    received.append(1 if votes * 2 > self.redundancy else 0)
                    votes = 0
                ctx.advance(DECODE_CYCLES + LOOP_OVERHEAD_CYCLES)
                yield None
            window["t1"] = ctx.now

        sched.spawn(sender, system, name="sender")
        sched.spawn(receiver, system, name="receiver")
        sched.run()
        cycles = window["t1"] - window["t0"]
        return self.make_result(message, received, cycles, probe_latencies)
