"""Cache hierarchy substrate.

Models the processor-side structures that stand between an attacker and
main memory (§3.2): a three-level set-associative hierarchy with LRU/SRRIP
replacement, IP-stride and streamer prefetchers (noise sources, §5.1), a
CACTI-style LLC latency model (used by the Fig. 2/3 size and way sweeps),
and the cache-management operations attacks build on (``clflush``,
eviction sets, non-temporal hints).
"""

from repro.cache.cacti import llc_latency_cycles
from repro.cache.cache import Cache, CacheConfig, EvictedLine
from repro.cache.hierarchy import (
    CacheHierarchy,
    HierarchyConfig,
    HierarchyResult,
)
from repro.cache.prefetcher import IPStridePrefetcher, StreamerPrefetcher
from repro.cache.replacement import (
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    SRRIPPolicy,
    make_replacement_policy,
)

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "EvictedLine",
    "HierarchyConfig",
    "HierarchyResult",
    "IPStridePrefetcher",
    "LRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SRRIPPolicy",
    "StreamerPrefetcher",
    "llc_latency_cycles",
    "make_replacement_policy",
]
