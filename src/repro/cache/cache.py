"""A single set-associative write-back cache."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.replacement import (
    ReplacementPolicy,
    SRRIPPolicy,
    make_replacement_policy,
)

try:  # numpy backs the optional vector engine (repro.sim.vector); the
    # scalar path never touches it and must work without it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and behaviour of one cache level.

    Attributes:
        name: label used in stats/telemetry (e.g. ``"L2"``).
        size_bytes: total capacity.
        ways: associativity.
        line_bytes: cache-line size (64 everywhere in Table 2).
        latency_cycles: lookup latency paid by every probe of this level.
        replacement: ``lru`` / ``srrip`` / ``random``.
    """

    name: str
    size_bytes: int
    ways: int
    latency_cycles: int
    line_bytes: int = 64
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.size_bytes < self.line_bytes:
            raise ValueError("cache smaller than one line")
        if self.ways < 1:
            raise ValueError("ways must be >= 1")
        if self.latency_cycles < 0:
            raise ValueError("latency must be >= 0")
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line*ways = {self.line_bytes * self.ways}"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)


@dataclass(slots=True)
class EvictedLine:
    """A line pushed out of a cache by a fill.

    (Slotted, unfrozen: one is allocated per eviction, which in steady
    state means nearly every fill — frozen-dataclass ``__setattr__``
    indirection measurably slows the simulator's hottest loop.)
    """

    addr: int  # line-aligned byte address
    dirty: bool


@dataclass(slots=True)
class CacheStats:
    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    writebacks: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0


class Cache:
    """One cache level; addresses are physical byte addresses.

    Each set keeps two views of its contents: a way-indexed tag array
    (``-1`` for invalid ways; physical line numbers are non-negative) for
    victim bookkeeping, and a ``{line: way}`` dict for lookups.  The dict
    makes hits *and* misses a single O(1) probe — the miss path previously
    paid a full ``list.index`` scan plus a raised ``ValueError``, squarely
    on the simulator's hottest path.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        sets = config.num_sets
        ways = config.ways
        self._num_sets = sets
        self._ways = ways
        self._line_bytes = config.line_bytes
        self._tags: List[List[int]] = [[-1] * ways for _ in range(sets)]
        self._valid: List[List[bool]] = [[False] * ways for _ in range(sets)]
        self._dirty: List[List[bool]] = [[False] * ways for _ in range(sets)]
        self._where: List[dict] = [{} for _ in range(sets)]
        self._policy: ReplacementPolicy = make_replacement_policy(
            config.replacement, sets, ways)
        self._policy_on_hit = self._policy.on_hit
        self._policy_on_fill = self._policy.on_fill
        self._policy_victim = self._policy.victim
        # SRRIP (L2/LLC in the Table 2 config) carries the bulk of fill
        # traffic; alias its RRPV array so access/fill can update it inline
        # instead of paying two policy calls per fill.  The alias shares
        # the *row lists* with the policy object — anything restoring
        # policy state must mutate those lists in place.
        if isinstance(self._policy, SRRIPPolicy):
            self._rrpv: Optional[List[List[int]]] = self._policy._rrpv
            self._max_rrpv = self._policy.MAX_RRPV
            self._insert_rrpv = self._policy.MAX_RRPV - 1
        else:
            self._rrpv = None
            self._max_rrpv = 0
            self._insert_rrpv = 0
        # Lazy numpy mirror of ``_tags`` for the vector engine
        # (repro.sim.vector).  ``None`` until :meth:`tag_matrix` is first
        # called, so the scalar path pays nothing; afterwards the tag-
        # changing operations log (set, way, line) patches into
        # ``_np_pending`` and wholesale restores flip ``_np_stale``.
        self._np_tags = None
        self._np_pending: List[tuple] = []
        self._np_stale = False
        # Count of dirty lines currently resident.  The vector miss
        # engine's bulk commit is only legal when a cache is provably
        # all-clean (no victim anywhere in a span can trigger a
        # write-back), and scanning every set's dirty row per span would
        # cost more than the commit itself — so every dirty-bit
        # transition maintains this counter instead.
        self._dirty_lines = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------

    def line_of(self, addr: int) -> int:
        return addr // self._line_bytes

    def set_index_of(self, addr: int) -> int:
        return (addr // self._line_bytes) % self._num_sets

    def line_addr(self, addr: int) -> int:
        return addr - addr % self._line_bytes

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def _find(self, addr: int) -> Optional[int]:
        line = addr // self._line_bytes
        return self._where[line % self._num_sets].get(line)

    def probe(self, addr: int) -> bool:
        """Presence check with no replacement-state side effects."""
        line = addr // self._line_bytes
        return line in self._where[line % self._num_sets]

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Look up ``addr``; returns True on hit (updates replacement and
        dirty state). A miss does NOT allocate — call :meth:`fill`."""
        line = addr // self._line_bytes
        set_index = line % self._num_sets
        way = self._where[set_index].get(line)
        if way is None:
            self.stats.misses += 1
            return False
        rrpv = self._rrpv
        if rrpv is not None:
            rrpv[set_index][way] = 0
        else:
            self._policy_on_hit(set_index, way)
        if is_write:
            dirty_row = self._dirty[set_index]
            if not dirty_row[way]:
                dirty_row[way] = True
                self._dirty_lines += 1
        self.stats.hits += 1
        return True

    def fill(self, addr: int, dirty: bool = False) -> Optional[EvictedLine]:
        """Allocate ``addr``'s line, evicting a victim if the set is full.

        Returns the evicted line (for writeback/back-invalidation) or None.
        Filling a line that is already present just refreshes its state.
        """
        line = addr // self._line_bytes
        set_index = line % self._num_sets
        where = self._where[set_index]
        existing = where.get(line)
        rrpv_all = self._rrpv
        if existing is not None:
            if rrpv_all is not None:
                rrpv_all[set_index][existing] = 0
            else:
                self._policy_on_hit(set_index, existing)
            if dirty:
                dirty_row = self._dirty[set_index]
                if not dirty_row[existing]:
                    dirty_row[existing] = True
                    self._dirty_lines += 1
            return None
        valid = self._valid[set_index]
        if rrpv_all is not None:
            # Inlined SRRIPPolicy.victim/on_fill (provably identical):
            # invalid way first, else first way at MAX_RRPV after one-shot
            # aging; insert the new line at MAX_RRPV - 1.
            if False in valid:
                way = valid.index(False)
            else:
                rrpvs = rrpv_all[set_index]
                max_rrpv = self._max_rrpv
                if max_rrpv not in rrpvs:
                    step = max_rrpv - max(rrpvs)
                    rrpvs[:] = [r + step for r in rrpvs]
                way = rrpvs.index(max_rrpv)
        else:
            way = self._policy_victim(set_index, valid)
        tags = self._tags[set_index]
        dirty_bits = self._dirty[set_index]
        stats = self.stats
        evicted: Optional[EvictedLine] = None
        if valid[way]:
            old_line = tags[way]
            del where[old_line]
            old_dirty = dirty_bits[way]
            evicted = EvictedLine(old_line * self._line_bytes, old_dirty)
            stats.evictions += 1
            if old_dirty:
                stats.writebacks += 1
                self._dirty_lines -= 1
        tags[way] = line
        where[line] = way
        valid[way] = True
        dirty_bits[way] = dirty
        if dirty:
            self._dirty_lines += 1
        if self._np_tags is not None:
            self._np_pending.append((set_index, way, line))
        if rrpv_all is not None:
            rrpv_all[set_index][way] = self._insert_rrpv
        else:
            self._policy_on_fill(set_index, way)
        stats.fills += 1
        return evicted

    def invalidate(self, addr: int) -> Optional[bool]:
        """Remove ``addr``'s line if present; returns its dirty bit
        (None if the line was not present). Used by clflush and by
        back-invalidation from an inclusive LLC."""
        line = addr // self._line_bytes
        set_index = line % self._num_sets
        way = self._where[set_index].pop(line, None)
        if way is None:
            return None
        dirty = self._dirty[set_index][way]
        if dirty:
            self._dirty_lines -= 1
        self._valid[set_index][way] = False
        self._dirty[set_index][way] = False
        self._tags[set_index][way] = -1
        if self._np_tags is not None:
            self._np_pending.append((set_index, way, -1))
        self.stats.invalidations += 1
        return dirty

    def tag_matrix(self):
        """Numpy view of the per-set tag arrays, shape ``(sets, ways)``,
        ``-1`` marking invalid ways (the scalar tags use the same
        sentinel, so the mirror is value-identical to ``_tags``).

        Lazy and patch-coherent: built on first call, then kept in sync
        by replaying the ``(set, way, line)`` patches :meth:`fill` and
        :meth:`invalidate` log; a wholesale :meth:`restore_state` or a
        patch backlog above a third of the matrix triggers a full
        rebuild (the miss engine logs one patch per fill, so a large
        cache must absorb a whole chunk's worth of patches by replay —
        only a backlog comparable to the matrix itself is worth the
        wholesale ``np.array`` conversion).  Only the vector engine
        calls this — a cache that never sees a vector batch never
        allocates the mirror.
        """
        mirror = self._np_tags
        if (mirror is None or self._np_stale
                or len(self._np_pending) * 3 > self._num_sets * self._ways):
            mirror = _np.array(self._tags, dtype=_np.int64)
            self._np_tags = mirror
            self._np_stale = False
            self._np_pending.clear()
            return mirror
        if self._np_pending:
            for set_index, way, line in self._np_pending:
                mirror[set_index, way] = line
            self._np_pending.clear()
        return mirror

    def resident_lines(self, set_index: int) -> List[int]:
        """Line addresses currently resident in ``set_index`` (testing aid)."""
        result = []
        for way in range(self._ways):
            if self._valid[set_index][way]:
                result.append(self._tags[set_index][way] * self._line_bytes)
        return result

    def reset_stats(self) -> None:
        """Zero the counters; cache contents are kept."""
        self.stats = CacheStats()

    def snapshot_state(self) -> dict:
        """Full copied state: contents, replacement metadata, counters."""
        s = self.stats
        return {
            "tags": [list(row) for row in self._tags],
            "valid": [list(row) for row in self._valid],
            "dirty": [list(row) for row in self._dirty],
            "where": [dict(d) for d in self._where],
            "policy": self._policy.snapshot_state(),
            "stats": (s.hits, s.misses, s.fills, s.evictions,
                      s.writebacks, s.invalidations),
        }

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`snapshot_state` output (copies on the way in)."""
        for dst, src in zip(self._tags, state["tags"]):
            dst[:] = src
        for dst, src in zip(self._valid, state["valid"]):
            dst[:] = src
        for dst, src in zip(self._dirty, state["dirty"]):
            dst[:] = src
        for dst_map, src_map in zip(self._where, state["where"]):
            dst_map.clear()
            dst_map.update(src_map)
        self._policy.restore_state(state["policy"])
        # The numpy tag mirror (vector engine) no longer matches the
        # wholesale-replaced tags; rebuild it on next use.
        self._np_stale = True
        self._np_pending.clear()
        self._dirty_lines = sum(row.count(True) for row in self._dirty)
        self.stats = CacheStats(*state["stats"])

    @property
    def latency_cycles(self) -> int:
        return self.config.latency_cycles
