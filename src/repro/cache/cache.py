"""A single set-associative write-back cache."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.replacement import ReplacementPolicy, make_replacement_policy


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and behaviour of one cache level.

    Attributes:
        name: label used in stats/telemetry (e.g. ``"L2"``).
        size_bytes: total capacity.
        ways: associativity.
        line_bytes: cache-line size (64 everywhere in Table 2).
        latency_cycles: lookup latency paid by every probe of this level.
        replacement: ``lru`` / ``srrip`` / ``random``.
    """

    name: str
    size_bytes: int
    ways: int
    latency_cycles: int
    line_bytes: int = 64
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.size_bytes < self.line_bytes:
            raise ValueError("cache smaller than one line")
        if self.ways < 1:
            raise ValueError("ways must be >= 1")
        if self.latency_cycles < 0:
            raise ValueError("latency must be >= 0")
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line*ways = {self.line_bytes * self.ways}"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)


@dataclass(frozen=True)
class EvictedLine:
    """A line pushed out of a cache by a fill."""

    addr: int  # line-aligned byte address
    dirty: bool


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    writebacks: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0


class Cache:
    """One cache level; addresses are physical byte addresses.

    Per-set tag arrays use ``-1`` for invalid ways (physical line numbers
    are non-negative), so lookups reduce to a C-speed ``list.index`` over
    the set's tags with no per-way Python loop.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        sets = config.num_sets
        ways = config.ways
        self._num_sets = sets
        self._ways = ways
        self._line_bytes = config.line_bytes
        self._tags: List[List[int]] = [[-1] * ways for _ in range(sets)]
        self._valid: List[List[bool]] = [[False] * ways for _ in range(sets)]
        self._dirty: List[List[bool]] = [[False] * ways for _ in range(sets)]
        self._policy: ReplacementPolicy = make_replacement_policy(
            config.replacement, sets, ways)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------

    def line_of(self, addr: int) -> int:
        return addr // self._line_bytes

    def set_index_of(self, addr: int) -> int:
        return (addr // self._line_bytes) % self._num_sets

    def line_addr(self, addr: int) -> int:
        return addr - addr % self._line_bytes

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def _find(self, addr: int) -> Optional[int]:
        line = addr // self._line_bytes
        try:
            return self._tags[line % self._num_sets].index(line)
        except ValueError:
            return None

    def probe(self, addr: int) -> bool:
        """Presence check with no replacement-state side effects."""
        line = addr // self._line_bytes
        return line in self._tags[line % self._num_sets]

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Look up ``addr``; returns True on hit (updates replacement and
        dirty state). A miss does NOT allocate — call :meth:`fill`."""
        line = addr // self._line_bytes
        set_index = line % self._num_sets
        try:
            way = self._tags[set_index].index(line)
        except ValueError:
            self.stats.misses += 1
            return False
        self._policy.on_hit(set_index, way)
        if is_write:
            self._dirty[set_index][way] = True
        self.stats.hits += 1
        return True

    def fill(self, addr: int, dirty: bool = False) -> Optional[EvictedLine]:
        """Allocate ``addr``'s line, evicting a victim if the set is full.

        Returns the evicted line (for writeback/back-invalidation) or None.
        Filling a line that is already present just refreshes its state.
        """
        line = addr // self._line_bytes
        set_index = line % self._num_sets
        tags = self._tags[set_index]
        try:
            existing = tags.index(line)
        except ValueError:
            existing = -1
        if existing >= 0:
            self._policy.on_hit(set_index, existing)
            if dirty:
                self._dirty[set_index][existing] = True
            return None
        valid = self._valid[set_index]
        way = self._policy.victim(set_index, valid)
        evicted: Optional[EvictedLine] = None
        if valid[way]:
            evicted = EvictedLine(
                addr=tags[way] * self._line_bytes,
                dirty=self._dirty[set_index][way],
            )
            self.stats.evictions += 1
            if evicted.dirty:
                self.stats.writebacks += 1
        tags[way] = line
        valid[way] = True
        self._dirty[set_index][way] = dirty
        self._policy.on_fill(set_index, way)
        self.stats.fills += 1
        return evicted

    def invalidate(self, addr: int) -> Optional[bool]:
        """Remove ``addr``'s line if present; returns its dirty bit
        (None if the line was not present). Used by clflush and by
        back-invalidation from an inclusive LLC."""
        line = addr // self._line_bytes
        set_index = line % self._num_sets
        tags = self._tags[set_index]
        try:
            way = tags.index(line)
        except ValueError:
            return None
        dirty = self._dirty[set_index][way]
        self._valid[set_index][way] = False
        self._dirty[set_index][way] = False
        tags[way] = -1
        self.stats.invalidations += 1
        return dirty

    def resident_lines(self, set_index: int) -> List[int]:
        """Line addresses currently resident in ``set_index`` (testing aid)."""
        result = []
        for way in range(self._ways):
            if self._valid[set_index][way]:
                result.append(self._tags[set_index][way] * self._line_bytes)
        return result

    def reset_stats(self) -> None:
        """Zero the counters; cache contents are kept."""
        self.stats = CacheStats()

    @property
    def latency_cycles(self) -> int:
        return self.config.latency_cycles
