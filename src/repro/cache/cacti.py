"""CACTI-style LLC access-latency model.

Figures 2 and 3 sweep LLC size (2-64 MB at 16 ways) and associativity
(2-128 ways at 16 MB) and need the lookup latency to grow with both — that
growth is what collapses the throughput of cache-mediated covert channels.
The paper follows the CACTI 6.0 methodology [92]; we fit the same shape
(wire-delay ~ sqrt(area), way-mux/compare ~ log(ways)) and calibrate to
Table 2's 32-cycle figure for the default 16 MB, 16-way LLC.
"""

from __future__ import annotations

import math

# Calibrated so that llc_latency_cycles(16, 16) == 32 (Table 2).
_BASE_CYCLES = 8.0
_SIZE_COEFF = 4.2  # cycles per sqrt(MB): bitline/wire delay grows with area
_WAY_COEFF = 1.8   # cycles per doubling of ways: tag compare + way mux


def llc_latency_cycles(size_mb: float, ways: int) -> int:
    """Access latency (CPU cycles) of an LLC of ``size_mb`` MB, ``ways``-way.

    >>> llc_latency_cycles(16, 16)
    32
    """
    if size_mb <= 0:
        raise ValueError("size_mb must be positive")
    if ways < 1:
        raise ValueError("ways must be >= 1")
    latency = _BASE_CYCLES + _SIZE_COEFF * math.sqrt(size_mb) + _WAY_COEFF * math.log2(ways)
    return int(round(latency))
