"""Three-level cache hierarchy in front of the memory controller.

Implements the processor-side path of Table 2: per-core L1D and L2, a
shared inclusive LLC, prefetchers, and the cache-management operations the
attacks of §3.2/§5.1 rely on:

- demand loads/stores (the deep-lookup path that throttles DRAMA-style
  attacks),
- ``clflush`` (probes the LLC, write-back on the critical path),
- non-temporal accesses (bypass is *not* guaranteed — configurable
  probability, matching Table 1's "ISA guarantees: X"),
- inclusive back-invalidation (an LLC eviction removes the line from every
  upper level — this is what makes eviction sets work at all).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cache.cache import Cache, CacheConfig, EvictedLine
from repro.cache.cacti import llc_latency_cycles
from repro.cache.prefetcher import IPStridePrefetcher, StreamerPrefetcher
from repro.dram.controller import MemoryController, MemoryResult
from repro.obs import current_observer

_vector = None


def _vector_module():
    """Import :mod:`repro.sim.vector` on first batch call (lazy so this
    module never pulls the sim package in at import time)."""
    global _vector
    if _vector is None:
        from repro.sim import vector as _vector_mod

        _vector = _vector_mod
    return _vector


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache hierarchy parameters (defaults follow Table 2).

    The LLC lookup latency defaults to the CACTI model's value for
    (``llc_size_mb``, ``llc_ways``) so the Fig. 2/3 sweeps only need to vary
    the size/ways fields.
    """

    num_cores: int = 4
    line_bytes: int = 64
    l1_size_kb: int = 32
    l1_ways: int = 8
    l1_latency: int = 4
    l1_replacement: str = "lru"
    l2_size_kb: int = 1024
    l2_ways: int = 16
    l2_latency: int = 12
    l2_replacement: str = "srrip"
    llc_size_mb: float = 8.0  # Table 2: 2 MB/core x 4 cores
    llc_ways: int = 16
    llc_latency: Optional[int] = None  # None -> CACTI model
    llc_replacement: str = "srrip"
    prefetchers_enabled: bool = True
    nt_bypass_probability: float = 0.7
    nt_seed: int = 1234

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        if not 0.0 <= self.nt_bypass_probability <= 1.0:
            raise ValueError("nt_bypass_probability must be within [0, 1]")

    @property
    def llc_latency_cycles(self) -> int:
        if self.llc_latency is not None:
            return self.llc_latency
        return llc_latency_cycles(self.llc_size_mb, self.llc_ways)


@dataclass(slots=True)
class HierarchyResult:
    """Outcome of one access through the hierarchy.

    ``hit_level`` is 1/2/3 for a cache hit, 0 for a main-memory access.
    ``mem`` carries the DRAM result when the access reached memory.
    (A slotted, non-frozen dataclass: one of these is allocated per access,
    so construction cost sits on the simulator's critical path.)
    """

    latency: int
    issued: int
    hit_level: int
    mem: Optional[MemoryResult] = None
    writebacks: int = 0
    bypassed: bool = False

    @property
    def finish(self) -> int:
        return self.issued + self.latency


@dataclass(slots=True)
class RequestorCacheStats:
    """Per-requestor cache-event counters (what a hardware performance
    monitoring unit exposes — the §3 detection mechanisms' only input)."""

    accesses: int = 0
    llc_misses: int = 0
    clflushes: int = 0
    nt_accesses: int = 0
    first_seen_cycle: int = 0
    last_seen_cycle: int = 0

    @property
    def miss_ratio(self) -> float:
        return self.llc_misses / self.accesses if self.accesses else 0.0

    @property
    def window_cycles(self) -> int:
        return max(1, self.last_seen_cycle - self.first_seen_cycle)


@dataclass
class HierarchyStats:
    demand_accesses: int = 0
    prefetches_issued: int = 0
    clflushes: int = 0
    nt_accesses: int = 0
    nt_bypasses: int = 0
    memory_writebacks: int = 0
    late_prefetch_stalls: int = 0
    by_requestor: dict = field(default_factory=dict)

    def requestor(self, name: str) -> RequestorCacheStats:
        stats = self.by_requestor.get(name)
        if stats is None:
            stats = RequestorCacheStats()
            self.by_requestor[name] = stats
        return stats

    def observe(self, requestor: str, time: int, *, miss: bool = False,
                clflush: bool = False, nt: bool = False) -> None:
        stats = self.by_requestor.get(requestor)
        if stats is None:
            stats = RequestorCacheStats()
            self.by_requestor[requestor] = stats
        if stats.accesses == 0 and stats.clflushes == 0:
            stats.first_seen_cycle = time
        if time > stats.last_seen_cycle:
            stats.last_seen_cycle = time
        if clflush:
            stats.clflushes += 1
        else:
            stats.accesses += 1
            if miss:
                stats.llc_misses += 1
            if nt:
                stats.nt_accesses += 1


class CacheHierarchy:
    """Per-core L1/L2 plus a shared inclusive LLC over a memory controller."""

    def __init__(self, config: HierarchyConfig,
                 controller: MemoryController) -> None:
        self.config = config
        self.controller = controller
        line = config.line_bytes
        self.l1: List[Cache] = [
            Cache(CacheConfig(name=f"L1-{core}", size_bytes=config.l1_size_kb * 1024,
                              ways=config.l1_ways, latency_cycles=config.l1_latency,
                              line_bytes=line, replacement=config.l1_replacement))
            for core in range(config.num_cores)
        ]
        self.l2: List[Cache] = [
            Cache(CacheConfig(name=f"L2-{core}", size_bytes=config.l2_size_kb * 1024,
                              ways=config.l2_ways, latency_cycles=config.l2_latency,
                              line_bytes=line, replacement=config.l2_replacement))
            for core in range(config.num_cores)
        ]
        self.llc = Cache(CacheConfig(
            name="LLC", size_bytes=int(config.llc_size_mb * 1024 * 1024),
            ways=config.llc_ways, latency_cycles=config.llc_latency_cycles,
            line_bytes=line, replacement=config.llc_replacement))
        if config.prefetchers_enabled:
            self._l1_prefetchers = [IPStridePrefetcher(line_bytes=line)
                                    for _ in range(config.num_cores)]
            self._l2_prefetchers = [StreamerPrefetcher(line_bytes=line)
                                    for _ in range(config.num_cores)]
        else:
            self._l1_prefetchers = []
            self._l2_prefetchers = []
        # Hot-path call tables: bound observe methods per core, and bound
        # invalidate methods over every upper-level cache (the inclusive
        # back-invalidation loop touches all of them per LLC eviction).
        self._pf_observe = [
            (l1pf.observe, l2pf.observe)
            for l1pf, l2pf in zip(self._l1_prefetchers, self._l2_prefetchers)
        ]
        self._upper_invalidates = [
            cache.invalidate for caches in (self.l1, self.l2)
            for cache in caches
        ]
        self._nt_rng = random.Random(config.nt_seed)
        # Prefetch requestor labels ("cpu" -> "cpu-pf"), cached so the
        # prefetch loop does not rebuild the f-string on every candidate.
        self._pf_names: Dict[str, str] = {}
        # Lines being filled by in-flight prefetches: line addr -> DRAM
        # completion time.  A demand access that hits such a line before
        # the fill lands stalls for the remainder (a "late prefetch") —
        # this is how row-policy latency reaches prefetch-covered streams.
        # Insertion-ordered dict; trimmed FIFO via next(iter(...)).
        self._inflight_fills: Dict[int, int] = {}
        # Per-access constants hoisted off the critical path.
        self._l1_latency = config.l1_latency
        self._l2_latency = config.l2_latency
        self._llc_latency = self.llc.config.latency_cycles
        self._line_bytes = config.line_bytes
        self._capacity = controller.config.geometry.capacity_bytes
        self.stats = HierarchyStats()
        # Observability (repro.obs): None = off, one branch per hook site.
        self._obs = current_observer()
        # Vector-engine removal sink (repro.sim.vector): while a vector
        # batch is in flight this is a list collecting the line address of
        # every line removed from any L1 (fill evictions and inclusive
        # back-invalidations), so the engine can demote stale
        # classifications.  None = off, one branch per eviction.
        self._l1_removal_sink: Optional[List[int]] = None

    def set_observer(self, observer) -> None:
        """Attach a :class:`repro.obs.Observer`; ``None`` detaches."""
        self._obs = observer

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------

    def access(self, core: int, addr: int, issued: int, *,
               is_write: bool = False, pc: Optional[int] = None,
               requestor: str = "cpu") -> HierarchyResult:
        """A demand load/store by ``core`` at physical address ``addr``."""
        self.stats.demand_accesses += 1
        l1, l2 = self.l1[core], self.l2[core]
        stall = (self._late_prefetch_stall(addr, issued)
                 if self._inflight_fills else 0)
        latency = stall + self._l1_latency
        writebacks = 0
        if l1.access(addr, is_write=is_write):
            result = HierarchyResult(latency=latency, issued=issued, hit_level=1)
        else:
            latency += self._l2_latency
            if l2.access(addr):
                writebacks += self._fill_l1(core, addr, is_write)
                result = HierarchyResult(latency=latency, issued=issued,
                                         hit_level=2, writebacks=writebacks)
            else:
                latency += self._llc_latency
                if self.llc.access(addr):
                    writebacks += self._fill_upper(core, addr, is_write)
                    result = HierarchyResult(latency=latency, issued=issued,
                                             hit_level=3, writebacks=writebacks)
                else:
                    mem = self.controller.access(addr, issued + latency,
                                                 requestor=requestor,
                                                 is_write=is_write)
                    latency += mem.latency
                    writebacks += self._fill_all(core, addr, is_write,
                                                 time=issued + latency,
                                                 requestor=requestor)
                    result = HierarchyResult(latency=latency, issued=issued,
                                             hit_level=0, mem=mem,
                                             writebacks=writebacks)
                    if self._obs is not None:
                        self._obs.on_cache_miss(core, addr, issued,
                                                issued + latency, requestor)
        self.stats.observe(requestor, issued, miss=result.hit_level == 0)
        self._run_prefetchers(core, addr, pc, issued + result.latency, requestor)
        return result

    def access_batch(self, core: int, addrs, issued: int, *,
                     is_write: bool = False, pc: Optional[int] = None,
                     requestor: str = "cpu",
                     backend: Optional[str] = None) -> int:
        """Sequential demand accesses, each issued at the previous finish.

        Equivalent to chaining :meth:`access` calls through
        ``result.finish`` (the equivalence is covered by tests), with the
        per-access attribute lookups and :class:`HierarchyResult`
        construction hoisted out of the loop.  Returns the finish time of
        the last access.

        ``backend`` selects the execution engine: ``None`` (auto) uses
        the numpy vector engine (:mod:`repro.sim.vector`) for large
        observer-free batches and the reference scalar loop otherwise;
        ``"scalar"``/``"vector"`` force a side.  Both backends are
        bit-identical in results, statistics, and machine state.

        Only safe when no other thread touches the memory system between
        the batched accesses — batching removes the scheduler checkpoints
        a hand-written probe loop would yield at, so any cross-thread
        interleaving inside the batch would be lost (see EXPERIMENTS.md).
        """
        if backend == "scalar":
            return self._access_batch_scalar(core, addrs, issued,
                                             is_write=is_write, pc=pc,
                                             requestor=requestor)
        if not hasattr(addrs, "__len__"):
            addrs = list(addrs)
        vector = _vector_module()
        if vector.resolve_backend(backend, len(addrs),
                                  self._obs) == "vector":
            finish, _ = vector.access_batch_vector(
                self, core, addrs, issued, is_write=is_write, pc=pc,
                requestor=requestor)
            return finish
        return self._access_batch_scalar(core, addrs, issued,
                                         is_write=is_write, pc=pc,
                                         requestor=requestor)

    def probe_batch(self, core: int, addrs, issued: int, *,
                    is_write: bool = False, pc: Optional[int] = None,
                    requestor: str = "cpu",
                    backend: Optional[str] = None) -> "tuple":
        """Like :meth:`access_batch` but also returns per-access latencies:
        ``(finish, [latency, ...])`` — the Prime+Probe receiver shape.
        The same backend selection and bit-identity contract apply."""
        if backend == "scalar":
            return self._probe_batch_scalar(core, addrs, issued,
                                            is_write=is_write, pc=pc,
                                            requestor=requestor)
        if not hasattr(addrs, "__len__"):
            addrs = list(addrs)
        vector = _vector_module()
        if vector.resolve_backend(backend, len(addrs),
                                  self._obs) == "vector":
            return vector.access_batch_vector(
                self, core, addrs, issued, is_write=is_write, pc=pc,
                requestor=requestor, collect_latencies=True)
        return self._probe_batch_scalar(core, addrs, issued,
                                        is_write=is_write, pc=pc,
                                        requestor=requestor)

    def _access_batch_scalar(self, core: int, addrs, issued: int, *,
                             is_write: bool = False,
                             pc: Optional[int] = None,
                             requestor: str = "cpu") -> int:
        """Reference scalar loop behind :meth:`access_batch` — the ground
        truth the vector engine must match bit for bit."""
        stats = self.stats
        observe = stats.observe
        l1_access = self.l1[core].access
        l2_access = self.l2[core].access
        llc_access = self.llc.access
        controller_access = self.controller.access
        run_prefetchers = self._run_prefetchers
        late_stall = self._late_prefetch_stall
        fill_l1 = self._fill_l1
        fill_upper = self._fill_upper
        fill_all = self._fill_all
        inflight = self._inflight_fills
        l1_latency = self._l1_latency
        l2_latency = self._l2_latency
        llc_latency = self._llc_latency
        now = issued
        for addr in addrs:
            stats.demand_accesses += 1
            latency = ((late_stall(addr, now) if inflight else 0)
                       + l1_latency)
            miss = False
            if l1_access(addr, is_write=is_write):
                pass
            else:
                latency += l2_latency
                if l2_access(addr):
                    fill_l1(core, addr, is_write)
                else:
                    latency += llc_latency
                    if llc_access(addr):
                        fill_upper(core, addr, is_write)
                    else:
                        mem = controller_access(addr, now + latency,
                                                requestor=requestor,
                                                is_write=is_write)
                        finish = mem.finish
                        latency = finish - now
                        fill_all(core, addr, is_write, time=finish,
                                 requestor=requestor)
                        miss = True
                        if self._obs is not None:
                            self._obs.on_cache_miss(core, addr, now, finish,
                                                    requestor)
            observe(requestor, now, miss=miss)
            finish = now + latency
            run_prefetchers(core, addr, pc, finish, requestor)
            now = finish
        return now

    def _probe_batch_scalar(self, core: int, addrs, issued: int, *,
                            is_write: bool = False,
                            pc: Optional[int] = None,
                            requestor: str = "cpu") -> "tuple":
        """Reference loop behind :meth:`probe_batch`: the
        :meth:`_access_batch_scalar` body collecting per-access latency
        (state evolution is identical — tests pin this)."""
        stats = self.stats
        observe = stats.observe
        l1_access = self.l1[core].access
        l2_access = self.l2[core].access
        llc_access = self.llc.access
        controller_access = self.controller.access
        run_prefetchers = self._run_prefetchers
        late_stall = self._late_prefetch_stall
        fill_l1 = self._fill_l1
        fill_upper = self._fill_upper
        fill_all = self._fill_all
        inflight = self._inflight_fills
        l1_latency = self._l1_latency
        l2_latency = self._l2_latency
        llc_latency = self._llc_latency
        latencies: List[int] = []
        append_latency = latencies.append
        now = issued
        for addr in addrs:
            stats.demand_accesses += 1
            latency = ((late_stall(addr, now) if inflight else 0)
                       + l1_latency)
            miss = False
            if l1_access(addr, is_write=is_write):
                pass
            else:
                latency += l2_latency
                if l2_access(addr):
                    fill_l1(core, addr, is_write)
                else:
                    latency += llc_latency
                    if llc_access(addr):
                        fill_upper(core, addr, is_write)
                    else:
                        mem = controller_access(addr, now + latency,
                                                requestor=requestor,
                                                is_write=is_write)
                        finish = mem.finish
                        latency = finish - now
                        fill_all(core, addr, is_write, time=finish,
                                 requestor=requestor)
                        miss = True
                        if self._obs is not None:
                            self._obs.on_cache_miss(core, addr, now, finish,
                                                    requestor)
            observe(requestor, now, miss=miss)
            append_latency(latency)
            finish = now + latency
            run_prefetchers(core, addr, pc, finish, requestor)
            now = finish
        return now, latencies

    def _fill_l1(self, core: int, addr: int, is_write: bool) -> int:
        evicted = self.l1[core].fill(addr, dirty=is_write)
        if evicted is not None:
            if self._l1_removal_sink is not None:
                self._l1_removal_sink.append(evicted.addr)
            if evicted.dirty:
                self.l2[core].fill(evicted.addr, dirty=True)
                return 1
        return 0

    def _fill_upper(self, core: int, addr: int, is_write: bool) -> int:
        writebacks = 0
        evicted = self.l2[core].fill(addr)
        if evicted is not None and evicted.dirty:
            self.llc.fill(evicted.addr, dirty=True)
            writebacks += 1
        writebacks += self._fill_l1(core, addr, is_write)
        return writebacks

    def _fill_all(self, core: int, addr: int, is_write: bool, *, time: int,
                  requestor: str) -> int:
        # _fill_upper/_fill_l1 inlined: this runs on every memory access
        # (the simulator's hottest fill sequence, three levels deep).
        writebacks = 0
        llc_fill = self.llc.fill
        evicted = llc_fill(addr)
        if evicted is not None:
            writebacks += self._handle_llc_eviction(evicted, time, requestor)
        l2_fill = self.l2[core].fill
        evicted = l2_fill(addr)
        if evicted is not None and evicted.dirty:
            llc_fill(evicted.addr, dirty=True)
            writebacks += 1
        evicted = self.l1[core].fill(addr, dirty=is_write)
        if evicted is not None:
            if self._l1_removal_sink is not None:
                self._l1_removal_sink.append(evicted.addr)
            if evicted.dirty:
                l2_fill(evicted.addr, dirty=True)
                writebacks += 1
        return writebacks

    def _handle_llc_eviction(self, evicted: EvictedLine, time: int,
                             requestor: str) -> int:
        """Inclusive LLC: back-invalidate every upper level; write back
        dirty data to DRAM off the critical path."""
        dirty = evicted.dirty
        addr = evicted.addr
        if self._l1_removal_sink is not None:
            # The vector engine over-demotes: it does not care whether an
            # L1 actually held the line, only that it might have.
            self._l1_removal_sink.append(addr)
        for invalidate in self._upper_invalidates:
            if invalidate(addr):
                dirty = True
        if dirty:
            # Finish-only path: write-backs are fire-and-forget, nobody
            # consumes the MemoryResult.
            self.controller.access_finish(evicted.addr, time,
                                          requestor=requestor, is_write=True)
            self.stats.memory_writebacks += 1
            if self._obs is not None:
                self._obs.on_cache_writeback(addr, time, requestor)
            return 1
        return 0

    def _late_prefetch_stall(self, addr: int, issued: int) -> int:
        """Cycles a demand access waits for an in-flight prefetch fill."""
        line = addr - addr % self._line_bytes
        completion = self._inflight_fills.pop(line, None)
        if completion is None:
            return 0
        self.stats.late_prefetch_stalls += 1
        return max(0, completion - issued)

    # ------------------------------------------------------------------
    # Prefetchers (noise sources)
    # ------------------------------------------------------------------

    def _run_prefetchers(self, core: int, addr: int, pc: Optional[int],
                         time: int, requestor: str) -> None:
        if not self._pf_observe:
            return
        l1_observe, l2_observe = self._pf_observe[core]
        candidates = l1_observe(pc, addr)
        l2_candidates = l2_observe(pc, addr)
        if l2_candidates:
            candidates = candidates + l2_candidates
        if not candidates:
            return
        capacity = self._capacity
        pf_name = self._pf_names.get(requestor)
        if pf_name is None:
            pf_name = f"{requestor}-pf"
            self._pf_names[requestor] = pf_name
        line_bytes = self._line_bytes
        llc_probe = self.llc.probe
        llc_fill = self.llc.fill
        l2_fill = self.l2[core].fill
        access_finish = self.controller.access_finish
        inflight = self._inflight_fills
        stats = self.stats
        for prefetch_addr in candidates:
            if not 0 <= prefetch_addr < capacity:
                continue
            line_addr = prefetch_addr - prefetch_addr % line_bytes
            if llc_probe(line_addr):
                continue
            # Prefetches run off the demand critical path but do touch DRAM
            # (and thus perturb row buffers — the noise the attacks battle).
            inflight[line_addr] = access_finish(line_addr, time,
                                                requestor=pf_name)
            while len(inflight) > 512:
                del inflight[next(iter(inflight))]
            evicted = llc_fill(line_addr)
            if evicted is not None:
                self._handle_llc_eviction(evicted, time, requestor)
            l2_fill(line_addr)
            stats.prefetches_issued += 1

    # ------------------------------------------------------------------
    # Cache management operations (attack primitives)
    # ------------------------------------------------------------------

    def clflush(self, core: int, addr: int, issued: int, *,
                requestor: str = "cpu") -> HierarchyResult:
        """Flush ``addr``'s line from the whole hierarchy.

        Latency model per §5.1's DRAMA-clflush: the flush probes the LLC;
        if any copy is dirty the write-back to DRAM lands on the critical
        path (§3.2: that write-back latency is clflush's key cost)."""
        self.stats.clflushes += 1
        self.stats.observe(requestor, issued, clflush=True)
        latency = self.llc.latency_cycles
        dirty = False
        for cache in (self.l1[core], self.l2[core], self.llc):
            line_dirty = cache.invalidate(addr)
            if line_dirty:
                dirty = True
        # Copies in other cores' private caches must go too (coherence).
        for other in range(self.config.num_cores):
            if other == core:
                continue
            for cache in (self.l1[other], self.l2[other]):
                if cache.invalidate(addr):
                    dirty = True
        mem: Optional[MemoryResult] = None
        writebacks = 0
        if dirty:
            mem = self.controller.access(addr, issued + latency,
                                         requestor=requestor, is_write=True)
            latency += mem.latency
            writebacks = 1
            self.stats.memory_writebacks += 1
        if self._obs is not None:
            self._obs.on_clflush(core, addr, issued, issued + latency,
                                 requestor, dirty)
        return HierarchyResult(latency=latency, issued=issued, hit_level=3,
                               mem=mem, writebacks=writebacks)

    def nt_access(self, core: int, addr: int, issued: int, *,
                  is_write: bool = False, requestor: str = "cpu") -> HierarchyResult:
        """Non-temporal access: bypasses the caches only probabilistically.

        The ISA does not guarantee NT hints bypass the hierarchy (§3.2);
        whether a given access bypasses is decided by a seeded RNG with
        probability ``nt_bypass_probability``."""
        self.stats.nt_accesses += 1
        if self._nt_rng.random() < self.config.nt_bypass_probability:
            self.stats.nt_bypasses += 1
            self.stats.observe(requestor, issued, miss=True, nt=True)
            mem = self.controller.access(addr, issued, requestor=requestor,
                                         is_write=is_write)
            return HierarchyResult(latency=mem.latency, issued=issued,
                                   hit_level=0, mem=mem, bypassed=True)
        return self.access(core, addr, issued, is_write=is_write,
                           requestor=requestor)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def is_cached(self, addr: int) -> bool:
        """Is ``addr``'s line resident anywhere on-chip?  Side-effect-free.

        The LLC is inclusive of every L1/L2, so one LLC probe answers for
        the whole hierarchy.  This is the ground truth an off-chip
        predictor trains against (Hermes [116]): data residency, not the
        path an operation happened to take.
        """
        return self.llc.probe(addr)

    def llc_set_stride(self) -> int:
        """Byte stride between addresses that map to the same LLC set."""
        return self.llc.config.num_sets * self.config.line_bytes

    def build_eviction_set(self, addr: int, size: Optional[int] = None) -> List[int]:
        """Construct an eviction set for ``addr``: ``size`` distinct lines
        mapping to the same LLC set (§3.2; default one per LLC way).

        Effectiveness is NOT guaranteed by construction — under SRRIP the
        target line may survive ``ways`` conflicting fills (Table 1's
        "ISA guarantees: X" for eviction sets)."""
        if size is None:
            size = self.config.llc_ways
        stride = self.llc_set_stride()
        base = self.llc.line_addr(addr)
        capacity = self.controller.config.geometry.capacity_bytes
        result: List[int] = []
        k = 1
        while len(result) < size:
            candidate = (base + k * stride) % capacity
            k += 1
            if candidate != base and candidate not in result:
                result.append(candidate)
        return result

    def snapshot_state(self) -> dict:
        """Copied state of every cache level, prefetcher table, in-flight
        fill, RNG, and counter (for warm-state snapshots)."""
        stats = self.stats
        return {
            "l1": [cache.snapshot_state() for cache in self.l1],
            "l2": [cache.snapshot_state() for cache in self.l2],
            "llc": self.llc.snapshot_state(),
            "l1_pf": [pf.snapshot_state() for pf in self._l1_prefetchers],
            "l2_pf": [pf.snapshot_state() for pf in self._l2_prefetchers],
            "nt_rng": self._nt_rng.getstate(),
            "inflight_fills": dict(self._inflight_fills),
            "stats": (stats.demand_accesses, stats.prefetches_issued,
                      stats.clflushes, stats.nt_accesses, stats.nt_bypasses,
                      stats.memory_writebacks, stats.late_prefetch_stalls),
            "by_requestor": {
                name: (s.accesses, s.llc_misses, s.clflushes, s.nt_accesses,
                       s.first_seen_cycle, s.last_seen_cycle)
                for name, s in stats.by_requestor.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        for cache, cache_state in zip(self.l1, state["l1"]):
            cache.restore_state(cache_state)
        for cache, cache_state in zip(self.l2, state["l2"]):
            cache.restore_state(cache_state)
        self.llc.restore_state(state["llc"])
        for pf, pf_state in zip(self._l1_prefetchers, state["l1_pf"]):
            pf.restore_state(pf_state)
        for pf, pf_state in zip(self._l2_prefetchers, state["l2_pf"]):
            pf.restore_state(pf_state)
        self._nt_rng.setstate(state["nt_rng"])
        self._inflight_fills.clear()
        self._inflight_fills.update(state["inflight_fills"])
        stats = HierarchyStats(*state["stats"])
        stats.by_requestor = {
            name: RequestorCacheStats(*vals)
            for name, vals in state["by_requestor"].items()
        }
        self.stats = stats

    def reset_stats(self) -> None:
        """Zero every counter — hierarchy-level, per-requestor, and each
        cache level's — while keeping cache contents.  Used between a
        warm-up replay and the measured replay (§5.1 methodology)."""
        self.stats = HierarchyStats()
        for cache in (*self.l1, *self.l2, self.llc):
            cache.reset_stats()

    def rebase_time(self) -> None:
        """Forget time-stamped transient state (in-flight prefetch fills)
        so a measured replay can restart the clock at zero after a warm-up
        pass; cache contents are kept."""
        self._inflight_fills.clear()

    def flush_all(self) -> None:
        """Drop all cached state (testing aid; not an ISA operation)."""
        config = self.config
        controller = self.controller
        obs = self._obs
        self.__init__(config, controller)
        self._obs = obs
