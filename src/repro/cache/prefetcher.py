"""Hardware prefetchers — noise sources for the timing channels (§5.1).

Two designs from Table 2:

- **IP-stride** [117] at L1: per-instruction-pointer stride detection.
- **Streamer** [119] at L2: per-4KB-region sequential stream detection.

Prefetches perturb both cache contents and DRAM row buffers, which is the
noise the paper injects into its simulations; the attacks' error rates come
partly from these stray activations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class IPStridePrefetcher:
    """Stride-directed prefetching keyed by the load's instruction pointer.

    After two consecutive accesses by the same PC with an identical stride,
    it prefetches ``degree`` lines ahead along that stride.
    """

    def __init__(self, table_entries: int = 64, degree: int = 2,
                 line_bytes: int = 64) -> None:
        if table_entries < 1 or degree < 1:
            raise ValueError("table_entries and degree must be >= 1")
        self.degree = degree
        self.line_bytes = line_bytes
        # Insertion-ordered dict as an LRU: pop+reinsert moves to the end,
        # trimming evicts via next(iter(...)).
        self._table: Dict[int, Tuple[int, int, int]] = {}
        self._capacity = table_entries

    def observe(self, pc: Optional[int], addr: int) -> List[int]:
        """Record a demand access; return addresses to prefetch."""
        if pc is None:
            return []
        entry = self._table.pop(pc, None)
        prefetches: List[int] = []
        if entry is None:
            self._table[pc] = (addr, 0, 0)
        else:
            last_addr, last_stride, confidence = entry
            stride = addr - last_addr
            if stride != 0 and stride == last_stride:
                confidence = min(confidence + 1, 3)
            elif stride != 0:
                confidence = 0
            self._table[pc] = (addr, stride if stride != 0 else last_stride,
                               confidence)
            if confidence >= 1 and stride != 0:
                prefetches = [addr + stride * (i + 1) for i in range(self.degree)]
        while len(self._table) > self._capacity:
            del self._table[next(iter(self._table))]
        if not prefetches:
            return prefetches
        return [p for p in prefetches if p >= 0]


class StreamerPrefetcher:
    """Sequential stream prefetcher tracking 4 KB regions.

    Detects monotone line-granularity streams within a region and runs
    ``degree`` lines ahead of the demand stream.
    """

    REGION_BYTES = 4096

    def __init__(self, tracked_regions: int = 32, degree: int = 2,
                 line_bytes: int = 64) -> None:
        if tracked_regions < 1 or degree < 1:
            raise ValueError("tracked_regions and degree must be >= 1")
        self.degree = degree
        self.line_bytes = line_bytes
        self._regions: Dict[int, Tuple[int, int]] = {}
        self._capacity = tracked_regions

    def observe(self, pc: Optional[int], addr: int) -> List[int]:
        """Record a demand access; return addresses to prefetch."""
        region = addr // self.REGION_BYTES
        line = addr // self.line_bytes
        entry = self._regions.pop(region, None)
        prefetches: List[int] = []
        if entry is None:
            self._regions[region] = (line, 0)
        else:
            last_line, direction = entry
            step = line - last_line
            if step == 0:
                self._regions[region] = (line, direction)
            else:
                new_direction = 1 if step > 0 else -1
                if direction == new_direction:
                    prefetches = [
                        (line + new_direction * (i + 1)) * self.line_bytes
                        for i in range(self.degree)
                    ]
                self._regions[region] = (line, new_direction)
        while len(self._regions) > self._capacity:
            del self._regions[next(iter(self._regions))]
        if not prefetches:
            return prefetches
        return [p for p in prefetches if p >= 0]
