"""Hardware prefetchers — noise sources for the timing channels (§5.1).

Two designs from Table 2:

- **IP-stride** [117] at L1: per-instruction-pointer stride detection.
- **Streamer** [119] at L2: per-4KB-region sequential stream detection.

Prefetches perturb both cache contents and DRAM row buffers, which is the
noise the paper injects into its simulations; the attacks' error rates come
partly from these stray activations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class IPStridePrefetcher:
    """Stride-directed prefetching keyed by the load's instruction pointer.

    After two consecutive accesses by the same PC with an identical stride,
    it prefetches ``degree`` lines ahead along that stride.
    """

    def __init__(self, table_entries: int = 64, degree: int = 2,
                 line_bytes: int = 64) -> None:
        if table_entries < 1 or degree < 1:
            raise ValueError("table_entries and degree must be >= 1")
        self.degree = degree
        self.line_bytes = line_bytes
        # Insertion-ordered dict as an LRU: pop+reinsert moves to the end,
        # trimming evicts via next(iter(...)).
        self._table: Dict[int, Tuple[int, int, int]] = {}
        self._capacity = table_entries

    def snapshot_state(self) -> Dict[int, Tuple[int, int, int]]:
        return dict(self._table)

    def restore_state(self, state: Dict[int, Tuple[int, int, int]]) -> None:
        self._table.clear()
        self._table.update(state)

    def observe(self, pc: Optional[int], addr: int) -> List[int]:
        """Record a demand access; return addresses to prefetch."""
        if pc is None:
            return []
        table = self._table
        entry = table.pop(pc, None)
        prefetches: List[int] = []
        if entry is None:
            table[pc] = (addr, 0, 0)
            # Only a brand-new entry can grow the table; pop+reinsert of an
            # existing PC leaves the size unchanged, so trim only here.
            while len(table) > self._capacity:
                del table[next(iter(table))]
        else:
            last_addr, last_stride, confidence = entry
            stride = addr - last_addr
            if stride != 0 and stride == last_stride:
                confidence = min(confidence + 1, 3)
            elif stride != 0:
                confidence = 0
            table[pc] = (addr, stride if stride != 0 else last_stride,
                         confidence)
            if confidence >= 1 and stride != 0:
                prefetches = [addr + stride * (i + 1) for i in range(self.degree)]
                # Constant stride makes the list monotone: a negative tail
                # is the only way a negative address can appear.
                if prefetches[-1] < 0:
                    prefetches = [p for p in prefetches if p >= 0]
        return prefetches


class StreamerPrefetcher:
    """Sequential stream prefetcher tracking 4 KB regions.

    Detects monotone line-granularity streams within a region and runs
    ``degree`` lines ahead of the demand stream.
    """

    REGION_BYTES = 4096

    def __init__(self, tracked_regions: int = 32, degree: int = 2,
                 line_bytes: int = 64) -> None:
        if tracked_regions < 1 or degree < 1:
            raise ValueError("tracked_regions and degree must be >= 1")
        self.degree = degree
        self.line_bytes = line_bytes
        self._regions: Dict[int, Tuple[int, int]] = {}
        self._capacity = tracked_regions

    def snapshot_state(self) -> Dict[int, Tuple[int, int]]:
        return dict(self._regions)

    def restore_state(self, state: Dict[int, Tuple[int, int]]) -> None:
        self._regions.clear()
        self._regions.update(state)

    def observe(self, pc: Optional[int], addr: int) -> List[int]:
        """Record a demand access; return addresses to prefetch."""
        regions = self._regions
        region = addr // self.REGION_BYTES
        line = addr // self.line_bytes
        entry = regions.pop(region, None)
        prefetches: List[int] = []
        if entry is None:
            regions[region] = (line, 0)
            # Size only grows on a brand-new region (see IP-stride note).
            while len(regions) > self._capacity:
                del regions[next(iter(regions))]
        else:
            last_line, direction = entry
            step = line - last_line
            if step == 0:
                regions[region] = (line, direction)
            else:
                new_direction = 1 if step > 0 else -1
                if direction == new_direction:
                    prefetches = [
                        (line + new_direction * (i + 1)) * self.line_bytes
                        for i in range(self.degree)
                    ]
                    # Monotone by construction; only a negative tail can
                    # introduce out-of-range (negative) addresses.
                    if prefetches[-1] < 0:
                        prefetches = [p for p in prefetches if p >= 0]
                regions[region] = (line, new_direction)
        return prefetches
