"""Cache replacement policies: LRU, SRRIP, and random.

Table 2 uses LRU at L1 and SRRIP [118] at L2/L3.  Replacement matters to the
attacks: eviction sets are only *probabilistically* effective because the
policy is opaque to the attacker (§3.2, Table 1 "ISA guarantees: X" for
eviction sets), and SRRIP in particular can retain a target line after
``ways`` conflicting fills.
"""

from __future__ import annotations

import random
from typing import List, Optional


class ReplacementPolicy:
    """Per-cache replacement state; one instance manages every set.

    ``ways`` slots per set; ways are addressed ``0 .. ways-1`` within a set.
    """

    def __init__(self, num_sets: int, ways: int) -> None:
        if num_sets < 1 or ways < 1:
            raise ValueError("num_sets and ways must be >= 1")
        self.num_sets = num_sets
        self.ways = ways

    def on_hit(self, set_index: int, way: int) -> None:
        """Update state after a hit on ``way``."""
        raise NotImplementedError

    def on_fill(self, set_index: int, way: int) -> None:
        """Update state after filling a new line into ``way``."""
        raise NotImplementedError

    def victim(self, set_index: int, valid: List[bool]) -> int:
        """Choose the way to evict (an invalid way is preferred)."""
        raise NotImplementedError

    def _first_invalid(self, valid: List[bool]) -> Optional[int]:
        try:
            return valid.index(False)
        except ValueError:
            return None


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used: evict the oldest-touched way."""

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self._stamp = 0
        self._last_use = [[0] * ways for _ in range(num_sets)]

    def _touch(self, set_index: int, way: int) -> None:
        self._stamp += 1
        self._last_use[set_index][way] = self._stamp

    def on_hit(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def on_fill(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def victim(self, set_index: int, valid: List[bool]) -> int:
        invalid = self._first_invalid(valid)
        if invalid is not None:
            return invalid
        uses = self._last_use[set_index]
        return uses.index(min(uses))


class SRRIPPolicy(ReplacementPolicy):
    """Static re-reference interval prediction [118] with 2-bit RRPVs.

    Fills insert at RRPV ``max-1`` (long re-reference), hits promote to 0.
    Victim selection scans for RRPV == max, aging every line when none is
    found.  This is the policy that defeats naive W-access eviction sets.
    """

    MAX_RRPV = 3

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self._rrpv = [[self.MAX_RRPV] * ways for _ in range(num_sets)]

    def on_hit(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = 0

    def on_fill(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = self.MAX_RRPV - 1

    def victim(self, set_index: int, valid: List[bool]) -> int:
        invalid = self._first_invalid(valid)
        if invalid is not None:
            return invalid
        rrpvs = self._rrpv[set_index]
        while True:
            # RRPVs never exceed MAX_RRPV (aging only runs when no way is
            # at the maximum), so the >=-scan is an exact-match search.
            try:
                return rrpvs.index(self.MAX_RRPV)
            except ValueError:
                for way in range(self.ways):
                    rrpvs[way] += 1


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim (deterministic under a seeded RNG)."""

    def __init__(self, num_sets: int, ways: int, seed: int = 0) -> None:
        super().__init__(num_sets, ways)
        self._rng = random.Random(seed)

    def on_hit(self, set_index: int, way: int) -> None:
        pass

    def on_fill(self, set_index: int, way: int) -> None:
        pass

    def victim(self, set_index: int, valid: List[bool]) -> int:
        invalid = self._first_invalid(valid)
        if invalid is not None:
            return invalid
        return self._rng.randrange(self.ways)


_POLICIES = {"lru": LRUPolicy, "srrip": SRRIPPolicy, "random": RandomPolicy}


def make_replacement_policy(name: str, num_sets: int, ways: int) -> ReplacementPolicy:
    """Construct a policy by name: ``lru``, ``srrip``, or ``random``."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    return cls(num_sets, ways)
