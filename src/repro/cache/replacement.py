"""Cache replacement policies: LRU, SRRIP, and random.

Table 2 uses LRU at L1 and SRRIP [118] at L2/L3.  Replacement matters to the
attacks: eviction sets are only *probabilistically* effective because the
policy is opaque to the attacker (§3.2, Table 1 "ISA guarantees: X" for
eviction sets), and SRRIP in particular can retain a target line after
``ways`` conflicting fills.
"""

from __future__ import annotations

import random
from typing import List, Optional


class ReplacementPolicy:
    """Per-cache replacement state; one instance manages every set.

    ``ways`` slots per set; ways are addressed ``0 .. ways-1`` within a set.
    """

    def __init__(self, num_sets: int, ways: int) -> None:
        if num_sets < 1 or ways < 1:
            raise ValueError("num_sets and ways must be >= 1")
        self.num_sets = num_sets
        self.ways = ways

    def on_hit(self, set_index: int, way: int) -> None:
        """Update state after a hit on ``way``."""
        raise NotImplementedError

    def on_hit_run(self, sets, ways) -> None:
        """Bulk :meth:`on_hit` over parallel ``(sets, ways)`` numpy int
        arrays in chronological order (the vector engine's hit runs).

        The base implementation replays per element — exact for any
        policy; subclasses override with closed forms.  Must leave state
        bit-identical to the element-by-element sequence.
        """
        for set_index, way in zip(sets.tolist(), ways.tolist()):
            self.on_hit(set_index, way)

    def on_fill(self, set_index: int, way: int) -> None:
        """Update state after filling a new line into ``way``."""
        raise NotImplementedError

    def victim(self, set_index: int, valid: List[bool]) -> int:
        """Choose the way to evict (an invalid way is preferred)."""
        raise NotImplementedError

    def select_victims_bulk(self, sets, invalid_ways):
        """Victim way per set for a batch of pending fills — the miss-path
        companion to :meth:`on_hit_run` (used by ``repro.sim.vector``).

        ``sets`` is a numpy int array of set indices; ``invalid_ways[i]``
        is the first invalid way of ``sets[i]`` (or ``-1`` when the set is
        full), precomputed by the caller from its tag mirror.  Returns a
        numpy int array of victim ways.

        Contract for the LRU/SRRIP overrides: the computation is **pure**
        — it reads replacement state but never writes it.  Fill-time
        transitions (LRU stamping, SRRIP aging + insert) are applied by
        the caller per committed element, so planning victims for
        elements that never commit leaves no trace.  The caller must only
        consult entries whose set state is unchanged since the call (in
        practice: the first occurrence of each set in the batch).

        The base implementation replays :meth:`victim`, which **may
        mutate** stateful policies (e.g. :class:`RandomPolicy` advances
        its RNG) — the vector engine therefore only bulk-plans for
        LRU/SRRIP and computes other policies' victims inline at fill
        time.
        """
        import numpy as np

        ways = self.ways
        out = []
        for set_index, invalid in zip(sets.tolist(), invalid_ways.tolist()):
            if invalid >= 0:
                out.append(invalid)
            else:
                out.append(self.victim(set_index, [True] * ways))
        return np.asarray(out, dtype=np.int64)

    def snapshot_state(self):
        """Copied replacement metadata for warm-state snapshots."""
        return None

    def restore_state(self, state) -> None:
        """Restore :meth:`snapshot_state` output.  Implementations must
        mutate existing per-set lists in place — callers may alias them
        (see :mod:`repro.sim.snapshot`)."""

    def _first_invalid(self, valid: List[bool]) -> Optional[int]:
        # Membership test first: a full set (the steady state) costs one
        # C-speed scan instead of a raised-and-caught ValueError.
        if False in valid:
            return valid.index(False)
        return None


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used: evict the oldest-touched way."""

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self._stamp = 0
        self._last_use = [[0] * ways for _ in range(num_sets)]

    def on_hit(self, set_index: int, way: int) -> None:
        stamp = self._stamp + 1
        self._stamp = stamp
        self._last_use[set_index][way] = stamp

    on_fill = on_hit

    def on_hit_run(self, sets, ways) -> None:
        """Bulk LRU touch: ``k`` sequential hits stamp ``base+1..base+k``;
        a way touched several times keeps only its *last* stamp, so one
        write per distinct way at its last-occurrence position reproduces
        the per-element sequence exactly."""
        k = len(sets)
        base = self._stamp
        width = self.ways
        last_use = self._last_use
        if k < 24:
            stamp = base
            for set_index, way in zip(sets.tolist(), ways.tolist()):
                stamp += 1
                last_use[set_index][way] = stamp
        else:
            import numpy as np

            flat = sets * width + ways
            reversed_flat = flat[::-1]
            uniq, rev_index = np.unique(reversed_flat, return_index=True)
            positions = k - 1 - rev_index
            for slot, pos in zip(uniq.tolist(), positions.tolist()):
                last_use[slot // width][slot % width] = base + pos + 1
        self._stamp = base + k

    def victim(self, set_index: int, valid: List[bool]) -> int:
        invalid = self._first_invalid(valid)
        if invalid is not None:
            return invalid
        uses = self._last_use[set_index]
        return uses.index(min(uses))

    def select_victims_bulk(self, sets, invalid_ways):
        """Pure bulk LRU victims: row-wise argmin over the gathered
        last-use stamps.  ``argmin`` breaks ties at the first occurrence,
        exactly like ``uses.index(min(uses))``."""
        import numpy as np

        last_use = self._last_use
        rows = np.array([last_use[s] for s in sets.tolist()],
                        dtype=np.int64)
        victims = rows.argmin(axis=1).astype(np.int64)
        return np.where(invalid_ways >= 0, invalid_ways, victims)

    def snapshot_state(self):
        return self._stamp, [list(row) for row in self._last_use]

    def restore_state(self, state) -> None:
        stamp, last_use = state
        self._stamp = stamp
        for dst, src in zip(self._last_use, last_use):
            dst[:] = src


class SRRIPPolicy(ReplacementPolicy):
    """Static re-reference interval prediction [118] with 2-bit RRPVs.

    Fills insert at RRPV ``max-1`` (long re-reference), hits promote to 0.
    Victim selection scans for RRPV == max, aging every line when none is
    found.  This is the policy that defeats naive W-access eviction sets.
    """

    MAX_RRPV = 3

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self._rrpv = [[self.MAX_RRPV] * ways for _ in range(num_sets)]

    def on_hit(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = 0

    def on_hit_run(self, sets, ways) -> None:
        """Bulk SRRIP promote: hits are idempotent (RRPV := 0), so one
        write per distinct (set, way) suffices in any order."""
        if len(sets) < 24:
            rrpv = self._rrpv
            for set_index, way in zip(sets.tolist(), ways.tolist()):
                rrpv[set_index][way] = 0
            return
        import numpy as np

        width = self.ways
        rrpv = self._rrpv
        for slot in np.unique(sets * width + ways).tolist():
            rrpv[slot // width][slot % width] = 0

    def on_fill(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = self.MAX_RRPV - 1

    def victim(self, set_index: int, valid: List[bool]) -> int:
        if False in valid:
            return valid.index(False)
        rrpvs = self._rrpv[set_index]
        max_rrpv = self.MAX_RRPV
        while True:
            # RRPVs never exceed MAX_RRPV (aging only runs when no way is
            # at the maximum), so the ==-scan is an exact-match search.
            if max_rrpv in rrpvs:
                return rrpvs.index(max_rrpv)
            # Age every line by the distance to the nearest re-reference
            # in one shot — equivalent to repeated +1 rounds.
            step = max_rrpv - max(rrpvs)
            rrpvs[:] = [r + step for r in rrpvs]

    def select_victims_bulk(self, sets, invalid_ways):
        """Pure bulk SRRIP victims: for each gathered RRPV row, one-shot
        aging by ``MAX_RRPV - max(row)`` then the first way at the
        maximum — the closed form of :meth:`victim`'s age-and-rescan
        loop, computed without touching the stored RRPVs (the caller
        applies aging + insert at fill time, where ``Cache.fill``'s
        inlined SRRIP body recomputes the aging exactly)."""
        import numpy as np

        rrpv = self._rrpv
        rows = np.array([rrpv[s] for s in sets.tolist()], dtype=np.int64)
        step = self.MAX_RRPV - rows.max(axis=1)
        victims = (rows + step[:, None] == self.MAX_RRPV).argmax(axis=1)
        return np.where(invalid_ways >= 0, invalid_ways,
                        victims.astype(np.int64))

    def snapshot_state(self):
        return [list(row) for row in self._rrpv]

    def restore_state(self, state) -> None:
        # In place: Cache aliases these row lists for its inlined SRRIP
        # fast path — rebinding them would silently break the alias.
        for dst, src in zip(self._rrpv, state):
            dst[:] = src


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim (deterministic under a seeded RNG)."""

    def __init__(self, num_sets: int, ways: int, seed: int = 0) -> None:
        super().__init__(num_sets, ways)
        self._rng = random.Random(seed)

    def on_hit(self, set_index: int, way: int) -> None:
        pass

    def on_hit_run(self, sets, ways) -> None:
        pass

    def on_fill(self, set_index: int, way: int) -> None:
        pass

    def victim(self, set_index: int, valid: List[bool]) -> int:
        invalid = self._first_invalid(valid)
        if invalid is not None:
            return invalid
        return self._rng.randrange(self.ways)

    def snapshot_state(self):
        return self._rng.getstate()

    def restore_state(self, state) -> None:
        self._rng.setstate(state)


_POLICIES = {"lru": LRUPolicy, "srrip": SRRIPPolicy, "random": RandomPolicy}


def make_replacement_policy(name: str, num_sets: int, ways: int) -> ReplacementPolicy:
    """Construct a policy by name: ``lru``, ``srrip``, or ``random``."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    return cls(num_sets, ways)
