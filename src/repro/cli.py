"""Command-line interface: drive every experiment without writing code.

Usage::

    python -m repro table2
    python -m repro covert --attack impact-pnm --bits 512 --llc-mb 8
    python -m repro covert --attack all
    python -m repro sidechannel --banks 1024 --rounds 100
    python -m repro defenses --workload PR
    python -m repro recon --mapping xor
    python -m repro detect
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence

from repro import System, SystemConfig
from repro.analysis import format_table
from repro.attacks import (
    AddressReconnaissance,
    DmaEngineChannel,
    DramaClflushChannel,
    DramaEvictionChannel,
    ImpactPnmChannel,
    ImpactPumChannel,
    PnmOffchipChannel,
    StreamlineChannel,
)
from repro.detection import run_detection_experiment

ATTACKS: Dict[str, Callable[[System], object]] = {
    "impact-pnm": ImpactPnmChannel,
    "impact-pum": ImpactPumChannel,
    "dma": DmaEngineChannel,
    "drama-clflush": DramaClflushChannel,
    "drama-eviction": DramaEvictionChannel,
    "pnm-offchip": PnmOffchipChannel,
    "streamline": StreamlineChannel,
}


def _config(args: argparse.Namespace) -> SystemConfig:
    config = SystemConfig.paper_default()
    if getattr(args, "llc_mb", None):
        config = config.with_llc(float(args.llc_mb))
    if getattr(args, "noise", 0.0):
        config = config.with_noise(args.noise)
    mapping = getattr(args, "mapping", None)
    if mapping:
        config = replace(config, mapping=mapping)
    return config


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------

def cmd_table2(args: argparse.Namespace) -> int:
    config = _config(args)
    rows = [(r["component"], r["configuration"]) for r in config.describe()]
    print(format_table(["component", "configuration"], rows,
                       title="Table 2: simulation configuration"))
    return 0


def cmd_covert(args: argparse.Namespace) -> int:
    from repro.exp import run_sweep, sweep_points
    from repro.exp.figures import covert_point, streamline_bound_point

    names = list(ATTACKS) if args.attack == "all" else [args.attack]
    points = sweep_points("covert", covert_point, "attack", names,
                          bits=args.bits, seed=args.seed, llc_mb=args.llc_mb,
                          noise=args.noise, mapping=args.mapping)
    if args.attack == "all":
        points += sweep_points("covert", streamline_bound_point,
                               "llc_mb", [args.llc_mb],
                               noise=args.noise, mapping=args.mapping)
    outcome = run_sweep(points, jobs=args.jobs)
    rows = []
    for payload in outcome:
        error = (f"{payload['error_rate']:.2%}"
                 if "error_rate" in payload else "-")
        cycles = (f"{payload['cycles_per_bit']:.0f}"
                  if "cycles_per_bit" in payload else "-")
        rows.append((payload["attack"], f"{payload['throughput_mbps']:.2f}",
                     error, cycles))
    if args.attack == "all":
        rows.sort(key=lambda r: -float(r[1]))
    print(format_table(["attack", "Mb/s", "error", "cycles/bit"], rows,
                       title=f"covert channels, {args.bits} bits"))
    return 0


def cmd_sidechannel(args: argparse.Namespace) -> int:
    from repro.exp import run_sweep, sweep_points
    from repro.exp.figures import sidechannel_point

    points = sweep_points("sidechannel", sidechannel_point, "num_banks",
                          list(args.banks), rounds=args.rounds,
                          seed=args.seed, noise=args.noise)
    outcome = run_sweep(points, jobs=args.jobs)
    for payload in outcome:
        print(payload["summary"])
        print(f"leaked {payload['leaked_bits']:.0f} bits in "
              f"{payload['cycles']} cycles "
              f"({payload['correct']}/{payload['rounds']} probes decoded; "
              f"{payload['false_positives']} false positives)")
    return 0


def cmd_defenses(args: argparse.Namespace) -> int:
    from repro.exp import run_sweep, sweep_points
    from repro.exp.figures import defense_security_point, fig11_point

    points = sweep_points("defense-security", defense_security_point,
                          "defense", ["open", "mpr", "crp", "ctd"],
                          bits=args.bits)
    outcome = run_sweep(points, jobs=args.jobs)
    rows = [(p["defense"], str(p["blocked"]),
             f"{p['capacity_bits_per_symbol']:.4f}",
             "eliminated" if p["eliminated"] else "SURVIVES")
            for p in outcome]
    print(format_table(["defense", "blocked", "capacity b/sym", "verdict"],
                       rows, title="security vs IMPACT-PnM"))
    if args.workload:
        print(f"\nmeasuring {args.workload} under each row policy "
              f"(takes a minute)...")
        ev = fig11_point(args.workload, max_refs=args.max_refs)
        overheads = {"open": None, "crp": ev["crp_overhead"],
                     "ctd": ev["ctd_overhead"]}
        print(format_table(
            ["policy", "cycles", "overhead"],
            [(p, ev["policies"][p]["cycles"],
              f"{overheads[p]:+.1%}" if overheads[p] is not None
              else "baseline")
             for p in ("open", "crp", "ctd")],
            title=f"{ev['workload']}: measured MPKI {ev['mpki']:.2f} "
                  f"(paper {ev['paper_mpki']})"))
    return 0


def _print_trace_summary(path: str) -> int:
    """Summarize an existing Chrome-trace JSON (no re-run)."""
    from repro.obs import summarize_chrome_trace

    summary = summarize_chrome_trace(path)
    span = summary["span_cycles"]
    print(f"{path}: {summary['events']} events, "
          f"cycles {span[0]}-{span[1]}")
    counts = summary["counts"]
    print("events: " + ", ".join(f"{name}={counts[name]}"
                                 for name in sorted(counts)))
    rows = [(name, m["events"], m["operations"], m["busy_cycles"],
             m["queue_cycles"], m["hits"], m["conflicts"],
             f"{m['first_cycle']}-{m['last_cycle']}")
            for name, m in sorted(summary["per_requestor"].items())]
    print(format_table(
        ["requestor", "events", "ops", "busy cyc", "queue cyc", "hit",
         "conf", "cycle span"],
        rows, title="per-requestor activity"))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one experiment under the event tracer (``repro.obs``) and write
    a ``chrome://tracing`` / Perfetto-loadable JSON."""
    import os

    from repro import obs

    if args.summary:
        path = args.out or f"{args.experiment}.trace.json"
        if not os.path.exists(path):
            print(f"no trace file at {path}; run "
                  f"`repro trace {args.experiment}` first "
                  f"(or pass --out)", file=sys.stderr)
            return 2
        return _print_trace_summary(path)

    config = _config(args)
    attack = "impact-pnm" if args.experiment == "fig7" else args.experiment
    tracer = obs.Tracer(cpu_ghz=config.cpu_ghz)
    previous = obs.current_observer()
    obs.install(tracer)
    try:
        system = System(config, sanitize=True if args.sanitize else None)
        channel = ATTACKS[attack](system)
        result = channel.transmit_random(args.bits, seed=args.seed)
    finally:
        if previous is not None:
            obs.install(previous)
        else:
            obs.uninstall()
    out = args.out or f"{args.experiment}.trace.json"
    tracer.write_chrome(out)
    throughput = getattr(result, "throughput_mbps", None)
    if throughput is not None:
        print(f"{attack}: {args.bits} bits, {throughput:.2f} Mb/s")
    counts = tracer.counts()
    print("events: " + ", ".join(f"{name}={counts[name]}"
                                 for name in sorted(counts)))
    per_req = tracer.per_requestor()
    rows = [(name, m["operations"], m["busy_cycles"], m["queue_cycles"],
             m["hits"], m["empties"], m["conflicts"])
            for name, m in sorted(per_req.items())]
    print(format_table(
        ["requestor", "ops", "busy cyc", "queue cyc", "hit", "empty", "conf"],
        rows, title="per-requestor DRAM activity"))
    if system.sanitizer is not None:
        print(system.sanitizer.report())
    print(f"trace written to {out} (load in chrome://tracing or Perfetto)")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Run an experiment sweep with metrics enabled and write a joined
    markdown + JSON run report to ``reports/``."""
    import os
    import tempfile

    from repro.analysis.runreport import collect_run_report, write_run_report
    from repro.exp import run_sweep
    from repro.exp.figures import fig8_quality_sweep

    points = fig8_quality_sweep(args.llc_mb, bits=args.bits,
                                attacks=args.attacks)
    with tempfile.TemporaryDirectory(prefix="repro-report-") as tmp:
        metrics_dir = os.path.join(tmp, "metrics")
        trace_dir = os.path.join(tmp, "trace") if args.trace else None
        outcome = run_sweep(points, jobs=args.jobs,
                            metrics_dir=metrics_dir, trace_dir=trace_dir)
        report = collect_run_report(args.experiment, points, outcome,
                                    metrics_dir=metrics_dir,
                                    trace_dir=trace_dir)
    md_path, json_path = write_run_report(report, out_dir=args.out_dir)
    mode = "parallel" if outcome.parallel else "serial"
    print(f"{args.experiment}: {len(points)} points in "
          f"{outcome.elapsed_seconds:.1f}s ({mode}, jobs={outcome.jobs})")
    for entry in report["points"]:
        payload = entry["payload"] or {}
        attacks = payload.get("attacks", {})
        best = max((metrics.get("throughput_mbps", 0.0)
                    for metrics in attacks.values()), default=0.0)
        print(f"  {entry['label']}: {len(attacks)} channels, "
              f"best {best:.2f} Mb/s")
    print(f"report written to {md_path} and {json_path}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a fig8-style quality sweep through the sweep engine directly:
    pick an execution backend (serial, pool, or a running daemon via
    serve), optionally enable straggler re-dispatch, and — with
    ``--adaptive`` — schedule repetitions in rounds and early-stop each
    point once its BER confidence interval is tight enough."""
    from repro.exp import (
        AdaptiveConfig,
        ConvergenceTarget,
        ResultCache,
        StragglerPolicy,
        run_adaptive_sweep,
        run_sweep,
        sweep_points,
    )
    from repro.exp.figures import fig8_quality_point

    points = sweep_points("fig8-quality", fig8_quality_point, "llc_mb",
                          [float(mb) for mb in args.llc_mb],
                          bits=args.bits, attacks=args.attacks)
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    straggler = None
    if args.redispatch:
        straggler = StragglerPolicy(factor=args.straggler_factor,
                                    min_seconds=args.straggler_min_seconds)
    serve_addr = (args.host, args.port) if args.backend == "serve" else None
    common = dict(jobs=args.jobs, cache=cache,
                  telemetry_dir=args.telemetry_dir, backend=args.backend,
                  straggler=straggler, serve_addr=serve_addr)

    if args.adaptive:
        config = AdaptiveConfig(
            rep_axis="seed", min_reps=args.min_reps, max_reps=args.max_reps,
            round_reps=args.round_reps,
            target=ConvergenceTarget(ber_ci_halfwidth=args.ber_ci,
                                     capacity_rel_tol=args.capacity_tol))
        outcome = run_adaptive_sweep(points, config=config, **common)
        rows = []
        for result in outcome.results:
            pooled = result.pooled_streams()
            worst = max(pooled.values(),
                        key=lambda s: s["ci_halfwidth"]) if pooled else None
            rows.append((
                result.point.describe(), result.reps,
                "yes" if result.converged else "NO",
                f"{worst['ber']:.4f}" if worst else "-",
                f"{worst['ci_halfwidth']:.4f}" if worst else "-"))
        print(format_table(
            ["point", "reps", "converged", "worst BER", "CI half-width"],
            rows, title=f"adaptive sweep (target ±{args.ber_ci})"))
        print(f"executed {outcome.executed_reps} reps vs "
              f"{outcome.fixed_reps} fixed "
              f"({outcome.rep_savings_ratio:.2f}x savings) in "
              f"{outcome.rounds} rounds, {outcome.elapsed_seconds:.1f}s")
        redispatches = sum(s.redispatches for s in outcome.sweeps)
        backend = outcome.sweeps[-1].backend if outcome.sweeps else None
        print(f"backend {backend or args.backend}, "
              f"{redispatches} straggler re-dispatches")
        return 0

    outcome = run_sweep(points, **common)
    rows = []
    for point, payload in zip(points, outcome):
        attacks = (payload or {}).get("attacks", {})
        best = max((m.get("throughput_mbps", 0.0)
                    for m in attacks.values()), default=0.0)
        rows.append((point.describe(), len(attacks), f"{best:.2f}"))
    print(format_table(["point", "channels", "best Mb/s"], rows,
                       title="quality sweep"))
    mode = outcome.backend or ("parallel" if outcome.parallel else "serial")
    print(f"{len(points)} points in {outcome.elapsed_seconds:.1f}s "
          f"(backend {mode}, jobs={outcome.jobs}, "
          f"{outcome.redispatches} re-dispatches)")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or prune the on-disk result cache and warm-state store."""
    import os

    from repro.exp.cache import ResultCache
    from repro.exp.warmstore import WarmStore

    warm_dir = (args.warm_dir or os.environ.get("REPRO_WARMSTORE_DIR")
                or "benchmarks/results/.warmstore")
    stores = [("results", ResultCache(args.results_dir)),
              ("warm", WarmStore(warm_dir))]
    if args.action == "prune":
        for label, store in stores:
            removed = store.prune()
            print(f"{label}: removed {removed} stale entries from "
                  f"{store.directory}")
    rows = []
    for label, store in stores:
        stats = store.stats()
        rows.append((label, stats["directory"], stats["entries"],
                     stats["stale_entries"], f"{stats['bytes'] / 1e6:.1f}"))
    print(format_table(
        ["store", "directory", "entries", "stale", "MB"], rows,
        title=f"on-disk caches (code version {stores[0][1].version})"))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the simulation-as-a-service daemon: many clients submit sweeps
    over JSON-lines TCP, scheduled fair-share onto the persistent
    fork-server pool with result-cache / warm-store / in-flight dedup."""
    import asyncio
    import os

    from repro.exp.cache import ResultCache
    from repro.serve import ServeScheduler
    from repro.serve.server import run_server

    if args.warm_dir:
        os.environ["REPRO_WARMSTORE_DIR"] = args.warm_dir
    if args.telemetry_dir:
        os.makedirs(args.telemetry_dir, exist_ok=True)
        os.environ["REPRO_TELEMETRY_DIR"] = args.telemetry_dir
    cache = ResultCache(args.cache_dir) if args.cache_dir else None

    async def _main() -> None:
        scheduler = ServeScheduler(jobs=args.jobs, cache=cache,
                                   use_pool=not args.no_pool)
        await run_server(scheduler, args.host, args.port,
                         port_file=args.port_file)

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a sweep to a running ``repro serve`` daemon and stream its
    progress; also the CLI surface for the daemon's metrics/status."""
    import json

    from repro.serve import ServeClient, ServeError

    try:
        client = ServeClient(host=args.host, port=args.port,
                             timeout=args.timeout)
    except OSError as exc:
        print(f"cannot reach repro serve at {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    try:
        if args.metrics or args.status:
            payload = client.metrics() if args.metrics else client.status()
            print(json.dumps(payload, indent=2, default=str))
            return 0
        if args.shutdown:
            client.shutdown_server()
            print("daemon shutting down")
            return 0
        if not args.experiment and not args.fn:
            print("submit needs an experiment or --fn (or --metrics/"
                  "--status/--shutdown)", file=sys.stderr)
            return 2
        if args.points:
            point_params = json.loads(args.points)
        elif args.axis:
            point_params = [{args.axis: value}
                            for value in (json.loads(v) for v in args.values)]
        else:
            point_params = [{}]

        def _progress(event):
            if event.get("event") == "point":
                print(f"  point {event['index']}: {event['source']} "
                      f"({event['elapsed_s']:.2f}s)")

        try:
            job = client.submit(args.experiment, point_params,
                                fn=args.fn, priority=args.priority,
                                on_event=_progress if not args.quiet
                                else None)
        except ServeError as exc:
            print(f"rejected: {exc}", file=sys.stderr)
            return 1
        status = "ok" if job.ok else f"FAILED ({'; '.join(job.errors)})"
        print(f"{job.job_id}: {len(job.results)} points in "
              f"{job.elapsed_seconds:.2f}s, warm {job.warm_hits} hit / "
              f"{job.warm_misses} miss — {status}")
        print(json.dumps(job.results, indent=2, default=str))
        return 0 if job.ok else 1
    finally:
        client.close()


def cmd_top(args: argparse.Namespace) -> int:
    """Live fleet view: poll a daemon's metrics endpoint, or reconstruct
    the same dashboard offline from a telemetry event-log directory."""
    import time

    from repro.obs import top as obs_top

    def one_frame() -> str:
        if args.dir:
            return obs_top.frame_from_dir(args.dir)
        from repro.serve import ServeClient

        with ServeClient(host=args.host, port=args.port,
                         timeout=args.timeout) as client:
            payload = client.metrics()
        return obs_top.render_metrics_frame(
            payload, source=f"{args.host}:{args.port}")

    while True:
        try:
            frame = one_frame()
        except OSError as exc:
            print(f"repro top: cannot read "
                  f"{args.dir or f'{args.host}:{args.port}'}: {exc}",
                  file=sys.stderr)
            return 2
        if args.once:
            print(frame)
            return 0
        # Clear + home, like top(1); each poll reconnects so a daemon
        # restart mid-watch just shows up as the next frame.
        print("\x1b[2J\x1b[H" + frame, flush=True)
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def cmd_recon(args: argparse.Namespace) -> int:
    config = _config(args)
    system = System(config)
    recon = AddressReconnaissance(system)
    model = recon.recover_bank_function()
    print(f"mapping under test: {config.mapping!r}")
    print(f"recovered: {model.describe()}")
    print(f"timing probes spent: {recon.timing_probes}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Simulator micro-bench: ops/s per backend, without the full suite.

    Three workloads bound the engine's range: the prefetcher-live
    streaming sweep (the historical BENCH number, where the vector
    engine bails to the reference loop), the hit-heavy probe-array
    replay (the receiver decode shape, where bulk hit commit
    dominates), and the bank-conflict-alternating replay (the covert
    channel's full-miss shape, where the PR 7 miss engine bulk-commits
    whole DRAM conflict runs).
    """
    import gc
    import statistics
    import time

    from repro.sim import vector

    if args.mode == "history":
        from repro.analysis import benchhistory

        history = benchhistory.collect_history(args.bench_dir)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(benchhistory.render_history_markdown(history))
        print(benchhistory.render_history(history))
        if args.out:
            print(f"markdown table written to {args.out}")
        return 0

    backends: List[str]
    if args.backend == "all":
        backends = ["scalar", "vector", "auto"]
    else:
        backends = [args.backend]
    if any(b != "scalar" for b in backends) and not vector.numpy_available():
        print(f"repro bench: numpy unavailable ({vector.numpy_error()}); "
              f"only --backend scalar can run", file=sys.stderr)
        return 2

    n = args.accesses
    probe = [0x100000 + i * 64 for i in range(256)]
    # The conflict replay alternates two rows of one bank per access
    # pair while walking distinct cache lines: every access is both a
    # full miss and a row-buffer conflict.  Addresses depend only on
    # the (fixed) paper mapping, so one throwaway system builds them.
    mapper = System(SystemConfig.paper_default())
    conflict = []
    for i in range(n):
        bank = (i // 2) % mapper.num_banks
        col = (i // (2 * mapper.num_banks)) % 128
        pair = i // (2 * mapper.num_banks * 128)
        conflict.append(mapper.address_of(
            bank, (2 * pair + (i & 1)) % 4096, col * 64))
    workloads = [
        ("stream 64B*7", [(i * 448) % (1 << 24) for i in range(n)], True),
        ("probe replay", [probe[i & 255] for i in range(n)], False),
        ("conflict replay", conflict, False),
    ]
    gc.collect()
    gc.freeze()
    rows = []
    try:
        for wname, addrs, prefetch in workloads:
            base_ops = None
            for backend in backends:
                samples = []
                for _ in range(args.runs):
                    config = SystemConfig.paper_default()
                    if not prefetch:
                        config = replace(
                            config, hierarchy=replace(
                                config.hierarchy, prefetchers_enabled=False))
                    system = System(config)
                    system.hierarchy.access_batch(0, probe, 0,
                                                  backend="scalar")
                    started = time.perf_counter()
                    system.hierarchy.access_batch(0, addrs, 10_000,
                                                  backend=backend)
                    samples.append(n / (time.perf_counter() - started))
                ops = statistics.median(samples)
                if backend == "scalar":
                    base_ops = ops
                speedup = f"{ops / base_ops:.2f}x" if base_ops else "-"
                rows.append((wname, backend, f"{ops:,.0f}", speedup))
    finally:
        gc.unfreeze()
    print(format_table(
        ["workload", "backend", "ops/s", "vs scalar"], rows,
        title=f"simulator micro-bench ({n:,} accesses, "
              f"median of {args.runs})"))
    return 0


def cmd_detect(args: argparse.Namespace) -> int:
    rows = []
    for name in ("drama-clflush", "impact-pnm", "impact-pum"):
        mapping = "xor" if name == "drama-eviction" else "row"
        reports = run_detection_experiment(
            lambda s, c=ATTACKS[name]: c(s),
            lambda m=mapping: replace(SystemConfig.paper_default(), mapping=m),
            bits=args.bits)
        for side, report in reports.items():
            rows.append((name, side, report.accesses, report.clflushes,
                         str(report.flagged), report.reason))
    print(format_table(
        ["attack", "side", "cache accesses", "clflushes", "flagged", "reason"],
        rows, title="cache-monitor detector (Sec 3)"))
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IMPACT reproduction: PiM main-memory timing attacks")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table2", help="print the simulated configuration")
    p.add_argument("--llc-mb", type=float, default=None)
    p.set_defaults(func=cmd_table2)

    def add_jobs(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--jobs", type=int, default=None, metavar="N",
            help="worker processes for independent sweep points "
                 "(default: all CPUs available to the process; 1 = serial)")

    p = sub.add_parser("covert", help="run a covert channel")
    p.add_argument("--attack", choices=sorted(ATTACKS) + ["all"],
                   default="impact-pnm")
    p.add_argument("--bits", type=int, default=512)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--llc-mb", type=float, default=None)
    p.add_argument("--noise", type=float, default=0.0,
                   help="background activations per kilocycle")
    p.add_argument("--mapping", choices=["row", "line", "xor"], default=None)
    add_jobs(p)
    p.set_defaults(func=cmd_covert)

    p = sub.add_parser("sidechannel", help="run the read-mapping side channel")
    p.add_argument("--banks", type=int, nargs="+", default=[1024],
                   help="bank count(s); several values run as one sweep")
    p.add_argument("--rounds", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--noise", type=float, default=0.0)
    add_jobs(p)
    p.set_defaults(func=cmd_sidechannel)

    p = sub.add_parser("defenses", help="evaluate the Sec 6 defenses")
    p.add_argument("--bits", type=int, default=192)
    p.add_argument("--workload", choices=["BC", "BFS", "CC", "TC", "PR"],
                   default=None)
    p.add_argument("--max-refs", type=int, default=30_000)
    add_jobs(p)
    p.set_defaults(func=cmd_defenses)

    p = sub.add_parser(
        "trace",
        help="run an experiment under the event tracer (Chrome-trace JSON)")
    p.add_argument("experiment", choices=sorted(ATTACKS) + ["fig7"],
                   help="attack to trace; 'fig7' = the Fig. 7 IMPACT-PnM PoC")
    p.add_argument("--bits", type=int, default=128)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--llc-mb", type=float, default=None)
    p.add_argument("--out", default=None, metavar="PATH",
                   help="output path (default: <experiment>.trace.json)")
    p.add_argument("--sanitize", action="store_true",
                   help="also run the timing-invariant sanitizer")
    p.add_argument("--summary", action="store_true",
                   help="summarize an existing trace file (per-requestor "
                        "event counts and cycle spans) without re-running")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "report",
        help="run a sweep with metrics on and write a markdown+JSON "
             "run report to reports/")
    p.add_argument("experiment", choices=["fig8"],
                   help="experiment to report on")
    p.add_argument("--llc-mb", type=float, nargs="+", default=[8.0, 64.0],
                   help="LLC sizes (MB) to sweep")
    p.add_argument("--bits", type=int, default=128,
                   help="message-length scale: attacks send their Fig. 8 "
                        "lengths scaled by bits/512 (min 16)")
    p.add_argument("--attacks", nargs="+", choices=sorted(ATTACKS),
                   default=None,
                   help="subset of channels (default: all seven)")
    p.add_argument("--out-dir", default="reports", metavar="DIR")
    p.add_argument("--trace", action="store_true",
                   help="also capture per-point traces and fold their "
                        "summaries into the report")
    add_jobs(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "sweep",
        help="run a quality sweep through the sweep engine: pick a "
             "backend (serial|pool|serve), enable straggler re-dispatch, "
             "or early-stop reps adaptively on CI convergence")
    p.add_argument("--llc-mb", type=float, nargs="+", default=[8.0, 64.0],
                   help="LLC sizes (MB) to sweep (default: 8 64)")
    p.add_argument("--bits", type=int, default=128,
                   help="message-length scale per channel (default 128)")
    p.add_argument("--attacks", nargs="+", choices=sorted(ATTACKS),
                   default=None,
                   help="subset of channels (default: all seven)")
    p.add_argument("--backend", default="auto",
                   choices=["auto", "serial", "pool", "serve"],
                   help="execution backend: serial in-process, the "
                        "fork-server pool, or a running `repro serve` "
                        "daemon (default: auto picks serial/pool)")
    p.add_argument("--host", default="127.0.0.1",
                   help="daemon host for --backend serve")
    p.add_argument("--port", type=int, default=9306,
                   help="daemon port for --backend serve")
    p.add_argument("--adaptive", action="store_true",
                   help="schedule repetitions in rounds and early-stop "
                        "each point once its worst-stream Wilson BER CI "
                        "half-width drops below --ber-ci")
    p.add_argument("--ber-ci", type=float, default=0.05, metavar="HW",
                   help="target BER CI half-width (default 0.05)")
    p.add_argument("--capacity-tol", type=float, default=None, metavar="TOL",
                   help="also require capacity stability: relative spread "
                        "of the trailing capacity window below TOL")
    p.add_argument("--min-reps", type=int, default=2,
                   help="repetition floor before early-stop may fire")
    p.add_argument("--max-reps", type=int, default=8,
                   help="repetition ceiling per point (the fixed-grid "
                        "budget adaptive is measured against)")
    p.add_argument("--round-reps", type=int, default=2,
                   help="new repetitions per scheduling round")
    p.add_argument("--redispatch", action="store_true",
                   help="speculatively re-dispatch straggler points to "
                        "idle workers (pool backend)")
    p.add_argument("--straggler-factor", type=float, default=4.0,
                   help="straggler threshold: this many times the running "
                        "median point duration (default 4)")
    p.add_argument("--straggler-min-seconds", type=float, default=1.0,
                   help="never flag points younger than this (default 1s)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="persist point results to a ResultCache here")
    p.add_argument("--telemetry-dir", default=None, metavar="DIR",
                   help="write the causal NDJSON event log here")
    add_jobs(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "cache",
        help="inspect or prune the result cache and warm-state store")
    p.add_argument("action", choices=["stats", "prune"],
                   help="stats: show entry counts/sizes; prune: drop "
                        "entries from other code versions, then show stats")
    p.add_argument("--results-dir", default="benchmarks/results/.cache",
                   metavar="DIR", help="result-cache directory")
    p.add_argument("--warm-dir", default=None, metavar="DIR",
                   help="warm-state store directory (default: "
                        "$REPRO_WARMSTORE_DIR or "
                        "benchmarks/results/.warmstore)")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser("recon", help="reverse-engineer the bank function")
    p.add_argument("--mapping", choices=["row", "line", "xor"], default="xor")
    p.set_defaults(func=cmd_recon)

    p = sub.add_parser(
        "bench",
        help="simulator micro-bench: ops/s per backend (scalar|vector|auto);"
             " `bench history` prints the committed BENCH_PR*.json trend")
    p.add_argument("mode", nargs="?", choices=["micro", "history"],
                   default="micro",
                   help="micro: time the simulator (default); history: "
                        "per-metric trend across committed BENCH_PR*.json "
                        "snapshots")
    p.add_argument("--backend", choices=["scalar", "vector", "auto", "all"],
                   default="all",
                   help="engine to time (default: all three, as a "
                        "comparison table)")
    p.add_argument("--accesses", type=int, default=200_000, metavar="N",
                   help="accesses per workload per run (default 200000)")
    p.add_argument("--runs", type=int, default=3, metavar="N",
                   help="runs per cell, median reported (default 3)")
    p.add_argument("--bench-dir", default=".", metavar="DIR",
                   help="directory holding BENCH_PR*.json (history mode; "
                        "default: current directory)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="also write the history table as markdown here "
                        "(history mode)")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("detect", help="run the cache-monitor detector")
    p.add_argument("--bits", type=int, default=128)
    p.set_defaults(func=cmd_detect)

    p = sub.add_parser(
        "serve",
        help="run the simulation-as-a-service daemon (JSON-lines TCP over "
             "the persistent worker pool)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=9306,
                   help="listen port; 0 picks a free one (default 9306)")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="max concurrent points (default: CPU count)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="persist point results to a ResultCache here")
    p.add_argument("--warm-dir", default=None, metavar="DIR",
                   help="set REPRO_WARMSTORE_DIR so workers share warm "
                        "state on disk")
    p.add_argument("--port-file", default=None, metavar="PATH",
                   help="write the bound port here once listening")
    p.add_argument("--no-pool", action="store_true",
                   help="run points inline instead of on the fork-server "
                        "pool (debugging)")
    p.add_argument("--telemetry-dir", default=None, metavar="DIR",
                   help="write the causal NDJSON event log here (sets "
                        "REPRO_TELEMETRY_DIR for the daemon and its "
                        "workers); `repro top --dir` can tail it")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "top",
        help="live fleet view: per-client queues, worker throughput, "
             "stragglers (polls a daemon, or tails a telemetry dir)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=9306)
    p.add_argument("--dir", default=None, metavar="DIR",
                   help="offline mode: reconstruct the view from this "
                        "telemetry event-log directory instead of a daemon")
    p.add_argument("--interval", type=float, default=2.0, metavar="SEC",
                   help="refresh period (default 2s)")
    p.add_argument("--once", action="store_true",
                   help="render one frame and exit (no screen clearing)")
    p.add_argument("--timeout", type=float, default=10.0)
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "submit",
        help="submit a sweep to a running `repro serve` daemon")
    p.add_argument("experiment", nargs="?", default=None,
                   help="registered experiment name (e.g. fig8, covert)")
    p.add_argument("--fn", default=None, metavar="MODULE:ATTR",
                   help="module-level point function instead of a "
                        "registered experiment")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=9306)
    p.add_argument("--points", default=None, metavar="JSON",
                   help='explicit point list, e.g. \'[{"llc_mb": 8}]\'')
    p.add_argument("--axis", default=None, metavar="NAME",
                   help="sweep one parameter: --axis llc_mb --values 8 64")
    p.add_argument("--values", nargs="*", default=[], metavar="V",
                   help="JSON values for --axis")
    p.add_argument("--priority", type=int, default=0,
                   help="higher runs earlier within this client")
    p.add_argument("--timeout", type=float, default=600.0)
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-point progress lines")
    p.add_argument("--metrics", action="store_true",
                   help="print the daemon's metrics snapshot and exit")
    p.add_argument("--status", action="store_true",
                   help="print scheduler status and exit")
    p.add_argument("--shutdown", action="store_true",
                   help="ask the daemon to exit")
    p.set_defaults(func=cmd_submit)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # `repro top | head` and friends: the reader went away, which is
        # not an error worth a traceback.
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
