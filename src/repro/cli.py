"""Command-line interface: drive every experiment without writing code.

Usage::

    python -m repro table2
    python -m repro covert --attack impact-pnm --bits 512 --llc-mb 8
    python -m repro covert --attack all
    python -m repro sidechannel --banks 1024 --rounds 100
    python -m repro defenses --workload PR
    python -m repro recon --mapping xor
    python -m repro detect
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence

from repro import System, SystemConfig
from repro.analysis import format_table
from repro.attacks import (
    AddressReconnaissance,
    DmaEngineChannel,
    DramaClflushChannel,
    DramaEvictionChannel,
    ImpactPnmChannel,
    ImpactPumChannel,
    PnmOffchipChannel,
    ReadMappingSideChannel,
    StreamlineChannel,
    fake_schedule,
    streamline_upper_bound_mbps,
)
from repro.detection import run_detection_experiment

ATTACKS: Dict[str, Callable[[System], object]] = {
    "impact-pnm": ImpactPnmChannel,
    "impact-pum": ImpactPumChannel,
    "dma": DmaEngineChannel,
    "drama-clflush": DramaClflushChannel,
    "drama-eviction": DramaEvictionChannel,
    "pnm-offchip": PnmOffchipChannel,
    "streamline": StreamlineChannel,
}


def _config(args: argparse.Namespace) -> SystemConfig:
    config = SystemConfig.paper_default()
    if getattr(args, "llc_mb", None):
        config = config.with_llc(float(args.llc_mb))
    if getattr(args, "noise", 0.0):
        config = config.with_noise(args.noise)
    mapping = getattr(args, "mapping", None)
    if mapping:
        config = replace(config, mapping=mapping)
    return config


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------

def cmd_table2(args: argparse.Namespace) -> int:
    config = _config(args)
    rows = [(r["component"], r["configuration"]) for r in config.describe()]
    print(format_table(["component", "configuration"], rows,
                       title="Table 2: simulation configuration"))
    return 0


def cmd_covert(args: argparse.Namespace) -> int:
    names = list(ATTACKS) if args.attack == "all" else [args.attack]
    rows = []
    for name in names:
        config = _config(args)
        if name == "drama-eviction" and config.mapping != "xor":
            config = replace(config, mapping="xor")
        channel = ATTACKS[name](System(config))
        result = channel.transmit_random(args.bits, seed=args.seed)
        rows.append((name, f"{result.throughput_mbps:.2f}",
                     f"{result.error_rate:.2%}",
                     f"{result.cycles_per_bit:.0f}"))
    if args.attack == "all":
        bound = streamline_upper_bound_mbps(System(_config(args)))
        rows.append(("streamline (bound)", f"{bound:.2f}", "-", "-"))
        rows.sort(key=lambda r: -float(r[1]))
    print(format_table(["attack", "Mb/s", "error", "cycles/bit"], rows,
                       title=f"covert channels, {args.bits} bits"))
    return 0


def cmd_sidechannel(args: argparse.Namespace) -> int:
    config = (_config(args).with_banks(args.banks)
              .with_noise(args.noise if args.noise else 0.0105))
    system = System(config)
    schedule = fake_schedule(args.banks, args.rounds, seed=args.seed)
    result = ReadMappingSideChannel(system).run(schedule)
    print(result.summary())
    print(f"leaked {result.leaked_bits:.0f} bits in {result.cycles} cycles "
          f"({result.correct}/{result.rounds} probes decoded; "
          f"{result.false_positives} false positives)")
    return 0


def cmd_defenses(args: argparse.Namespace) -> int:
    from repro.attacks import ImpactPnmChannel as Channel
    from repro.defenses import evaluate_channel_under_defense
    from repro.workloads import evaluate_defenses

    rows = []
    for defense in ("open", "mpr", "crp", "ctd"):
        report = evaluate_channel_under_defense(lambda s: Channel(s), defense,
                                                bits=args.bits)
        rows.append((defense, str(report.blocked),
                     f"{report.capacity_bits_per_symbol:.4f}",
                     "eliminated" if report.channel_eliminated else "SURVIVES"))
    print(format_table(["defense", "blocked", "capacity b/sym", "verdict"],
                       rows, title="security vs IMPACT-PnM"))
    if args.workload:
        print(f"\nmeasuring {args.workload} under each row policy "
              f"(takes a minute)...")
        ev = evaluate_defenses(args.workload, max_refs=args.max_refs)
        print(format_table(
            ["policy", "cycles", "overhead"],
            [(p, ev.results[p].cycles,
              f"{ev.overhead(p):+.1%}" if p != "open" else "baseline")
             for p in ("open", "crp", "ctd")],
            title=f"{ev.workload}: measured MPKI {ev.measured_mpki:.2f} "
                  f"(paper {ev.paper_mpki})"))
    return 0


def cmd_recon(args: argparse.Namespace) -> int:
    config = _config(args)
    system = System(config)
    recon = AddressReconnaissance(system)
    model = recon.recover_bank_function()
    print(f"mapping under test: {config.mapping!r}")
    print(f"recovered: {model.describe()}")
    print(f"timing probes spent: {recon.timing_probes}")
    return 0


def cmd_detect(args: argparse.Namespace) -> int:
    rows = []
    for name in ("drama-clflush", "impact-pnm", "impact-pum"):
        mapping = "xor" if name == "drama-eviction" else "row"
        reports = run_detection_experiment(
            lambda s, c=ATTACKS[name]: c(s),
            lambda m=mapping: replace(SystemConfig.paper_default(), mapping=m),
            bits=args.bits)
        for side, report in reports.items():
            rows.append((name, side, report.accesses, report.clflushes,
                         str(report.flagged), report.reason))
    print(format_table(
        ["attack", "side", "cache accesses", "clflushes", "flagged", "reason"],
        rows, title="cache-monitor detector (Sec 3)"))
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IMPACT reproduction: PiM main-memory timing attacks")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table2", help="print the simulated configuration")
    p.add_argument("--llc-mb", type=float, default=None)
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser("covert", help="run a covert channel")
    p.add_argument("--attack", choices=sorted(ATTACKS) + ["all"],
                   default="impact-pnm")
    p.add_argument("--bits", type=int, default=512)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--llc-mb", type=float, default=None)
    p.add_argument("--noise", type=float, default=0.0,
                   help="background activations per kilocycle")
    p.add_argument("--mapping", choices=["row", "line", "xor"], default=None)
    p.set_defaults(func=cmd_covert)

    p = sub.add_parser("sidechannel", help="run the read-mapping side channel")
    p.add_argument("--banks", type=int, default=1024)
    p.add_argument("--rounds", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--noise", type=float, default=0.0)
    p.set_defaults(func=cmd_sidechannel)

    p = sub.add_parser("defenses", help="evaluate the Sec 6 defenses")
    p.add_argument("--bits", type=int, default=192)
    p.add_argument("--workload", choices=["BC", "BFS", "CC", "TC", "PR"],
                   default=None)
    p.add_argument("--max-refs", type=int, default=30_000)
    p.set_defaults(func=cmd_defenses)

    p = sub.add_parser("recon", help="reverse-engineer the bank function")
    p.add_argument("--mapping", choices=["row", "line", "xor"], default="xor")
    p.set_defaults(func=cmd_recon)

    p = sub.add_parser("detect", help="run the cache-monitor detector")
    p.add_argument("--bits", type=int, default=128)
    p.set_defaults(func=cmd_detect)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
