"""Top-level system configuration (Table 2) and presets."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.cache.hierarchy import HierarchyConfig
from repro.dram.address import DRAMGeometry
from repro.dram.controller import MemoryControllerConfig, RowPolicy
from repro.dram.timings import DRAMTimings
from repro.pim.pei import PEIConfig
from repro.pim.rowclone import RowCloneConfig
from repro.sim.timer import TimerConfig


@dataclass(frozen=True)
class DMAConfig:
    """DMA-engine access cost model (§5.1 comparison point iv).

    A DMA transfer bypasses the caches but drags deep software stacks with
    it; ``software_overhead_cycles`` is the per-operation descriptor setup,
    doorbell, and completion handling cost that makes the DMA channel
    ~2.4x slower than IMPACT-PnM despite also being cache-free (§5.3).
    ``jitter_cycles`` is the uniform +/- variation of that software stack;
    it erodes the 70-cycle row-buffer gap, which is why Table 1 scores the
    DMA primitive's timing-difference detectability as a cross.
    """

    software_overhead_cycles: int = 320
    engine_cycles: int = 12
    jitter_cycles: int = 35
    jitter_seed: int = 7

    def __post_init__(self) -> None:
        if self.software_overhead_cycles < 0 or self.engine_cycles < 0:
            raise ValueError("DMA cycle costs must be >= 0")
        if self.jitter_cycles < 0:
            raise ValueError("DMA jitter must be >= 0")


@dataclass(frozen=True)
class NoiseConfig:
    """Background-activation noise (prefetchers of co-running processes,
    page-table walkers, refresh — §5.1 "Noise Sources").

    ``activation_rate_per_kilocycle`` is the expected number of stray row
    activations landing in random banks per 1000 CPU cycles.
    """

    activation_rate_per_kilocycle: float = 0.0
    seed: int = 99

    def __post_init__(self) -> None:
        if self.activation_rate_per_kilocycle < 0:
            raise ValueError("noise rate must be >= 0")


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build a :class:`repro.system.System`.

    ``paper_default()`` reproduces Table 2; experiment sweeps use
    :func:`dataclasses.replace`-style helpers (:meth:`with_llc`,
    :meth:`with_defense`).
    """

    cpu_ghz: float = 2.6
    num_cores: int = 4
    geometry: DRAMGeometry = field(default_factory=DRAMGeometry)
    timings: DRAMTimings = field(default_factory=DRAMTimings)
    mapping: str = "row"
    row_policy: RowPolicy = RowPolicy.OPEN
    constant_time: bool = False
    queue_cycles: int = 4
    refresh_enabled: bool = False
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    pei: PEIConfig = field(default_factory=PEIConfig)
    rowclone: RowCloneConfig = field(default_factory=RowCloneConfig)
    dma: DMAConfig = field(default_factory=DMAConfig)
    # cpuid + rdtscp serialization costs ~20 cycles per timestamp read.
    timer: TimerConfig = field(
        default_factory=lambda: TimerConfig(read_overhead_cycles=20))
    noise: NoiseConfig = field(default_factory=NoiseConfig)

    # ------------------------------------------------------------------
    # Presets and sweep helpers
    # ------------------------------------------------------------------

    @staticmethod
    def paper_default() -> "SystemConfig":
        """The Table 2 configuration: 4-core 2.6 GHz OoO x86, 3-level
        caches with SRRIP + prefetchers, DDR4-2400 with 16 banks x 4 ranks,
        open-row policy."""
        return SystemConfig()

    def with_llc(self, size_mb: float, ways: Optional[int] = None) -> "SystemConfig":
        """Sweep helper for Figs. 2/3/8: change LLC size and/or ways (the
        lookup latency follows the CACTI model automatically)."""
        new_ways = ways if ways is not None else self.hierarchy.llc_ways
        hierarchy = replace(self.hierarchy, llc_size_mb=size_mb, llc_ways=new_ways)
        return replace(self, hierarchy=hierarchy)

    def with_banks(self, num_banks: int) -> "SystemConfig":
        """Sweep helper for Fig. 10: flat bank count (single rank)."""
        geometry = replace(self.geometry, ranks=1, banks_per_rank=num_banks)
        return replace(self, geometry=geometry)

    def with_defense(self, defense: str) -> "SystemConfig":
        """Apply a §6 defense: ``"open"`` (baseline), ``"crp"`` (closed-row
        policy), or ``"ctd"`` (constant-time DRAM access).  MPR (bank
        partitioning) is applied on the built system via
        ``controller.partition_banks`` because it needs owner sets."""
        if defense == "open":
            return replace(self, row_policy=RowPolicy.OPEN, constant_time=False)
        if defense == "crp":
            return replace(self, row_policy=RowPolicy.CLOSED, constant_time=False)
        if defense == "ctd":
            return replace(self, row_policy=RowPolicy.OPEN, constant_time=True)
        raise ValueError(f"unknown defense {defense!r}; use open/crp/ctd")

    def with_noise(self, rate_per_kilocycle: float, seed: int = 99) -> "SystemConfig":
        return replace(self, noise=NoiseConfig(rate_per_kilocycle, seed))

    def controller_config(self) -> MemoryControllerConfig:
        return MemoryControllerConfig(
            geometry=self.geometry, timings=self.timings, mapping=self.mapping,
            row_policy=self.row_policy, constant_time=self.constant_time,
            queue_cycles=self.queue_cycles, refresh_enabled=self.refresh_enabled)

    # ------------------------------------------------------------------
    # Reporting (Table 2 bench)
    # ------------------------------------------------------------------

    def describe(self) -> List[Dict[str, str]]:
        """Rows mirroring Table 2 for the configuration dump bench."""
        h = self.hierarchy
        t = self.timings
        g = self.geometry
        return [
            {"component": "CPU",
             "configuration": f"{self.num_cores}-core, OoO x86, {self.cpu_ghz} GHz"},
            {"component": "MMU",
             "configuration": "L1 DTLB (4KB): 64-entry 4-way 1-cycle; "
                              "L1 DTLB (2MB): 32-entry 4-way 1-cycle; "
                              "L2 TLB: 1536-entry 12-way 12-cycle"},
            {"component": "L1 Cache",
             "configuration": f"{h.l1_size_kb} KB, {h.l1_ways}-way, "
                              f"{h.l1_latency}-cycle, {h.l1_replacement.upper()}, "
                              f"IP-stride prefetcher"},
            {"component": "L2 Cache",
             "configuration": f"{h.l2_size_kb // 1024} MB, {h.l2_ways}-way, "
                              f"{h.l2_latency}-cycle, {h.l2_replacement.upper()}, "
                              f"Streamer"},
            {"component": "L3 Cache",
             "configuration": f"{h.llc_size_mb / self.num_cores:g} MB/core, "
                              f"{h.llc_ways}-way, {h.llc_latency_cycles}-cycle, "
                              f"{h.llc_replacement.upper()}"},
            {"component": "Main Memory",
             "configuration": f"DDR4-2400, {g.banks_per_rank} banks, {g.ranks} ranks, "
                              f"{g.channels} channel, row size = {g.row_bytes} bytes, "
                              f"tRCD = {t.t_rcd_ns} ns, tRP = {t.t_rp_ns} ns, "
                              f"{self.row_policy.value}-row policy"},
        ]
