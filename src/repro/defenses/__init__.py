"""The three §6 defenses and their security/performance evaluation.

- **MPR** (bank-level memory partitioning) — exclusive bank ownership;
  implemented in the controller (:meth:`MemoryController.partition_banks`),
  with the planning/utilization analysis here.
- **CRP** (closed-row policy) — ``SystemConfig.with_defense("crp")``.
- **CTD** (constant-time DRAM access) — ``SystemConfig.with_defense("ctd")``.

:mod:`repro.defenses.security` verifies each defense actually eliminates
the covert channel (error rate collapses to coin-flipping / the access is
denied); :mod:`repro.workloads.runner` measures the §6 performance cost.
"""

from repro.defenses.partitioning import (
    PartitionPlan,
    plan_partitions,
)
from repro.defenses.security import (
    DefenseSecurityReport,
    channel_capacity_bits,
    evaluate_channel_under_defense,
)

__all__ = [
    "DefenseSecurityReport",
    "PartitionPlan",
    "channel_capacity_bits",
    "evaluate_channel_under_defense",
    "plan_partitions",
]
