"""Bank-level memory partitioning (MPR, §6) — planning and cost analysis.

MPR gives each process exclusive DRAM banks.  Its three §6 drawbacks are
quantifiable and surfaced by :class:`PartitionPlan`:

1. the bank count caps the number of concurrently running processes,
2. bank-granular allocation strands capacity (internal fragmentation),
3. shared data must be duplicated per partition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.dram.address import DRAMGeometry


@dataclass(frozen=True)
class ProcessDemand:
    """A process's memory footprint for partition planning."""

    name: str
    footprint_bytes: int
    shared_bytes: int = 0  # portion that would otherwise be shared

    def __post_init__(self) -> None:
        if self.footprint_bytes < 0 or self.shared_bytes < 0:
            raise ValueError("byte counts must be >= 0")
        if self.shared_bytes > self.footprint_bytes:
            raise ValueError("shared_bytes cannot exceed the footprint")


@dataclass
class PartitionPlan:
    """An MPR bank assignment plus its §6 cost metrics."""

    geometry: DRAMGeometry
    assignments: Dict[str, List[int]]
    rejected: List[str]

    @property
    def banks_used(self) -> int:
        return sum(len(banks) for banks in self.assignments.values())

    @property
    def max_concurrent_processes(self) -> int:
        """Drawback 1: one bank minimum per process."""
        return self.geometry.num_banks

    def allocated_bytes(self, demands: Sequence[ProcessDemand]) -> int:
        bank_bytes = self.geometry.rows_per_bank * self.geometry.row_bytes
        return self.banks_used * bank_bytes

    def utilization(self, demands: Sequence[ProcessDemand]) -> float:
        """Drawback 2: requested bytes over bank-granular allocated bytes."""
        allocated = self.allocated_bytes(demands)
        if allocated == 0:
            return 0.0
        wanted = sum(d.footprint_bytes for d in demands
                     if d.name in self.assignments)
        return wanted / allocated

    def duplicated_shared_bytes(self, demands: Sequence[ProcessDemand]) -> int:
        """Drawback 3: shared data duplicated into every partition beyond
        the first copy."""
        sharers = [d for d in demands
                   if d.name in self.assignments and d.shared_bytes > 0]
        if len(sharers) <= 1:
            return 0
        return sum(d.shared_bytes for d in sharers[1:])


def plan_partitions(geometry: DRAMGeometry,
                    demands: Sequence[ProcessDemand]) -> PartitionPlan:
    """First-fit bank assignment: each process receives exclusive banks
    covering its footprint; processes that no longer fit are rejected
    (drawback 1: the fixed bank count limits concurrency)."""
    bank_bytes = geometry.rows_per_bank * geometry.row_bytes
    next_bank = 0
    assignments: Dict[str, List[int]] = {}
    rejected: List[str] = []
    seen = set()
    for demand in demands:
        if demand.name in seen:
            raise ValueError(f"duplicate process name {demand.name!r}")
        seen.add(demand.name)
        banks_needed = max(1, math.ceil(demand.footprint_bytes / bank_bytes))
        if next_bank + banks_needed > geometry.num_banks:
            rejected.append(demand.name)
            continue
        assignments[demand.name] = list(range(next_bank,
                                              next_bank + banks_needed))
        next_bank += banks_needed
    return PartitionPlan(geometry=geometry, assignments=assignments,
                         rejected=rejected)
