"""Security evaluation: do the §6 defenses actually kill the channel?

A defense *eliminates* the row-buffer timing channel when the receiver's
decode degenerates to coin flipping (error rate ~ 0.5 on random messages,
Shannon capacity ~ 0 bits/symbol) or the access is denied outright (MPR).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.attacks.channel import ChannelResult, CovertChannel
from repro.config import SystemConfig
from repro.dram.controller import PartitionViolationError
from repro.system import System


def _binary_entropy(p: float) -> float:
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -p * math.log2(p) - (1 - p) * math.log2(1 - p)


def channel_capacity_bits(error_rate: float) -> float:
    """Shannon capacity of a binary symmetric channel with crossover
    ``error_rate`` (bits per transmitted bit)."""
    if not 0.0 <= error_rate <= 1.0:
        raise ValueError("error_rate must be within [0, 1]")
    return 1.0 - _binary_entropy(error_rate)


@dataclass
class DefenseSecurityReport:
    """Outcome of attacking a defended system."""

    defense: str
    attack: str
    blocked: bool  # access denied (MPR)
    result: Optional[ChannelResult] = None

    @property
    def error_rate(self) -> float:
        if self.blocked or self.result is None:
            return 0.5  # no information flows
        return self.result.error_rate

    @property
    def capacity_bits_per_symbol(self) -> float:
        if self.blocked:
            return 0.0
        return channel_capacity_bits(self.error_rate)

    @property
    def effective_throughput_mbps(self) -> float:
        if self.blocked or self.result is None:
            return 0.0
        return self.result.raw_throughput_mbps * self.capacity_bits_per_symbol

    @property
    def channel_eliminated(self) -> bool:
        """< 0.05 bits/symbol: statistically useless to the attacker."""
        return self.capacity_bits_per_symbol < 0.05

    def summary(self) -> str:
        if self.blocked:
            return (f"{self.defense} vs {self.attack}: access denied "
                    f"(partition violation) — channel eliminated")
        return (f"{self.defense} vs {self.attack}: error {self.error_rate:.2%}, "
                f"capacity {self.capacity_bits_per_symbol:.3f} b/sym, "
                f"{'eliminated' if self.channel_eliminated else 'SURVIVES'}")


ChannelFactory = Callable[[System], CovertChannel]


def evaluate_channel_under_defense(channel_factory: ChannelFactory,
                                   defense: str,
                                   base_config: Optional[SystemConfig] = None,
                                   bits: int = 256,
                                   seed: int = 0) -> DefenseSecurityReport:
    """Mount an attack against a defended system.

    ``defense``: ``open`` (undefended baseline), ``crp``, ``ctd``, or
    ``mpr`` (sender and receiver confined to disjoint bank partitions).
    """
    base = base_config or SystemConfig.paper_default()
    if defense == "mpr":
        system = System(base)
        half = system.num_banks // 2
        system.controller.partition_banks("sender", range(half))
        system.controller.partition_banks("receiver",
                                          range(half, system.num_banks))
        channel = channel_factory(system)
        try:
            result = channel.transmit_random(bits, seed)
        except PartitionViolationError:
            return DefenseSecurityReport(defense=defense, attack=channel.name,
                                         blocked=True)
        return DefenseSecurityReport(defense=defense, attack=channel.name,
                                     blocked=False, result=result)
    system = System(base.with_defense(defense))
    channel = channel_factory(system)
    result = channel.transmit_random(bits, seed)
    return DefenseSecurityReport(defense=defense, attack=channel.name,
                                 blocked=False, result=result)
