"""Cache-monitoring attack detection — and why it misses IMPACT (§3).

The paper's core deployment argument: practical defenses detect timing
attacks from cache-side performance counters (abnormal miss ratios,
flush storms — NIGHTs-WATCH [64], PMU-based ML detectors [65, 66]) or
restrict cache-management instructions [63].  PiM-based attacks never
touch the cache hierarchy, so these mechanisms are *inapplicable*:
"these attacks completely bypass the cache hierarchy."

This package implements such a detector and demonstrates exactly that:
it flags DRAMA-clflush and DRAMA-eviction, and sees literally zero events
from IMPACT-PnM / IMPACT-PuM.
"""

from repro.detection.detector import (
    CacheMonitorDetector,
    DetectionReport,
    DetectorConfig,
    run_detection_experiment,
)

__all__ = [
    "CacheMonitorDetector",
    "DetectionReport",
    "DetectorConfig",
    "run_detection_experiment",
]
