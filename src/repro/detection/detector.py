"""A performance-counter attack detector in the style of [63-66].

The detector reads the hardware-visible, per-process cache-event counters
(:class:`repro.cache.hierarchy.RequestorCacheStats`) and applies the
heuristics the cited systems use:

- **flush storm** — cache-line flushes at a rate no benign workload
  sustains (the [63]-style clflush restriction's trigger),
- **miss anomaly** — the process's miss ratio is *statistically*
  distinguishable from the benign baseline: a Welch's t-test between the
  observed Bernoulli miss distribution and a benign reference profile,
  using the same TVLA |t| > 4.5 decision rule as the channel-quality
  leakage score (:mod:`repro.analysis.quality`), gated by a minimum miss
  *rate* (misses per kilocycle) so tiny hot loops don't trip it.

Its blind spot is the point: a PiM attacker generates no cache events at
all, so every counter the detector can read stays at zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.analysis.stats import welch_t_from_summary
from repro.cache.hierarchy import RequestorCacheStats
from repro.system import System


@dataclass(frozen=True)
class DetectorConfig:
    """Detection thresholds (per observation window).

    Defaults are deliberately aggressive — the paper's argument does not
    depend on tuning: IMPACT's counters are exactly zero.

    ``benign_miss_ratio``/``benign_sample_accesses`` describe the benign
    reference profile the miss-anomaly t-test compares against (a typical
    ~5% LLC miss ratio measured over a large window);
    ``leakage_t_threshold`` is the TVLA boundary shared with
    :data:`repro.analysis.TVLA_T_THRESHOLD`.
    """

    flush_per_kilocycle_threshold: float = 0.5
    miss_per_kilocycle_threshold: float = 1.0
    benign_miss_ratio: float = 0.05
    benign_sample_accesses: int = 10_000
    leakage_t_threshold: float = 4.5
    min_events: int = 16

    def __post_init__(self) -> None:
        if self.min_events < 1:
            raise ValueError("min_events must be >= 1")
        if not 0.0 <= self.benign_miss_ratio < 1.0:
            raise ValueError("benign_miss_ratio must be in [0, 1)")


@dataclass
class DetectionReport:
    """Per-requestor verdict."""

    requestor: str
    accesses: int
    llc_misses: int
    clflushes: int
    miss_ratio: float
    flush_per_kilocycle: float
    miss_per_kilocycle: float
    flagged: bool
    reason: str
    miss_t_score: float = 0.0

    def row(self) -> Dict[str, object]:
        return {
            "requestor": self.requestor,
            "accesses": self.accesses,
            "misses": self.llc_misses,
            "clflushes": self.clflushes,
            "miss_ratio": round(self.miss_ratio, 3),
            "flagged": self.flagged,
            "reason": self.reason,
        }


class CacheMonitorDetector:
    """Flags attack-like cache behaviour from PMU-style counters."""

    def __init__(self, config: Optional[DetectorConfig] = None) -> None:
        self.config = config or DetectorConfig()

    def inspect(self, requestor: str,
                stats: RequestorCacheStats) -> DetectionReport:
        cfg = self.config
        window_kc = stats.window_cycles / 1000.0
        flush_rate = stats.clflushes / window_kc
        miss_rate = stats.llc_misses / window_kc
        flagged = False
        reason = "clean"
        total_events = stats.accesses + stats.clflushes
        # Welch's t between the observed Bernoulli miss distribution and
        # the benign reference profile — the same statistic (and |t|>4.5
        # rule) the channel-quality leakage score uses.
        p, q = stats.miss_ratio, cfg.benign_miss_ratio
        miss_t = welch_t_from_summary(
            p, p * (1.0 - p), stats.accesses,
            q, q * (1.0 - q), cfg.benign_sample_accesses)
        if total_events < cfg.min_events:
            reason = "no cache activity" if total_events == 0 else "too quiet"
        elif flush_rate > cfg.flush_per_kilocycle_threshold:
            flagged = True
            reason = f"flush storm ({flush_rate:.2f} clflush/kc)"
        elif (miss_t > cfg.leakage_t_threshold
              and stats.miss_ratio > cfg.benign_miss_ratio
              and miss_rate > cfg.miss_per_kilocycle_threshold):
            flagged = True
            reason = (f"miss anomaly (ratio {stats.miss_ratio:.2f}, "
                      f"{miss_rate:.2f} misses/kc, t={miss_t:.1f})")
        return DetectionReport(
            requestor=requestor, accesses=stats.accesses,
            llc_misses=stats.llc_misses, clflushes=stats.clflushes,
            miss_ratio=stats.miss_ratio, flush_per_kilocycle=flush_rate,
            miss_per_kilocycle=miss_rate, flagged=flagged, reason=reason,
            miss_t_score=miss_t)

    def scan(self, system: System,
             requestors: Optional[List[str]] = None) -> Dict[str, DetectionReport]:
        """Inspect every (or the named) requestors seen by the hierarchy."""
        by_requestor = system.hierarchy.stats.by_requestor
        names = requestors if requestors is not None else sorted(by_requestor)
        reports = {}
        for name in names:
            stats = by_requestor.get(name, RequestorCacheStats())
            reports[name] = self.inspect(name, stats)
        return reports


def run_detection_experiment(channel_factory: Callable[[System], object],
                             config_factory: Callable[[], object],
                             bits: int = 128,
                             detector: Optional[CacheMonitorDetector] = None,
                             ) -> Dict[str, DetectionReport]:
    """Mount an attack, then let the detector scan its sender/receiver.

    Returns the reports for the ``sender`` and ``receiver`` requestors
    (absent counters mean the attack was invisible to the monitor).
    """
    system = System(config_factory())
    channel = channel_factory(system)
    channel.transmit_random(bits, seed=11)
    det = detector or CacheMonitorDetector()
    return det.scan(system, requestors=["sender", "receiver"])
