"""DRAM substrate: geometry, timing, banks, address mapping, controller.

Models the main-memory structures the IMPACT attacks exploit:

- per-bank **row buffers** with hit / empty (closed) / conflict latencies
  (§2.1, §3.1 — the conflict-vs-hit gap is the timing channel),
- **bank busy-time contention** (the PuM channel observes it),
- configurable **address mappings** (row-, line-interleaved, XOR bank hash),
- a **memory controller** with open-row, timeout, and closed-row policies,
  constant-time access mode, bank partitioning, and refresh.

The defense mechanisms of §6 (CRP, CTD, MPR) are controller configurations.
"""

from repro.dram.address import (
    AddressMapping,
    DRAMGeometry,
    DRAMLocation,
    LineInterleavedMapping,
    RowInterleavedMapping,
    XorBankMapping,
    make_mapping,
)
from repro.dram.bank import AccessKind, Bank, BankAccess
from repro.dram.controller import (
    MemoryController,
    MemoryControllerConfig,
    MemoryResult,
    PartitionViolationError,
    RowPolicy,
)
from repro.dram.device import DRAMDevice
from repro.dram.scheduling import (
    Request,
    RequestScheduler,
    ScheduleStats,
    ScheduledRequest,
    SchedulingPolicy,
    requests_from_refs,
)
from repro.dram.timings import DRAMTimings

__all__ = [
    "AccessKind",
    "AddressMapping",
    "Bank",
    "BankAccess",
    "DRAMDevice",
    "DRAMGeometry",
    "DRAMLocation",
    "DRAMTimings",
    "LineInterleavedMapping",
    "MemoryController",
    "MemoryControllerConfig",
    "MemoryResult",
    "PartitionViolationError",
    "Request",
    "RequestScheduler",
    "RowInterleavedMapping",
    "RowPolicy",
    "ScheduleStats",
    "ScheduledRequest",
    "SchedulingPolicy",
    "XorBankMapping",
    "make_mapping",
    "requests_from_refs",
]
