"""Physical-address-to-DRAM-location mappings.

Modern controllers interleave physical memory across banks to exploit
bank-level parallelism (§4.3 cites [104-107]).  Attacks must reverse this
mapping to co-locate data with a victim (memory massaging, §4.1); here both
directions are exposed: :meth:`AddressMapping.decode` for the hardware path
and :meth:`AddressMapping.encode` for attack code that crafts addresses
targeting a chosen (bank, row).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class DRAMGeometry:
    """Shape of the simulated memory system.

    Defaults follow Table 2: one channel, 4 ranks x 16 banks, 8 KiB rows.
    ``num_banks`` is the flat count of independently accessible banks
    (rank x bank), which is what the attacks enumerate.
    """

    channels: int = 1
    ranks: int = 4
    banks_per_rank: int = 16
    rows_per_bank: int = 65536
    row_bytes: int = 8192
    line_bytes: int = 64
    subarrays_per_bank: int = 64

    def __post_init__(self) -> None:
        for field_name in ("channels", "ranks", "banks_per_rank",
                           "rows_per_bank", "row_bytes", "line_bytes",
                           "subarrays_per_bank"):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be >= 1")
        if self.row_bytes % self.line_bytes != 0:
            raise ValueError("row_bytes must be a multiple of line_bytes")
        if self.rows_per_bank % self.subarrays_per_bank != 0:
            raise ValueError("rows_per_bank must divide into subarrays")

    @property
    def num_banks(self) -> int:
        """Total independently accessible banks across all ranks."""
        return self.ranks * self.banks_per_rank

    @property
    def lines_per_row(self) -> int:
        return self.row_bytes // self.line_bytes

    @property
    def rows_per_subarray(self) -> int:
        """Rows sharing one local row buffer — RowClone's Fast Parallel
        Mode only works within these boundaries [52]."""
        return self.rows_per_bank // self.subarrays_per_bank

    def subarray_of_row(self, row: int) -> int:
        return row // self.rows_per_subarray

    @property
    def capacity_bytes(self) -> int:
        return self.num_banks * self.rows_per_bank * self.row_bytes


@dataclass(frozen=True, slots=True)
class DRAMLocation:
    """A decoded DRAM coordinate.

    (Slotted: one is built per decoded DRAM request, on the hot path.)
    """

    bank: int
    row: int
    col: int


def _shift_for(value: int) -> Optional[int]:
    """log2(value) when ``value`` is a power of two, else None."""
    if value > 0 and value & (value - 1) == 0:
        return value.bit_length() - 1
    return None


class AddressMapping:
    """Base class for invertible physical-address mappings.

    Decode runs once per DRAM request, so every mapping precomputes its
    geometry-derived constants here — and, when the relevant dimensions are
    powers of two (the common case: 64-byte lines, 8 KiB rows, 2^n banks),
    replaces the per-access divisions with mask/shift bit arithmetic.
    """

    def __init__(self, geometry: DRAMGeometry) -> None:
        self.geometry = geometry
        self._row_bytes = geometry.row_bytes
        self._num_banks = geometry.num_banks
        self._rows_per_bank = geometry.rows_per_bank
        self._capacity = geometry.capacity_bytes
        self._row_shift = _shift_for(self._row_bytes)
        self._bank_shift = _shift_for(self._num_banks)
        self._col_mask = self._row_bytes - 1
        self._bank_mask = self._num_banks - 1

    def decode(self, addr: int) -> DRAMLocation:
        """Map a physical byte address to its DRAM location."""
        raise NotImplementedError

    def decode_bank_row(self, addr: int) -> "tuple":
        """``(bank, row)`` of ``addr`` without building a DRAMLocation.

        The controller's finish-only fast path (prefetch fills, write-backs)
        needs just these two coordinates; subclasses may override with a
        cheaper computation than full :meth:`decode`.
        """
        loc = self.decode(addr)
        return loc.bank, loc.row

    def decode_banks_rows(self, addrs) -> "tuple":
        """Vectorized :meth:`decode_bank_row`: ``addrs`` is a numpy int64
        array, the result a ``(banks, rows)`` pair of int64 arrays.

        Validates the whole batch up front, raising the same
        ``ValueError`` (same message, anchored on the first offending
        address) the scalar decoders raise.  The base implementation
        loops; the bundled mappings override with pure array arithmetic.
        """
        self._check_addrs(addrs)
        banks = []
        rows = []
        for addr in addrs.tolist():
            bank, row = self.decode_bank_row(addr)
            banks.append(bank)
            rows.append(row)
        import numpy as np

        return (np.asarray(banks, dtype=np.int64),
                np.asarray(rows, dtype=np.int64))

    def encode(self, bank: int, row: int, col: int = 0) -> int:
        """Inverse of :meth:`decode`: craft an address for a location."""
        raise NotImplementedError

    def _check_location(self, bank: int, row: int, col: int) -> None:
        geom = self.geometry
        if not 0 <= bank < geom.num_banks:
            raise ValueError(f"bank {bank} out of range [0, {geom.num_banks})")
        if not 0 <= row < geom.rows_per_bank:
            raise ValueError(f"row {row} out of range [0, {geom.rows_per_bank})")
        if not 0 <= col < geom.row_bytes:
            raise ValueError(f"col {col} out of range [0, {geom.row_bytes})")

    def _check_addr(self, addr: int) -> None:
        if not 0 <= addr < self._capacity:
            raise ValueError(
                f"address {addr:#x} out of range [0, {self._capacity:#x})"
            )

    def _check_addrs(self, addrs) -> None:
        """Range-check a numpy int64 batch; raises via :meth:`_check_addr`
        on the first out-of-range element so the error text is identical
        to the scalar path's."""
        bad = (addrs < 0) | (addrs >= self._capacity)
        if bad.any():
            self._check_addr(int(addrs[bad.argmax()]))


class RowInterleavedMapping(AddressMapping):
    """Consecutive addresses fill a whole row before switching banks.

    Layout (low to high): ``col | bank | row``.  Sequential streams get long
    row-buffer hit runs in one bank, then move to the next bank.
    """

    def decode(self, addr: int) -> DRAMLocation:
        if not 0 <= addr < self._capacity:
            self._check_addr(addr)
        if self._row_shift is not None and self._bank_shift is not None:
            col = addr & self._col_mask
            rest = addr >> self._row_shift
            bank = rest & self._bank_mask
            row = rest >> self._bank_shift
        else:
            rest, col = divmod(addr, self._row_bytes)
            row, bank = divmod(rest, self._num_banks)
        return DRAMLocation(bank=bank, row=row, col=col)

    def decode_bank_row(self, addr: int) -> "tuple":
        if not 0 <= addr < self._capacity:
            self._check_addr(addr)
        if self._row_shift is not None and self._bank_shift is not None:
            rest = addr >> self._row_shift
            return rest & self._bank_mask, rest >> self._bank_shift
        rest = addr // self._row_bytes
        row, bank = divmod(rest, self._num_banks)
        return bank, row

    def decode_banks_rows(self, addrs) -> "tuple":
        self._check_addrs(addrs)
        if self._row_shift is not None and self._bank_shift is not None:
            rest = addrs >> self._row_shift
            return rest & self._bank_mask, rest >> self._bank_shift
        rest = addrs // self._row_bytes
        return rest % self._num_banks, rest // self._num_banks

    def encode(self, bank: int, row: int, col: int = 0) -> int:
        self._check_location(bank, row, col)
        return (row * self._num_banks + bank) * self._row_bytes + col


class LineInterleavedMapping(AddressMapping):
    """Consecutive cache lines stripe across banks.

    Layout: line ``i`` lives in bank ``i mod num_banks``.  This maximizes
    bank-level parallelism and is the scheme §4.3 assumes for the hash table
    distributed across banks.
    """

    def __init__(self, geometry: DRAMGeometry) -> None:
        super().__init__(geometry)
        self._line_bytes = geometry.line_bytes
        self._lines_per_row = geometry.lines_per_row

    def decode(self, addr: int) -> DRAMLocation:
        if not 0 <= addr < self._capacity:
            self._check_addr(addr)
        line, offset = divmod(addr, self._line_bytes)
        index_in_bank, bank = divmod(line, self._num_banks)
        row, line_in_row = divmod(index_in_bank, self._lines_per_row)
        return DRAMLocation(bank=bank, row=row,
                            col=line_in_row * self._line_bytes + offset)

    def decode_banks_rows(self, addrs) -> "tuple":
        self._check_addrs(addrs)
        line = addrs // self._line_bytes
        return line % self._num_banks, \
            (line // self._num_banks) // self._lines_per_row

    def encode(self, bank: int, row: int, col: int = 0) -> int:
        self._check_location(bank, row, col)
        line_in_row, offset = divmod(col, self._line_bytes)
        index_in_bank = row * self._lines_per_row + line_in_row
        line = index_in_bank * self._num_banks + bank
        return line * self._line_bytes + offset


class XorBankMapping(AddressMapping):
    """Row-interleaved layout with a DRAMA-style XOR bank hash.

    The effective bank is ``raw_bank XOR (row & mask)``; XOR schemes spread
    pathological strides across banks and are what DRAMA-style attacks must
    reverse-engineer [68, 75-78].  Requires a power-of-two bank count.
    """

    def __init__(self, geometry: DRAMGeometry) -> None:
        super().__init__(geometry)
        if geometry.num_banks & (geometry.num_banks - 1) != 0:
            raise ValueError("XorBankMapping requires a power-of-two bank count")
        self._mask = geometry.num_banks - 1

    def decode(self, addr: int) -> DRAMLocation:
        if not 0 <= addr < self._capacity:
            self._check_addr(addr)
        if self._row_shift is not None:
            col = addr & self._col_mask
            rest = addr >> self._row_shift
        else:
            rest, col = divmod(addr, self._row_bytes)
        raw_bank = rest & self._bank_mask
        row = rest >> self._bank_shift
        bank = raw_bank ^ (row & self._mask)
        return DRAMLocation(bank=bank, row=row, col=col)

    def decode_bank_row(self, addr: int) -> "tuple":
        if not 0 <= addr < self._capacity:
            self._check_addr(addr)
        if self._row_shift is not None:
            rest = addr >> self._row_shift
        else:
            rest = addr // self._row_bytes
        raw_bank = rest & self._bank_mask
        row = rest >> self._bank_shift
        return raw_bank ^ (row & self._mask), row

    def decode_banks_rows(self, addrs) -> "tuple":
        self._check_addrs(addrs)
        if self._row_shift is not None:
            rest = addrs >> self._row_shift
        else:
            rest = addrs // self._row_bytes
        raw_bank = rest & self._bank_mask
        rows = rest >> self._bank_shift
        return raw_bank ^ (rows & self._mask), rows

    def encode(self, bank: int, row: int, col: int = 0) -> int:
        self._check_location(bank, row, col)
        raw_bank = bank ^ (row & self._mask)
        return (row * self._num_banks + raw_bank) * self._row_bytes + col


_MAPPINGS = {
    "row": RowInterleavedMapping,
    "line": LineInterleavedMapping,
    "xor": XorBankMapping,
}


def make_mapping(name: str, geometry: DRAMGeometry) -> AddressMapping:
    """Construct a mapping by name: ``row``, ``line``, or ``xor``."""
    try:
        cls = _MAPPINGS[name]
    except KeyError:
        raise ValueError(
            f"unknown mapping {name!r}; choose from {sorted(_MAPPINGS)}"
        ) from None
    return cls(geometry)
