"""A DRAM bank with its row buffer — the shared structure IMPACT exploits.

The row buffer is a one-entry direct-mapped cache inside the bank (§3.1).
Every access is classified as:

- ``HIT`` — target row already open: pay ``tCAS`` only,
- ``EMPTY`` — bank precharged: pay ``tRCD + tCAS``,
- ``CONFLICT`` — another row open: pay ``tRP + tRCD + tCAS``.

Banks also track ``busy_until`` so concurrent requestors (sender/receiver,
attacker/victim, PiM engines) serialize realistically; queuing delay is how
the PuM channel's receiver observes contention (§4.2).

Run-commit contract: the vector backend (:mod:`repro.sim.vector`) classifies
a chained run of accesses against each bank's state arrays and then commits
the final ``open_row`` / ``busy_until`` / ``row_opened_at`` /
``last_activation`` values directly, bypassing :meth:`Bank.access_raw` for
the interior of the run.  It reads the hoisted integer timings
(``_hit_cycles``, ``_empty_cycles``, ``_conflict_cycles``, ``_rp_cycles``,
``_timeout_cycles``) for its latency table, so any change to how this class
derives or mutates per-access state must be mirrored there (the randomized
equivalence tests in ``tests/test_vector_engine.py`` pin the two paths
bit-identical).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.dram.timings import DRAMTimings


class AccessKind(enum.Enum):
    """Row-buffer outcome of a DRAM access."""

    HIT = "hit"
    EMPTY = "empty"
    CONFLICT = "conflict"


@dataclass(slots=True)
class BankAccess:
    """Result of one bank access.

    ``latency`` is measured from the requestor's issue time (``issued``),
    so it includes any queuing delay behind a busy bank; ``service_start``
    is when the bank actually began the operation.  (Slotted: one is
    allocated per DRAM access, squarely on the simulation hot path.)
    """

    kind: AccessKind
    issued: int
    service_start: int
    finish: int
    bank: int
    row: int

    @property
    def latency(self) -> int:
        return self.finish - self.issued

    @property
    def queue_delay(self) -> int:
        return self.service_start - self.issued


@dataclass
class BankStats:
    """Per-bank access counters."""

    hits: int = 0
    empties: int = 0
    conflicts: int = 0
    activations: int = 0
    rowclones: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.empties + self.conflicts

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def record(self, kind: AccessKind) -> None:
        if kind is AccessKind.HIT:
            self.hits += 1
        elif kind is AccessKind.EMPTY:
            self.empties += 1
        else:
            self.conflicts += 1


@dataclass
class Bank:
    """One DRAM bank: row-buffer state machine plus busy-time bookkeeping.

    Run-commit contract: :meth:`access_raw` is the reference transition,
    but the vector engine's bulk committers (``MemoryController.
    access_run`` and the miss engine's span commit in
    :mod:`repro.sim.vector`) write the same state directly — ``open_row``
    and ``busy_until``/``last_activation`` land at the bank's last access
    in the run, ``row_opened_at`` at the service start of the activation
    that opened the surviving row, and ``stats`` counters are added in
    bulk.  A bulk commit must leave every field exactly where a chain of
    ``access_raw`` calls at the same issue times would (the bit-identity
    tests pin this), so any new per-access state added here has to be
    threaded through those committers too.
    """

    index: int
    timings: DRAMTimings
    open_row: Optional[int] = None
    busy_until: int = 0
    last_activation: int = 0
    #: When the currently open row's activation began (tRAS anchor for
    #: explicit precharges); meaningless while ``open_row`` is None.
    row_opened_at: int = 0
    stats: BankStats = field(default_factory=BankStats)

    def __post_init__(self) -> None:
        # The DRAMTimings cycle figures are properties deriving CPU cycles
        # from nanoseconds on every read; hoist them to plain ints once —
        # they sit on the per-access critical path.
        t = self.timings
        self._hit_cycles = t.hit_cycles
        self._empty_cycles = t.empty_cycles
        self._conflict_cycles = t.conflict_cycles
        self._rcd_cycles = t.rcd_cycles
        self._rp_cycles = t.rp_cycles
        self._rowclone_fpm_cycles = t.rowclone_fpm_cycles
        self._timeout_cycles = t.row_timeout_cycles
        self._ras_cycles = t.ras_cycles

    def _effective_row_at(self, service_start: int) -> Optional[int]:
        """Open row as the bank will see it when it services a request at
        ``service_start``, honoring the open-row timeout.

        This is the single source of truth for the timeout: ``classify``,
        ``access_raw``, ``activate`` and ``rowclone_fpm`` all evaluate the
        timeout at the *service* time (``max(issued, busy_until)``), never
        at the caller's issue time — evaluating at issue time made
        ``classify`` predict HIT for requests that queue past the timeout
        and then record CONFLICT.
        """
        row = self.open_row
        if row is not None and self._timeout_cycles > 0 \
                and service_start - self.last_activation > self._timeout_cycles:
            return None
        return row

    def classify(self, row: int, time: int) -> AccessKind:
        """What outcome would an access to ``row`` issued at ``time`` see?

        Pure (no state change), and agrees with what :meth:`access_raw`
        would record for the same issue time: the open-row timeout is
        evaluated at the would-be service start, after any queuing behind
        ``busy_until``.
        """
        busy = self.busy_until
        service_start = time if time >= busy else busy
        current = self._effective_row_at(service_start)
        if current is None:
            return AccessKind.EMPTY
        if current == row:
            return AccessKind.HIT
        return AccessKind.CONFLICT

    def access_raw(self, row: int, issued: int,
                   close_after: bool = False) -> "Tuple[AccessKind, int, int]":
        """Row-buffer state machine core of :meth:`access`.

        Returns ``(kind, service_start, finish)`` without building a
        :class:`BankAccess` — the controller sits on the simulator's
        hottest path and only needs these three fields.
        """
        busy = self.busy_until
        service_start = issued if issued >= busy else busy
        current = self._effective_row_at(service_start)
        stats = self.stats
        if current == row:
            kind = AccessKind.HIT
            latency = self._hit_cycles
            stats.hits += 1
        elif current is None:
            kind = AccessKind.EMPTY
            latency = self._empty_cycles
            stats.empties += 1
            stats.activations += 1
            self.row_opened_at = service_start
        else:
            kind = AccessKind.CONFLICT
            latency = self._conflict_cycles
            stats.conflicts += 1
            stats.activations += 1
            self.row_opened_at = service_start + self._rp_cycles
        finish = service_start + latency
        # Hit or activation alike restart the open-row timeout clock.
        self.last_activation = finish
        if close_after:
            self.open_row = None
            self.busy_until = finish + self._rp_cycles
        else:
            self.open_row = row
            self.busy_until = finish
        return kind, service_start, finish

    def access(self, row: int, issued: int, *, close_after: bool = False) -> BankAccess:
        """Perform a read/write access to ``row`` starting no earlier than
        ``issued``.

        Args:
            row: target DRAM row.
            issued: requestor's issue time (CPU cycles).
            close_after: auto-precharge after the access (closed-row policy,
                the CRP defense of §6); the precharge is hidden — the next
                access sees an ``EMPTY`` bank and never pays ``tRP``.
        """
        kind, service_start, finish = self.access_raw(row, issued, close_after)
        return BankAccess(kind=kind, issued=issued, service_start=service_start,
                          finish=finish, bank=self.index, row=row)

    def activate(self, row: int, issued: int) -> BankAccess:
        """Activate ``row`` without a column access (PiM-style ACT).

        Used by PEI operations that only need the row in the buffer and by
        the covert-channel sender, whose goal is purely to perturb the row
        buffer (§4.1 step 2).
        """
        busy = self.busy_until
        service_start = issued if issued >= busy else busy
        current = self._effective_row_at(service_start)
        stats = self.stats
        if current == row:
            kind = AccessKind.HIT
            latency = 0
            stats.hits += 1
        elif current is None:
            kind = AccessKind.EMPTY
            # Composed from the same rounded per-component figures as
            # access_raw's EMPTY latency (tRCD) so CPU accesses and
            # PiM-style bare ACTs never disagree by a rounding cycle.
            latency = self._rcd_cycles
            stats.empties += 1
            stats.activations += 1
            self.row_opened_at = service_start
        else:
            kind = AccessKind.CONFLICT
            latency = self._rp_cycles + self._rcd_cycles
            stats.conflicts += 1
            stats.activations += 1
            self.row_opened_at = service_start + self._rp_cycles
        finish = service_start + latency
        self.open_row = row
        self.busy_until = finish
        self.last_activation = finish
        return BankAccess(kind=kind, issued=issued, service_start=service_start,
                          finish=finish, bank=self.index, row=row)

    def rowclone_fpm(self, src_row: int, dst_row: int, issued: int, *,
                     rows_per_subarray: Optional[int] = None,
                     lines_per_row: int = 128) -> BankAccess:
        """In-bank RowClone copy [52]: Fast Parallel Mode when source and
        destination share a subarray, Pipelined Serial Mode otherwise.

        FPM issues ACT(src) then ACT(dst) back-to-back; if a different row
        is open the bank must first precharge, which is the latency
        difference the PuM receiver decodes (§4.2).  PSM streams the row
        over the internal bus line by line — roughly 10x slower.  Leaves
        ``dst`` open either way.
        """
        service_start = max(issued, self.busy_until)
        kind = self.classify(src_row, service_start)
        fpm_possible = (rows_per_subarray is None
                        or (src_row // rows_per_subarray
                            == dst_row // rows_per_subarray))
        if fpm_possible:
            latency = self._rowclone_fpm_cycles
        else:
            latency = self.timings.rowclone_psm_cycles(lines_per_row)
        if kind is AccessKind.CONFLICT:
            latency += self._rp_cycles
            self.row_opened_at = service_start + self._rp_cycles
        else:
            self.row_opened_at = service_start
        finish = service_start + latency
        self.open_row = dst_row
        self.busy_until = finish
        self.last_activation = finish
        self.stats.record(kind)
        self.stats.rowclones += 1
        self.stats.activations += 2
        return BankAccess(kind=kind, issued=issued, service_start=service_start,
                          finish=finish, bank=self.index, row=dst_row)

    def precharge(self, issued: int) -> int:
        """Explicitly close the open row; returns the finish time.

        An explicit PRE command cannot begin until the open row has been
        active for ``tRAS`` — the activation must finish restoring the
        cells before the row closes.  (Implicit conflict precharges and
        the closed-row policy's auto-precharge keep their tRP-only model:
        with the default timings their earliest possible issue already
        satisfies tRAS, and the figure baselines pin that behaviour.)
        """
        service_start = max(issued, self.busy_until)
        if self.open_row is None:
            return service_start
        earliest = self.row_opened_at + self._ras_cycles
        if service_start < earliest:
            service_start = earliest
        finish = service_start + self._rp_cycles
        self.open_row = None
        self.busy_until = finish
        return finish

    def apply_refresh(self, until: int) -> None:
        """Model a refresh: the bank is busy and its row buffer is closed."""
        self.busy_until = max(self.busy_until, until)
        self.open_row = None

    def snapshot_state(self) -> tuple:
        """Copied row-buffer state + counters (for warm-state snapshots)."""
        s = self.stats
        return (self.open_row, self.busy_until, self.last_activation,
                self.row_opened_at,
                (s.hits, s.empties, s.conflicts, s.activations, s.rowclones))

    def restore_state(self, state: tuple) -> None:
        (self.open_row, self.busy_until, self.last_activation,
         self.row_opened_at, counters) = state
        self.stats = BankStats(*counters)

    def snapshot(self) -> Dict[str, object]:
        """Debug/telemetry snapshot of bank state."""
        return {
            "index": self.index,
            "open_row": self.open_row,
            "busy_until": self.busy_until,
            "hits": self.stats.hits,
            "empties": self.stats.empties,
            "conflicts": self.stats.conflicts,
        }
