"""Memory controller: request path, row policies, and the §6 defenses.

The controller is the single entry point for every DRAM request — demand
misses from the cache hierarchy, PEI operations dispatched to near-bank
compute units, RowClone bulk operations, DMA traffic, and page-table walks.
It implements:

- the **open-row** policy (baseline, with optional timeout — Table 2),
- the **closed-row policy** defense (CRP, §6),
- **constant-time DRAM access** defense (CTD, §6),
- **bank-level memory partitioning** defense (MPR, §6),
- the **atomic multi-bank RowClone** transaction the PuM threat model
  guarantees (§5.1: all bank-level RowClones complete before another DRAM
  operation is executed).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dram.address import AddressMapping, DRAMGeometry, DRAMLocation, make_mapping
from repro.dram.bank import AccessKind, Bank, BankAccess
from repro.dram.device import DRAMDevice
from repro.dram.timings import DRAMTimings
from repro.obs import current_observer

_vector = None


def _vector_module():
    """Import :mod:`repro.sim.vector` on first run call (lazy so this
    module never pulls the sim package in at import time)."""
    global _vector
    if _vector is None:
        from repro.sim import vector as _vector_mod

        _vector = _vector_mod
    return _vector


class RowPolicy(enum.Enum):
    """Row-buffer management policy."""

    OPEN = "open"
    CLOSED = "closed"


class PartitionViolationError(PermissionError):
    """An access crossed a bank-partition boundary (MPR defense, §6)."""


@dataclass(frozen=True)
class MemoryControllerConfig:
    """Controller configuration.

    Attributes:
        geometry: DRAM shape (banks, rows, row size).
        timings: DDR timing parameters.
        mapping: address mapping scheme name (``row``/``line``/``xor``).
        row_policy: open-row baseline or closed-row defense (CRP).
        constant_time: constant-time DRAM access defense (CTD); every access
            returns after the worst-case latency.
        queue_cycles: fixed command/bus overhead added to each request
            (command queueing, off-chip link crossing).
        refresh_enabled: model periodic refresh as a noise source.
    """

    geometry: DRAMGeometry = field(default_factory=DRAMGeometry)
    timings: DRAMTimings = field(default_factory=DRAMTimings)
    mapping: str = "row"
    row_policy: RowPolicy = RowPolicy.OPEN
    constant_time: bool = False
    queue_cycles: int = 4
    refresh_enabled: bool = False

    def __post_init__(self) -> None:
        if self.queue_cycles < 0:
            raise ValueError("queue_cycles must be >= 0")


@dataclass(slots=True)
class MemoryResult:
    """Outcome of a controller-level memory operation.

    ``latency`` is from the requestor's issue time and includes queuing,
    command overhead, and (under CTD) the constant-time padding.
    (Slotted: allocated once per DRAM request, on the hot path.)
    """

    kind: AccessKind
    issued: int
    finish: int
    location: DRAMLocation

    @property
    def latency(self) -> int:
        return self.finish - self.issued

    @property
    def bank(self) -> int:
        return self.location.bank

    @property
    def row(self) -> int:
        return self.location.row


@dataclass
class RequestorStats:
    """Per-requestor counters (used by detection/forensics analyses)."""

    reads: int = 0
    writes: int = 0
    activates: int = 0
    rowclones: int = 0
    hits: int = 0
    conflicts: int = 0


class MemoryController:
    """Single-channel DDR controller over a :class:`DRAMDevice`."""

    def __init__(self, config: Optional[MemoryControllerConfig] = None) -> None:
        self.config = config or MemoryControllerConfig()
        self.device = DRAMDevice(self.config.geometry, self.config.timings,
                                 refresh_enabled=self.config.refresh_enabled)
        self.mapper: AddressMapping = make_mapping(self.config.mapping,
                                                   self.config.geometry)
        self._partition: Dict[int, str] = {}
        self._locked_until = 0
        self.requestor_stats: Dict[str, RequestorStats] = {}
        # Per-request constants hoisted out of the request path.
        self._queue_cycles = self.config.queue_cycles
        self._close_after = self.config.row_policy is RowPolicy.CLOSED
        self._constant_time = self.config.constant_time
        self._refresh_enabled = self.config.refresh_enabled
        # Observability hook (repro.obs): None = off, and every hook site
        # is guarded by `if obs is not None`, so the default request path
        # pays one attribute load + branch.
        self._obs = None
        obs = current_observer()
        if obs is not None:
            self.set_observer(obs)

    def set_observer(self, observer) -> None:
        """Attach a :class:`repro.obs.Observer` (tracer and/or sanitizer);
        ``None`` detaches."""
        self._obs = observer
        if observer is not None:
            observer.bind_device(self.device)

    # ------------------------------------------------------------------
    # Partitioning (MPR defense)
    # ------------------------------------------------------------------

    def partition_banks(self, owner: str, banks: Sequence[int]) -> None:
        """Assign ``banks`` exclusively to ``owner`` (MPR defense, §6).

        Once any bank is partitioned, accesses to partitioned banks by any
        other requestor raise :class:`PartitionViolationError`.
        """
        for bank in banks:
            if not 0 <= bank < self.config.geometry.num_banks:
                raise ValueError(f"bank {bank} out of range")
            existing = self._partition.get(bank)
            if existing is not None and existing != owner:
                raise ValueError(f"bank {bank} already owned by {existing!r}")
            self._partition[bank] = owner

    def clear_partitions(self) -> None:
        """Remove all bank-partition assignments."""
        self._partition.clear()

    @property
    def partitioning_active(self) -> bool:
        return bool(self._partition)

    def _check_partition(self, bank: int, requestor: str) -> None:
        owner = self._partition.get(bank)
        if owner is not None and owner != requestor:
            raise PartitionViolationError(
                f"requestor {requestor!r} accessed bank {bank} owned by {owner!r}"
            )

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------

    def _stats_for(self, requestor: str) -> RequestorStats:
        stats = self.requestor_stats.get(requestor)
        if stats is None:
            stats = RequestorStats()
            self.requestor_stats[requestor] = stats
        return stats

    def _begin(self, bank_index: int, issued: int, requestor: str) -> int:
        """Common entry: partition check, queueing, atomic-lock, refresh."""
        if self._partition:
            self._check_partition(bank_index, requestor)
        start = issued + self._queue_cycles
        locked = self._locked_until
        if start < locked:
            start = locked
        if self._refresh_enabled:
            self._refresh_service_start(bank_index, start)
        return start

    def _refresh_service_start(self, bank_index: int, start: int) -> None:
        """Apply any refresh window covering the request's *service* start.

        The window must be evaluated where the bank will actually service
        the request — ``max(start, busy_until)`` — not at the post-queue
        time ``start``: a request delayed behind a busy bank into a later
        refresh window would otherwise never observe that refresh.
        Applying a refresh pushes ``busy_until`` to the window's end, so
        the re-check loops until the service time lands outside every
        window (at most once more per tREFI period crossed).
        """
        device = self.device
        bank = device.banks[bank_index]
        obs = self._obs
        while True:
            busy = bank.busy_until
            service = start if start >= busy else busy
            window_end = device.refresh_window(bank_index, service)
            if window_end == service:
                return
            if obs is not None:
                obs.on_refresh(bank_index, service, window_end, bank)

    def access(self, addr: int, issued: int, *, requestor: str = "cpu",
               is_write: bool = False) -> MemoryResult:
        """Read or write one DRAM word at physical address ``addr``."""
        loc = self.mapper.decode(addr)
        kind, finish = self._access_core(loc.bank, loc.row, issued,
                                         requestor, is_write)
        return MemoryResult(kind=kind, issued=issued, finish=finish,
                            location=loc)

    def access_location(self, loc: DRAMLocation, issued: int, *,
                        requestor: str = "cpu",
                        is_write: bool = False) -> MemoryResult:
        """Access a pre-decoded DRAM location (fast path for PiM engines)."""
        kind, finish = self._access_core(loc.bank, loc.row, issued,
                                         requestor, is_write)
        return MemoryResult(kind=kind, issued=issued, finish=finish,
                            location=loc)

    def access_finish(self, addr: int, issued: int, *, requestor: str = "cpu",
                      is_write: bool = False) -> int:
        """Like :meth:`access` but returns only the finish time.

        Identical state evolution and statistics; skips the
        :class:`DRAMLocation`/:class:`MemoryResult` construction.  Used by
        fire-and-forget internal traffic — prefetch fills and cache
        write-backs — where the caller only needs the completion time.
        """
        bank_index, row = self.mapper.decode_bank_row(addr)
        _kind, finish = self._access_core(bank_index, row, issued,
                                          requestor, is_write)
        return finish

    def access_run(self, addrs, issued: int, *, requestor: str = "cpu",
                   is_write: bool = False, collect_latencies: bool = False,
                   backend: Optional[str] = None) -> "tuple":
        """Back-to-back chained accesses: each element is issued at the
        previous element's finish.  Returns ``(finish, latencies)``;
        ``latencies`` is None unless ``collect_latencies``.

        Equivalent to::

            now = issued
            for addr in addrs:
                result = self.access(addr, now, requestor=..., is_write=...)
                now = result.finish

        ``backend`` mirrors :meth:`CacheHierarchy.access_batch`: auto
        (None) engages the numpy run engine (:mod:`repro.sim.vector`) for
        large runs when no observer is attached *and* no defense needs
        per-request arbitration — closed-row and constant-time always
        take the reference path (so every sanitizer invariant holds
        unchanged), while refresh windows and partition boundaries
        *split* runs inside the engine: the clean prefix commits in bulk
        and the boundary element runs through the reference path, which
        applies the refresh or raises the partition error exactly.
        """
        vector = _vector_module()
        eligible = not self._close_after and not self._constant_time
        if eligible and not hasattr(addrs, "__len__"):
            addrs = list(addrs)
        choice = (vector.resolve_backend(backend, len(addrs), self._obs)
                  if eligible else "scalar")
        if not eligible and backend == "vector":
            # Still surface a missing numpy loudly; an ineligible config
            # then falls back like an attached observer does.
            vector.require_numpy()
        if choice == "vector":
            return vector.controller_run_vector(
                self, addrs, issued, requestor=requestor,
                is_write=is_write, collect_latencies=collect_latencies)
        latencies: Optional[List[int]] = [] if collect_latencies else None
        now = issued
        for addr in addrs:
            result = self.access(addr, now, requestor=requestor,
                                 is_write=is_write)
            if latencies is not None:
                latencies.append(result.latency)
            now = result.finish
        return now, latencies

    def _access_core(self, bank_index: int, row: int, issued: int,
                     requestor: str, is_write: bool) -> "tuple":
        """Shared request path: returns ``(kind, finish)``.

        :meth:`_begin` is inlined here — this method runs once per DRAM
        request and the extra call frame showed up in profiles.
        """
        if self._partition:
            self._check_partition(bank_index, requestor)
        start = issued + self._queue_cycles
        locked = self._locked_until
        if start < locked:
            start = locked
        if self._refresh_enabled:
            self._refresh_service_start(bank_index, start)
        bank = self.device.banks[bank_index]
        obs = self._obs
        predicted = bank.classify(row, start) if obs is not None else None
        kind, service_start, finish = bank.access_raw(row, start,
                                                      self._close_after)
        if self._constant_time:
            finish = self._constant_time_finish(service_start, bank)
        if obs is not None:
            obs.on_dram_access("WR" if is_write else "RD", bank_index, row,
                               kind, requestor, issued, start, service_start,
                               finish, predicted, bank)
        stats = self.requestor_stats.get(requestor)
        if stats is None:
            stats = self._stats_for(requestor)
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        if kind is AccessKind.HIT:
            stats.hits += 1
        elif kind is AccessKind.CONFLICT:
            stats.conflicts += 1
        return kind, finish

    def activate(self, bank_index: int, row: int, issued: int, *,
                 requestor: str = "cpu") -> MemoryResult:
        """Row activation without column access (PiM sender primitive)."""
        start = self._begin(bank_index, issued, requestor)
        bank = self.device.banks[bank_index]
        obs = self._obs
        predicted = bank.classify(row, start) if obs is not None else None
        result = bank.activate(row, start)
        finish = result.finish
        if self._constant_time:
            finish = self._constant_time_finish(result.service_start, bank)
        if obs is not None:
            obs.on_dram_access("ACT", bank_index, row, result.kind, requestor,
                               issued, start, result.service_start, finish,
                               predicted, bank)
        if self._close_after:
            # Under CRP the controller immediately precharges again.
            self._precharge_observed(bank, finish, obs)
        stats = self._stats_for(requestor)
        stats.activates += 1
        if result.kind is AccessKind.CONFLICT:
            stats.conflicts += 1
        loc = DRAMLocation(bank=bank_index, row=row, col=0)
        return MemoryResult(kind=result.kind, issued=issued, finish=finish,
                            location=loc)

    def _precharge_observed(self, bank: Bank, issued: int, obs) -> int:
        """Explicit PRE via :meth:`Bank.precharge`, reported to the
        observer (the sanitizer's tRAS check anchors on the pre-PRE
        ``row_opened_at``)."""
        if obs is None:
            return bank.precharge(issued)
        had_row = bank.open_row is not None
        opened_at = bank.row_opened_at
        finish = bank.precharge(issued)
        service_start = finish - self.config.timings.rp_cycles if had_row \
            else finish
        obs.on_precharge(bank.index, issued, service_start, finish,
                         opened_at, had_row, bank)
        return finish

    def _constant_time_finish(self, service_start: int, bank: Bank,
                              occupancy: Optional[int] = None) -> int:
        """CTD: every DRAM access takes exactly the worst-case latency (§6).

        The access occupies the bank for the full worst-case window — a
        leak-free constant-time controller cannot let a fast (row-hit)
        access free the bank early, or queueing delays would re-expose the
        very timing difference the defense removes."""
        t = self.config.timings
        window = occupancy if occupancy is not None else t.conflict_cycles
        finish = service_start + window
        bank.busy_until = max(bank.busy_until, finish)
        return finish

    # ------------------------------------------------------------------
    # RowClone (PuM substrate entry point)
    # ------------------------------------------------------------------

    def rowclone(self, src_addr: int, dst_addr: int, mask: int, issued: int, *,
                 requestor: str = "pim") -> List[MemoryResult]:
        """Masked multi-bank RowClone (§4.2).

        ``src_addr``/``dst_addr`` name row-aligned ranges that span all
        banks at the same row index; bit ``b`` of ``mask`` selects whether
        bank ``b`` performs the in-bank copy.  All selected bank-level
        copies run in parallel, and the transaction is atomic: the
        controller accepts no other DRAM operation until every bank-level
        copy completes (threat model, §5.1).

        Returns one :class:`MemoryResult` per selected bank (ascending bank
        order); an empty mask yields an empty list and no lock.
        """
        if mask < 0:
            raise ValueError("mask must be non-negative")
        num_banks = self.config.geometry.num_banks
        if mask >> num_banks:
            raise ValueError(f"mask selects banks beyond {num_banks}")
        src = self.mapper.decode(src_addr)
        dst = self.mapper.decode(dst_addr)
        results: List[MemoryResult] = []
        latest = issued
        stats = self._stats_for(requestor)
        for bank_index in range(num_banks):
            if not (mask >> bank_index) & 1:
                continue
            start = self._begin(bank_index, issued, requestor)
            bank = self.device.bank(bank_index)
            geom = self.config.geometry
            obs = self._obs
            predicted = bank.classify(src.row, start) if obs is not None \
                else None
            access = bank.rowclone_fpm(
                src.row, dst.row, start,
                rows_per_subarray=geom.rows_per_subarray,
                lines_per_row=geom.lines_per_row)
            finish = access.finish
            if self.config.constant_time:
                t = self.config.timings
                finish = self._constant_time_finish(
                    access.service_start, bank,
                    occupancy=t.rowclone_fpm_cycles + t.rp_cycles)
            if obs is not None:
                obs.on_rowclone(bank_index, src.row, dst.row, access.kind,
                                issued, access.service_start, finish,
                                requestor, predicted, bank)
            if self.config.row_policy is RowPolicy.CLOSED:
                self._precharge_observed(bank, finish, obs)
            stats.rowclones += 1
            if access.kind is AccessKind.CONFLICT:
                stats.conflicts += 1
            loc = DRAMLocation(bank=bank_index, row=dst.row, col=0)
            results.append(MemoryResult(kind=access.kind, issued=issued,
                                        finish=finish, location=loc))
            latest = max(latest, finish)
        if results:
            self._locked_until = max(self._locked_until, latest)
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def address_of(self, bank: int, row: int, col: int = 0) -> int:
        """Craft the physical address of (bank, row, col) — the attacker's
        memory-massaging primitive (§4.1)."""
        return self.mapper.encode(bank, row, col)

    def snapshot_state(self) -> dict:
        """Copied controller + bank state for warm-state snapshots."""
        return {
            "banks": [bank.snapshot_state() for bank in self.device.banks],
            "locked_until": self._locked_until,
            "refresh_epoch": self.device.refresh_epoch,
            "partition": dict(self._partition),
            "requestor_stats": {
                name: (s.reads, s.writes, s.activates, s.rowclones,
                       s.hits, s.conflicts)
                for name, s in self.requestor_stats.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        banks = self.device.banks
        saved = state["banks"]
        if len(saved) != len(banks):
            raise ValueError("snapshot bank count mismatch")
        for bank, bank_state in zip(banks, saved):
            bank.restore_state(bank_state)
        self._locked_until = state["locked_until"]
        self.device.refresh_epoch = state.get("refresh_epoch", 0)
        self._partition = dict(state["partition"])
        self.requestor_stats = {
            name: RequestorStats(*vals)
            for name, vals in state["requestor_stats"].items()
        }
        if self._obs is not None:
            self._obs.on_clock_reset("restore")

    def reset_stats(self) -> None:
        """Zero per-requestor and per-bank counters; device state is kept."""
        self.requestor_stats.clear()
        self.device.reset_stats()

    def rebase_time(self) -> None:
        """Zero the device's clocks (see :meth:`DRAMDevice.rebase_time`);
        the discarded warm-up time folds into the device's refresh epoch."""
        now = max(self._locked_until,
                  max((b.busy_until for b in self.device.banks), default=0))
        self.device.rebase_time(now)
        self._locked_until = 0
        if self._obs is not None:
            self._obs.on_clock_reset("rebase")

    def open_rows(self) -> List[Optional[int]]:
        """Currently open row per bank (None = precharged)."""
        return [bank.open_row for bank in self.device.banks]

    @property
    def num_banks(self) -> int:
        return self.config.geometry.num_banks
