"""A DRAM device: the collection of banks behind one memory channel."""

from __future__ import annotations

from typing import Iterator, List

from repro.dram.address import DRAMGeometry
from repro.dram.bank import Bank
from repro.dram.timings import DRAMTimings


class DRAMDevice:
    """Owns the banks and the (optional) staggered refresh schedule.

    Refresh is a background noise source: while a bank refreshes, its row
    buffer closes and accesses queue behind it.  The paper's simulations
    include such noise sources (§5.1); refresh is disabled by default and
    enabled by noise-sensitive experiments.
    """

    def __init__(self, geometry: DRAMGeometry, timings: DRAMTimings,
                 refresh_enabled: bool = False) -> None:
        self.geometry = geometry
        self.timings = timings
        self.refresh_enabled = refresh_enabled
        self.banks: List[Bank] = [
            Bank(index=i, timings=timings) for i in range(geometry.num_banks)
        ]

    def __len__(self) -> int:
        return len(self.banks)

    def __iter__(self) -> Iterator[Bank]:
        return iter(self.banks)

    def bank(self, index: int) -> Bank:
        """Bank by flat index (0 .. num_banks-1)."""
        return self.banks[index]

    def refresh_window(self, bank_index: int, time: int) -> int:
        """If ``time`` falls inside the bank's refresh window, return the
        window's end; otherwise return ``time`` unchanged.

        DDR4-style all-bank refresh: every ``tREFI`` each *rank* refreshes
        for ``tRFC`` (all of its banks at once); ranks are staggered so
        the channel is never fully blocked.
        """
        if not self.refresh_enabled:
            return time
        t = self.timings
        period = t.refi_cycles
        rank = bank_index // self.geometry.banks_per_rank
        stagger = (rank * period) // max(1, self.geometry.ranks)
        phase = (time - stagger) % period
        if phase < t.rfc_cycles:
            window_end = time + (t.rfc_cycles - phase)
            self.banks[bank_index].apply_refresh(window_end)
            return window_end
        return time

    def reset_stats(self) -> None:
        """Zero all per-bank counters (keeps row-buffer state)."""
        for bank in self.banks:
            bank.stats.__init__()

    def rebase_time(self) -> None:
        """Reset all banks' busy/activation clocks to zero while keeping
        row-buffer contents — lets a measured replay start at t=0 after a
        warm-up pass ran to a large virtual time."""
        for bank in self.banks:
            bank.busy_until = 0
            bank.last_activation = 0

    def total_activations(self) -> int:
        return sum(b.stats.activations for b in self.banks)
