"""A DRAM device: the collection of banks behind one memory channel."""

from __future__ import annotations

from typing import Iterator, List

from repro.dram.address import DRAMGeometry
from repro.dram.bank import Bank
from repro.dram.timings import DRAMTimings


class DRAMDevice:
    """Owns the banks and the (optional) staggered refresh schedule.

    Refresh is a background noise source: while a bank refreshes, its row
    buffer closes and accesses queue behind it.  The paper's simulations
    include such noise sources (§5.1); refresh is disabled by default and
    enabled by noise-sensitive experiments.
    """

    def __init__(self, geometry: DRAMGeometry, timings: DRAMTimings,
                 refresh_enabled: bool = False) -> None:
        self.geometry = geometry
        self.timings = timings
        self.refresh_enabled = refresh_enabled
        #: Offset added to the local clock when computing refresh phases.
        #: The refresh schedule is a function of *absolute* time; rebasing
        #: the clocks to zero after a warm-up pass (or restoring a snapshot
        #: taken at large t) must not silently shift every rank's stagger,
        #: so the discarded time accumulates here (mod tREFI).
        self.refresh_epoch = 0
        self.banks: List[Bank] = [
            Bank(index=i, timings=timings) for i in range(geometry.num_banks)
        ]

    def __len__(self) -> int:
        return len(self.banks)

    def __iter__(self) -> Iterator[Bank]:
        return iter(self.banks)

    def bank(self, index: int) -> Bank:
        """Bank by flat index (0 .. num_banks-1)."""
        return self.banks[index]

    def refresh_window(self, bank_index: int, time: int) -> int:
        """If ``time`` falls inside the bank's refresh window, return the
        window's end; otherwise return ``time`` unchanged.

        DDR4-style all-bank refresh: every ``tREFI`` each *rank* refreshes
        for ``tRFC`` (all of its banks at once); ranks are staggered so
        the channel is never fully blocked.
        """
        if not self.refresh_enabled:
            return time
        phase = self._refresh_phase(bank_index, time)
        if phase < self.timings.rfc_cycles:
            window_end = time + (self.timings.rfc_cycles - phase)
            self.banks[bank_index].apply_refresh(window_end)
            return window_end
        return time

    def _refresh_phase(self, bank_index: int, time: int) -> int:
        """Position of ``time`` within the bank's rank's refresh period,
        in absolute-schedule terms (``refresh_epoch`` undoes clock
        rebases)."""
        period = self.timings.refi_cycles
        rank = bank_index // self.geometry.banks_per_rank
        stagger = (rank * period) // max(1, self.geometry.ranks)
        return (time + self.refresh_epoch - stagger) % period

    def in_refresh_window(self, bank_index: int, time: int) -> bool:
        """Pure predicate: does ``time`` fall inside the bank's refresh
        window?  Unlike :meth:`refresh_window` this never mutates bank
        state — the sanitizer uses it to audit serviced requests."""
        if not self.refresh_enabled:
            return False
        return self._refresh_phase(bank_index, time) < self.timings.rfc_cycles

    def reset_stats(self) -> None:
        """Zero all per-bank counters (keeps row-buffer state)."""
        for bank in self.banks:
            bank.stats.__init__()

    def rebase_time(self, now: int = None) -> None:
        """Reset all banks' busy/activation clocks to zero while keeping
        row-buffer contents — lets a measured replay start at t=0 after a
        warm-up pass ran to a large virtual time.

        ``now`` is the virtual time being discarded (defaults to the
        latest bank clock); it folds into :attr:`refresh_epoch` so the
        staggered refresh schedule continues from where the warm-up left
        it instead of restarting at phase zero.
        """
        if self.refresh_enabled:
            if now is None:
                now = max((bank.busy_until for bank in self.banks),
                          default=0)
            period = self.timings.refi_cycles
            self.refresh_epoch = (self.refresh_epoch + now) % period
        for bank in self.banks:
            bank.busy_until = 0
            bank.last_activation = 0
            bank.row_opened_at = 0

    def total_activations(self) -> int:
        return sum(b.stats.activations for b in self.banks)
