"""Memory-controller request scheduling: FCFS vs FR-FCFS.

The main request path (:class:`repro.dram.controller.MemoryController`)
models banks as timestamped resources with in-order service per bank —
sufficient for the row-buffer channels, whose requestors self-serialize.
This module adds the *scheduler* dimension for workload studies: given a
request trace, it computes per-request service under

- **FCFS** — oldest request first, and
- **FR-FCFS** [108] — row-hit-first, then oldest: the policy that makes
  the open-row organization pay, and the very reordering that lets one
  process's row state modulate another's latency (the §3.1 channel, and
  the memory-performance-attack surface of [77]).

A shared data bus (one burst per request) is modeled so bank-level
parallelism saturates realistically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dram.address import DRAMGeometry
from repro.dram.bank import AccessKind
from repro.dram.timings import DRAMTimings


class SchedulingPolicy(enum.Enum):
    FCFS = "fcfs"
    FRFCFS = "frfcfs"


@dataclass(frozen=True)
class Request:
    """One DRAM request presented to the scheduler."""

    arrival: int
    bank: int
    row: int
    is_write: bool = False
    requestor: str = "cpu"

    def __post_init__(self) -> None:
        if self.arrival < 0 or self.bank < 0 or self.row < 0:
            raise ValueError("arrival, bank, and row must be >= 0")


@dataclass(frozen=True)
class ScheduledRequest:
    """Scheduler outcome for one request."""

    request: Request
    service_start: int
    finish: int
    kind: AccessKind

    @property
    def latency(self) -> int:
        return self.finish - self.request.arrival

    @property
    def queue_delay(self) -> int:
        return self.service_start - self.request.arrival


@dataclass
class ScheduleStats:
    """Aggregate outcome of scheduling a trace."""

    scheduled: List[ScheduledRequest]

    @property
    def count(self) -> int:
        return len(self.scheduled)

    @property
    def mean_latency(self) -> float:
        if not self.scheduled:
            return 0.0
        return sum(s.latency for s in self.scheduled) / self.count

    @property
    def row_hit_rate(self) -> float:
        if not self.scheduled:
            return 0.0
        hits = sum(1 for s in self.scheduled if s.kind is AccessKind.HIT)
        return hits / self.count

    @property
    def makespan(self) -> int:
        if not self.scheduled:
            return 0
        return max(s.finish for s in self.scheduled)

    def latency_of(self, requestor: str) -> float:
        mine = [s.latency for s in self.scheduled
                if s.request.requestor == requestor]
        return sum(mine) / len(mine) if mine else 0.0


class RequestScheduler:
    """Cycle-stepped scheduler over per-bank queues and a shared bus.

    ``window`` bounds how deep into the queue FR-FCFS may look for a row
    hit (real controllers have finite scheduling windows).
    """

    BUS_BURST_CYCLES = 4  # tBL at DDR4-2400 behind a 2.6 GHz clock

    def __init__(self, geometry: DRAMGeometry, timings: DRAMTimings,
                 policy: SchedulingPolicy = SchedulingPolicy.FRFCFS,
                 window: int = 16) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.geometry = geometry
        self.timings = timings
        self.policy = policy
        self.window = window

    def schedule(self, requests: Sequence[Request]) -> ScheduleStats:
        """Service the whole trace; returns per-request outcomes."""
        for request in requests:
            if request.bank >= self.geometry.num_banks:
                raise ValueError(f"bank {request.bank} out of range")
        pending: List[Request] = sorted(requests, key=lambda r: r.arrival)
        open_rows: Dict[int, Optional[int]] = {}
        bank_ready: Dict[int, int] = {}
        bus_ready = 0
        now = 0
        out: List[ScheduledRequest] = []
        t = self.timings
        while pending:
            arrived = [r for r in pending if r.arrival <= now]
            if not arrived:
                now = pending[0].arrival
                continue
            candidates = arrived[:self.window]
            chosen = self._pick(candidates, open_rows, bank_ready, now)
            if chosen is None:
                # every candidate's bank is busy: advance to the earliest
                # bank-ready or next-arrival instant.
                horizon = [bank_ready.get(r.bank, 0) for r in candidates]
                later = [r.arrival for r in pending if r.arrival > now]
                now = min(x for x in (horizon + later) if x > now)
                continue
            pending.remove(chosen)
            start = max(now, chosen.arrival, bank_ready.get(chosen.bank, 0))
            current = open_rows.get(chosen.bank)
            if current is None:
                kind = AccessKind.EMPTY
                latency = t.empty_cycles
            elif current == chosen.row:
                kind = AccessKind.HIT
                latency = t.hit_cycles
            else:
                kind = AccessKind.CONFLICT
                latency = t.conflict_cycles
            data_time = max(start + latency, bus_ready + self.BUS_BURST_CYCLES)
            bus_ready = data_time
            open_rows[chosen.bank] = chosen.row
            bank_ready[chosen.bank] = data_time
            out.append(ScheduledRequest(request=chosen, service_start=start,
                                        finish=data_time, kind=kind))
            now = max(now, start)
        out.sort(key=lambda s: (s.request.arrival, s.service_start))
        return ScheduleStats(scheduled=out)

    def _pick(self, candidates: List[Request],
              open_rows: Dict[int, Optional[int]],
              bank_ready: Dict[int, int], now: int) -> Optional[Request]:
        ready = [r for r in candidates if bank_ready.get(r.bank, 0) <= now]
        if not ready:
            return None
        if self.policy is SchedulingPolicy.FRFCFS:
            for request in ready:  # arrival order: first-ready row hit
                if open_rows.get(request.bank) == request.row:
                    return request
        return ready[0]  # oldest


def requests_from_refs(refs, geometry: DRAMGeometry, mapping,
                       arrival_gap: int = 20,
                       requestor: str = "cpu") -> List[Request]:
    """Turn a :class:`MemoryRef` stream into scheduler requests arriving
    at a fixed cadence (a bandwidth-bound core's miss stream)."""
    requests: List[Request] = []
    capacity = geometry.capacity_bytes
    for i, ref in enumerate(refs):
        loc = mapping.decode(ref.addr % capacity)
        requests.append(Request(arrival=i * arrival_gap, bank=loc.bank,
                                row=loc.row, is_write=ref.is_write,
                                requestor=requestor))
    return requests
