"""DRAM timing parameters and derived CPU-cycle latencies.

Defaults follow Table 2 of the paper: DDR4-2400 with
``tRCD = tRP = tCAS = 13.5 ns`` behind a 2.6 GHz CPU, which yields the
~74-cycle row-conflict-over-hit gap reported in §3.1 (a conflict pays
``tRP + tRCD`` on top of a hit's ``tCAS``: 27 ns ≈ 70 CPU cycles, plus
command overheads).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DRAMTimings:
    """DRAM timing parameters (nanoseconds) and the CPU clock that observes
    them.

    Attributes:
        cpu_ghz: host CPU frequency; all cycle figures are CPU cycles.
        t_rcd_ns: ACT-to-READ/WRITE delay (row activation).
        t_rp_ns: precharge delay (closing a row).
        t_cas_ns: READ command to data (column access, includes burst).
        t_ras_ns: minimum row-open time (ACT to PRE); bounds RowClone's
            back-to-back activation interval.
        t_refi_ns: average refresh interval (per refresh command).
        t_rfc_ns: refresh cycle time (bank unavailable while refreshing).
        row_timeout_ns: open-row policy timeout; ``0`` disables the timeout
            (rows stay open until a conflicting activation).
    """

    cpu_ghz: float = 2.6
    t_rcd_ns: float = 13.5
    t_rp_ns: float = 13.5
    t_cas_ns: float = 13.5
    t_ras_ns: float = 32.0
    t_refi_ns: float = 7800.0
    t_rfc_ns: float = 350.0
    row_timeout_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.cpu_ghz <= 0:
            raise ValueError("cpu_ghz must be positive")
        for field_name in ("t_rcd_ns", "t_rp_ns", "t_cas_ns", "t_ras_ns",
                           "t_refi_ns", "t_rfc_ns"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if self.row_timeout_ns < 0:
            raise ValueError("row_timeout_ns must be >= 0")

    def ns_to_cycles(self, ns: float) -> int:
        """Convert nanoseconds to (rounded) CPU cycles."""
        return int(round(ns * self.cpu_ghz))

    @property
    def rcd_cycles(self) -> int:
        """Row activation latency in CPU cycles."""
        return self.ns_to_cycles(self.t_rcd_ns)

    @property
    def rp_cycles(self) -> int:
        """Precharge latency in CPU cycles."""
        return self.ns_to_cycles(self.t_rp_ns)

    @property
    def cas_cycles(self) -> int:
        """Column access latency in CPU cycles."""
        return self.ns_to_cycles(self.t_cas_ns)

    @property
    def ras_cycles(self) -> int:
        """Minimum row-open time in CPU cycles."""
        return self.ns_to_cycles(self.t_ras_ns)

    @property
    def refi_cycles(self) -> int:
        """Refresh interval in CPU cycles."""
        return self.ns_to_cycles(self.t_refi_ns)

    @property
    def rfc_cycles(self) -> int:
        """Refresh cycle time in CPU cycles."""
        return self.ns_to_cycles(self.t_rfc_ns)

    @property
    def row_timeout_cycles(self) -> int:
        """Open-row timeout in CPU cycles (0 = no timeout)."""
        return self.ns_to_cycles(self.row_timeout_ns)

    @property
    def hit_cycles(self) -> int:
        """Latency of a row-buffer hit (column access only)."""
        return self.cas_cycles

    @property
    def empty_cycles(self) -> int:
        """Latency of an access to a precharged (closed) bank."""
        return self.rcd_cycles + self.cas_cycles

    @property
    def conflict_cycles(self) -> int:
        """Latency of a row-buffer conflict (precharge + activate + CAS)."""
        return self.rp_cycles + self.rcd_cycles + self.cas_cycles

    @property
    def conflict_hit_gap_cycles(self) -> int:
        """Extra cycles a conflict costs over a hit (§3.1 reports ~74)."""
        return self.conflict_cycles - self.hit_cycles

    @property
    def rowclone_fpm_cycles(self) -> int:
        """In-bank RowClone Fast-Parallel-Mode copy latency.

        FPM issues two back-to-back activations (src, then dst as soon as
        the row buffer holds src's data) [52]; the trailing precharge is
        overlapped.  The observable latency is therefore two activation
        delays — consistent with Fig. 7(b), where RowClone probe latencies
        decode against the same 150-cycle threshold as PEI probes.
        """
        return 2 * self.rcd_cycles

    def rowclone_psm_cycles(self, lines_per_row: int) -> int:
        """RowClone Pipelined Serial Mode: a cross-subarray (or cross-bank)
        copy moves the row line by line over the internal bus [52] —
        roughly an order of magnitude slower than FPM."""
        per_line_cycles = 8
        return 2 * self.rcd_cycles + lines_per_row * per_line_cycles
