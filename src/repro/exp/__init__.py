"""Parallel sweep execution: declarative sweeps, a process-pool runner,
and a deterministic on-disk result cache.

Every headline result of the reproduction is a *sweep* — the same
experiment re-run across LLC sizes, way counts, bank counts, defenses, or
workloads.  Sweep points are independent by construction (each builds its
own :class:`repro.system.System` from a config, and every RNG is seeded
per-config), so they can fan out across worker processes and produce
bit-identical results to serial execution.

Usage::

    from repro.exp import ResultCache, SweepPoint, run_sweep
    from repro.exp.figures import fig8_point

    points = [SweepPoint("fig8", fig8_point, {"llc_mb": mb})
              for mb in (8, 16, 32, 64)]
    outcome = run_sweep(points, jobs=4, cache=ResultCache(".cache"))
    for point, result in zip(points, outcome):
        print(point.params["llc_mb"], result["IMPACT-PnM"])
"""

from repro.exp.adaptive import (
    AdaptiveConfig,
    AdaptiveOutcome,
    AdaptivePointResult,
    ConvergenceTarget,
    bernoulli_probe_point,
    run_adaptive_sweep,
)
from repro.exp.cache import MISSING, ResultCache, code_version
from repro.exp.runner import (
    ExecutionBackend,
    PoolBackend,
    PoolUnavailableError,
    SerialBackend,
    ServeBackend,
    StragglerPolicy,
    SweepOutcome,
    WorkerHandle,
    WorkerPool,
    default_jobs,
    get_pool,
    metrics_path,
    point_slug,
    resolve_backend,
    run_sweep,
    shutdown_pool,
)
from repro.exp.sweep import SweepPoint, sweep_points
from repro.exp.warmstore import WarmStore, pristine_system

__all__ = [
    "MISSING",
    "AdaptiveConfig",
    "AdaptiveOutcome",
    "AdaptivePointResult",
    "ConvergenceTarget",
    "ExecutionBackend",
    "PoolBackend",
    "PoolUnavailableError",
    "ResultCache",
    "SerialBackend",
    "ServeBackend",
    "StragglerPolicy",
    "SweepOutcome",
    "SweepPoint",
    "WarmStore",
    "WorkerHandle",
    "WorkerPool",
    "bernoulli_probe_point",
    "code_version",
    "default_jobs",
    "get_pool",
    "metrics_path",
    "point_slug",
    "pristine_system",
    "resolve_backend",
    "run_adaptive_sweep",
    "run_sweep",
    "shutdown_pool",
    "sweep_points",
]
