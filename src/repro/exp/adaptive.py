"""Adaptive sampling for sweeps: CI-convergence early-stop.

A fixed sweep grid spends the same repetition budget on every point, but
the points are not equally hard: a channel at BER ≈ 0 pins its Wilson
interval after a couple of repetitions, while a marginal point near the
decode threshold needs many more before its CI is worth reporting.  The
adaptive engine schedules repetitions *in rounds*: every unresolved
point gets a chunk of reps along its declared repetition axis (a seed
parameter, so each rep is an independent, deterministic, cacheable
:class:`~repro.exp.sweep.SweepPoint`), the pooled per-point statistics
are tested against a :class:`ConvergenceTarget` built from the PR 4
quality analytics (Wilson BER CI half-width, capacity-estimate
stability), converged points stop, and only the unresolved remainder
escalates — up to ``max_reps``.

Merging is deterministic: a point's repetitions are evaluated in
repetition order and pooled by summation, so an adaptive run that
happens to execute the same repetitions as a fixed grid produces
bit-identical pooled results.  Every round is one ordinary
:func:`~repro.exp.runner.run_sweep` call, so caching, telemetry,
straggler re-dispatch, and backend selection all apply unchanged.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import (Any, Dict, List, Optional, Sequence, Tuple, Union)

from repro.analysis.quality import relative_spread, wilson_halfwidth
from repro.exp.cache import ResultCache
from repro.exp.runner import (ExecutionBackend, StragglerPolicy,
                              SweepOutcome, point_slug, run_sweep)
from repro.exp.sweep import SweepPoint
from repro.obs import telemetry


@dataclass(frozen=True)
class ConvergenceTarget:
    """When a point's pooled statistics are *resolved*.

    ``ber_ci_halfwidth``: stop once every Bernoulli stream in the payload
    (top-level ``errors``/``bits``, or per-attack entries under
    ``attacks``) has a pooled Wilson CI half-width at or below this.
    ``capacity_rel_tol``: additionally require the per-round capacity
    estimates' relative spread (over ``capacity_window`` rounds) at or
    below this.  Setting a criterion to ``None`` disables it; disabling
    both means no point ever early-stops (the engine degenerates to the
    fixed grid)."""

    ber_ci_halfwidth: Optional[float] = 0.05
    capacity_rel_tol: Optional[float] = None
    capacity_window: int = 3
    z: float = 1.96


@dataclass(frozen=True)
class AdaptiveConfig:
    """How a sweep's points repeat and when they stop.

    ``rep_axis`` names the parameter that varies across repetitions
    (``value_for(rep)`` supplies its value — ``rep_values[rep]`` when
    given, else the 1-based repetition index, matching seed conventions).
    Every point runs at least ``min_reps`` repetitions before the
    convergence predicate may fire — the floor that keeps a lucky first
    rep from terminating a point on no evidence — then ``round_reps``
    more per round until converged or ``max_reps``."""

    rep_axis: str = "seed"
    min_reps: int = 2
    max_reps: int = 8
    round_reps: int = 2
    target: ConvergenceTarget = field(default_factory=ConvergenceTarget)
    rep_values: Optional[Tuple[Any, ...]] = None

    def __post_init__(self) -> None:
        if self.min_reps < 1:
            raise ValueError("min_reps must be >= 1")
        if self.max_reps < self.min_reps:
            raise ValueError("max_reps must be >= min_reps")
        if self.round_reps < 1:
            raise ValueError("round_reps must be >= 1")
        if (self.rep_values is not None
                and len(self.rep_values) < self.max_reps):
            raise ValueError("rep_values must cover max_reps repetitions")

    def value_for(self, rep: int) -> Any:
        if self.rep_values is not None:
            return self.rep_values[rep]
        return rep + 1


def extract_streams(payload: Any) -> Dict[str, Tuple[int, int]]:
    """Bernoulli ``(errors, trials)`` streams in one rep's payload.

    Two shapes are understood: a flat ``{"errors": e, "bits": n}`` dict
    (synthetic probes, single-channel points) and the fig8-quality shape
    with per-attack entries under ``"attacks"`` (entries without both
    fields — e.g. the Streamline bound — are skipped)."""
    streams: Dict[str, Tuple[int, int]] = {}
    if not isinstance(payload, dict):
        return streams
    if "errors" in payload and "bits" in payload:
        streams[""] = (int(payload["errors"]), int(payload["bits"]))
    attacks = payload.get("attacks")
    if isinstance(attacks, dict):
        for name, entry in attacks.items():
            if (isinstance(entry, dict) and "errors" in entry
                    and "bits" in entry):
                streams[str(name)] = (int(entry["errors"]),
                                      int(entry["bits"]))
    return streams


def extract_capacity(payload: Any) -> Optional[float]:
    """A capacity-style estimate from one rep's payload (mean of the
    per-attack ``mutual_information_bits`` when present), or ``None``."""
    if not isinstance(payload, dict):
        return None
    if "mutual_information_bits" in payload:
        try:
            return float(payload["mutual_information_bits"])
        except (TypeError, ValueError):
            return None
    attacks = payload.get("attacks")
    if isinstance(attacks, dict):
        values = [entry["mutual_information_bits"]
                  for entry in attacks.values()
                  if isinstance(entry, dict)
                  and "mutual_information_bits" in entry]
        if values:
            return float(sum(values) / len(values))
    return None


@dataclass
class AdaptivePointResult:
    """One declared point's adaptive outcome: its executed repetitions
    (payloads in repetition order — merging is deterministic), pooled
    per-stream statistics, and why it stopped."""

    point: SweepPoint
    rep_values: List[Any] = field(default_factory=list)
    payloads: List[Any] = field(default_factory=list)
    converged: bool = False
    halfwidth: Optional[float] = None
    capacity_history: List[float] = field(default_factory=list)
    capacity_spread: Optional[float] = None

    @property
    def reps(self) -> int:
        return len(self.payloads)

    def pooled_streams(self, z: float = 1.96) -> Dict[str, Dict[str, Any]]:
        """Per-stream ``errors``/``trials``/``ber``/``ci_halfwidth``
        pooled (summed) across this point's executed repetitions."""
        totals: Dict[str, List[int]] = {}
        for payload in self.payloads:
            for name, (errors, trials) in extract_streams(payload).items():
                entry = totals.setdefault(name, [0, 0])
                entry[0] += errors
                entry[1] += trials
        return {name: {"errors": errors, "trials": trials,
                       "ber": (errors / trials) if trials else None,
                       "ci_halfwidth": wilson_halfwidth(errors, trials, z)}
                for name, (errors, trials) in totals.items()}

    def to_dict(self) -> Dict[str, Any]:
        return {"point": point_slug(self.point), "reps": self.reps,
                "rep_values": list(self.rep_values),
                "converged": self.converged,
                "ci_halfwidth": self.halfwidth,
                "capacity_spread": self.capacity_spread,
                "streams": self.pooled_streams()}


@dataclass
class AdaptiveOutcome:
    """Results of one adaptive sweep plus its rep-budget accounting."""

    results: List[AdaptivePointResult]
    executed_reps: int
    fixed_reps: int
    rounds: int
    elapsed_seconds: float = 0.0
    sweeps: List[SweepOutcome] = field(default_factory=list)
    config: Optional[AdaptiveConfig] = None

    @property
    def rep_savings_ratio(self) -> float:
        """How many× fewer reps than the fixed ``max_reps`` grid."""
        return self.fixed_reps / max(1, self.executed_reps)

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def to_dict(self) -> Dict[str, Any]:
        return {"executed_reps": self.executed_reps,
                "fixed_reps": self.fixed_reps,
                "rep_savings_ratio": round(self.rep_savings_ratio, 4),
                "rounds": self.rounds,
                "elapsed_seconds": round(self.elapsed_seconds, 6),
                "points": [result.to_dict() for result in self.results]}


def _evaluate(state: AdaptivePointResult, config: AdaptiveConfig) -> None:
    """Update a point's convergence verdict from its pooled stats.
    Never converges below the ``min_reps`` floor."""
    target = config.target
    pooled = state.pooled_streams(target.z)
    state.halfwidth = (max(s["ci_halfwidth"] for s in pooled.values())
                      if pooled else None)
    capacity = [extract_capacity(p) for p in state.payloads]
    known = [c for c in capacity if c is not None]
    if known:
        state.capacity_history = known
        window = known[-max(2, target.capacity_window):]
        state.capacity_spread = relative_spread(window)
    if state.reps < config.min_reps:
        state.converged = False
        return
    verdicts: List[bool] = []
    if target.ber_ci_halfwidth is not None:
        verdicts.append(state.halfwidth is not None
                        and state.halfwidth <= target.ber_ci_halfwidth)
    if target.capacity_rel_tol is not None:
        verdicts.append(state.capacity_spread is not None
                        and state.capacity_spread
                        <= target.capacity_rel_tol)
    state.converged = bool(verdicts) and all(verdicts)


def run_adaptive_sweep(points: Sequence[SweepPoint], *,
                       config: Optional[AdaptiveConfig] = None,
                       jobs: Optional[int] = None,
                       cache: Optional[ResultCache] = None,
                       trace_dir: Optional[str] = None,
                       metrics_dir: Optional[str] = None,
                       warm_dir: Optional[str] = None,
                       telemetry_dir: Optional[str] = None,
                       backend: Union[str, ExecutionBackend, None] = "auto",
                       straggler: Optional[StragglerPolicy] = None,
                       serve_addr: Optional[Tuple[str, int]] = None,
                       max_point_retries: int = 3) -> AdaptiveOutcome:
    """Run ``points`` adaptively: repetitions in rounds, early-stopping
    points whose pooled statistics meet the convergence target.

    Each round expands every unresolved point into its next chunk of
    repetitions (``config.rep_axis`` varied by ``config.value_for``) and
    executes them as one ordinary :func:`run_sweep` — so the result
    cache, the telemetry event log, the chosen backend, and straggler
    re-dispatch all behave exactly as in a fixed sweep.  Returns an
    :class:`AdaptiveOutcome` whose ``results`` align with ``points``.
    """
    config = config or AdaptiveConfig()
    started = time.perf_counter()
    states = [AdaptivePointResult(point=point) for point in points]
    sweeps: List[SweepOutcome] = []
    rounds = 0
    while True:
        batch: List[SweepPoint] = []
        owners: List[int] = []
        for index, state in enumerate(states):
            if state.converged or state.reps >= config.max_reps:
                continue
            if state.reps < config.min_reps:
                want = config.min_reps - state.reps
            else:
                want = config.round_reps
            want = min(want, config.max_reps - state.reps)
            for rep in range(state.reps, state.reps + want):
                value = config.value_for(rep)
                batch.append(state.point.with_params(
                    **{config.rep_axis: value}))
                state.rep_values.append(value)
                owners.append(index)
        if not batch:
            break
        rounds += 1
        outcome = run_sweep(batch, jobs=jobs, cache=cache,
                            trace_dir=trace_dir, metrics_dir=metrics_dir,
                            warm_dir=warm_dir, telemetry_dir=telemetry_dir,
                            backend=backend, straggler=straggler,
                            serve_addr=serve_addr,
                            max_point_retries=max_point_retries)
        sweeps.append(outcome)
        for index, payload in zip(owners, outcome.results):
            states[index].payloads.append(payload)
        touched = sorted(set(owners))
        for index in touched:
            _evaluate(states[index], config)
        telemetry.emit(
            "adaptive_round", round=rounds, scheduled=len(batch),
            resolved=sum(1 for s in states if s.converged),
            unresolved=sum(1 for s in states
                           if not s.converged and s.reps < config.max_reps))
    executed = sum(state.reps for state in states)
    return AdaptiveOutcome(
        results=states,
        executed_reps=executed,
        fixed_reps=len(points) * config.max_reps,
        rounds=rounds,
        elapsed_seconds=time.perf_counter() - started,
        sweeps=sweeps,
        config=config,
    )


# ---------------------------------------------------------------------------
# Synthetic probe point (tests / benches / CI smoke)
# ---------------------------------------------------------------------------

def bernoulli_probe_point(p: float = 0.1, bits: int = 256, seed: int = 1,
                          slow_sentinel: Optional[str] = None,
                          slow_seconds: float = 0.0,
                          fast_seconds: float = 0.0) -> Dict[str, Any]:
    """Deterministic synthetic quality point: ``bits`` Bernoulli(``p``)
    error draws seeded by ``(p, bits, seed)``, payload shaped like a
    single-channel quality result (``errors``/``bits``).

    The optional ``slow_sentinel`` injects a straggler for benches and
    smoke tests: the *first* executor to atomically create the sentinel
    file sleeps ``slow_seconds``, everyone else ``fast_seconds`` — so
    exactly one copy of one point is slow, whichever worker draws it.
    The payload never depends on timing, so re-dispatched twins commit
    bit-identical results."""
    import random

    rng = random.Random(f"{float(p)}:{int(bits)}:{int(seed)}")
    errors = sum(1 for _ in range(int(bits)) if rng.random() < float(p))
    delay = float(fast_seconds)
    if slow_sentinel:
        try:
            fd = os.open(slow_sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.close(fd)
            delay = float(slow_seconds)
        except FileExistsError:
            pass
        except OSError:
            pass
    if delay > 0:
        time.sleep(delay)
    return {"p": float(p), "bits": int(bits), "seed": int(seed),
            "errors": errors}
