"""Deterministic on-disk result cache for sweep experiments.

Entries are keyed by a content hash over (experiment name, point
parameters, code version).  The code version is itself a content hash of
every ``repro`` source file, so editing the simulator invalidates every
cached result while leaving re-runs of unchanged experiments instant.

Payloads must be JSON-serializable — sweep point functions return plain
dicts of floats/ints/strings, which also keeps cached artifacts diffable
(`BENCH_*.json`-style snapshots fall out of the cache files for free).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Any, Dict, Mapping, Optional

_MISSING = object()

_CODE_VERSION: Optional[str] = None


def canonical_json(value: Any) -> str:
    """Stable serialization used for hashing parameters."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      default=str)


def code_version() -> str:
    """Content hash of the installed ``repro`` package sources.

    Memoized per process; any change to any ``.py`` file under the package
    produces a different version and therefore different cache keys.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        package_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        digest = hashlib.sha256()
        for root, dirs, files in sorted(os.walk(package_dir)):
            dirs[:] = sorted(d for d in dirs if d != "__pycache__")
            for name in sorted(files):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(root, name)
                digest.update(os.path.relpath(path, package_dir).encode())
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


#: Default entry cap.  Sweeps produce a handful of entries per figure per
#: code version, so thousands of files means many stale versions — bound
#: the growth instead of keeping every version forever.
DEFAULT_MAX_ENTRIES = 4096


class ResultCache:
    """Content-addressed store of sweep-point results.

    One JSON file per entry under ``directory``; the filename is the cache
    key, so lookups are a single ``open`` and invalidation is ``rm -rf``.

    The store is LRU-bounded: every hit and put stamps its entry with the
    next value of a *monotonic* recency counter (persisted in a sidecar
    index file, shared by every process using the directory), and when a
    put pushes the entry count past ``max_entries`` the least-recently-
    used entries are evicted — preferring entries written by *other* code
    versions, whose keys can never be looked up again.  Recency used to
    ride on file mtimes (wall clock): an NTP step or VM resume could
    reorder eviction and, worse, make the ``repro serve`` dedup layer
    distrust what "most recent" means.  The counter only ever goes up.
    """

    #: Sidecar recency index (filename -> sequence number).  Deliberately
    #: not ``*.json`` so entry listing never mistakes it for an entry.
    INDEX_NAME = "_lru.idx"

    def __init__(self, directory: str,
                 version: Optional[str] = None,
                 max_entries: Optional[int] = DEFAULT_MAX_ENTRIES) -> None:
        self.directory = directory
        self.version = version if version is not None else code_version()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------

    def key(self, experiment: str, params: Mapping[str, Any]) -> str:
        material = canonical_json({
            "experiment": experiment,
            "params": dict(params),
            "code": self.version,
        })
        return hashlib.sha256(material.encode()).hexdigest()[:24]

    def path_for(self, experiment: str, params: Mapping[str, Any]) -> str:
        return os.path.join(self.directory,
                            f"{experiment}-{self.key(experiment, params)}.json")

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def get(self, experiment: str, params: Mapping[str, Any]) -> Any:
        """Cached payload, or :data:`MISSING` if absent/corrupt."""
        path = self.path_for(experiment, params)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return _MISSING
        self._touch(path)  # LRU recency: a hit keeps the entry young
        self.hits += 1
        return entry.get("payload")

    def put(self, experiment: str, params: Mapping[str, Any],
            payload: Any) -> str:
        """Persist ``payload``; returns the entry's path."""
        os.makedirs(self.directory, exist_ok=True)
        path = self.path_for(experiment, params)
        entry: Dict[str, Any] = {
            "experiment": experiment,
            "params": dict(params),
            "code_version": self.version,
            "created": time.time(),
            "payload": payload,
        }
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(entry, handle, default=str)
        os.replace(tmp, path)
        self._touch(path)
        if self.max_entries is not None:
            self._evict(self.max_entries)
        return path

    # ------------------------------------------------------------------
    # Monotonic recency index
    # ------------------------------------------------------------------

    def _index_path(self) -> str:
        return os.path.join(self.directory, self.INDEX_NAME)

    def _load_index(self) -> Dict[str, int]:
        """Filename -> recency sequence; a corrupt or missing index is
        just an empty one (entries then sort as oldest, tie-broken by
        mtime, and get re-stamped on their next touch)."""
        try:
            with open(self._index_path()) as handle:
                raw = json.load(handle)
            return {str(name): int(seq)
                    for name, seq in raw.get("entries", {}).items()}
        except (OSError, ValueError, TypeError, AttributeError):
            return {}

    def _write_index(self, entries: Dict[str, int]) -> None:
        tmp = f"{self._index_path()}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w") as handle:
                json.dump({"entries": entries}, handle)
            os.replace(tmp, self._index_path())
        except OSError:
            pass

    def _touch(self, path: str) -> None:
        """Stamp ``path`` as most-recently-used: the next value of the
        store-wide monotonic counter, never the wall clock."""
        entries = self._load_index()
        entries[os.path.basename(path)] = max(entries.values(), default=0) + 1
        self._write_index(entries)

    # ------------------------------------------------------------------
    # Size bounding / maintenance
    # ------------------------------------------------------------------

    def _entry_paths(self) -> "list[str]":
        if not os.path.isdir(self.directory):
            return []
        return [os.path.join(self.directory, name)
                for name in os.listdir(self.directory)
                if name.endswith(".json")]

    def entry_count(self) -> int:
        return len(self._entry_paths())

    def _entry_version(self, path: str) -> Optional[str]:
        """The ``code_version`` recorded in an entry (None = unreadable)."""
        try:
            with open(path) as handle:
                return json.load(handle).get("code_version")
        except (OSError, ValueError):
            return None

    def _evict(self, max_entries: int) -> int:
        """Bring the store under ``max_entries``, least-recently-used
        first (by the monotonic index; mtime only tie-breaks entries the
        index has never seen), but preferring entries from other code
        versions (their keys can never match a lookup under this version
        again)."""
        paths = self._entry_paths()
        excess = len(paths) - max_entries
        if excess <= 0:
            return 0
        index = self._load_index()

        def recency(path: str) -> "tuple[int, float]":
            try:
                mtime = os.path.getmtime(path)
            except OSError:
                mtime = 0.0
            return index.get(os.path.basename(path), 0), mtime

        removed = 0
        dropped: "list[str]" = []
        stale = sorted((p for p in paths
                        if self._entry_version(p) != self.version),
                       key=recency)
        fresh = sorted((p for p in paths if p not in set(stale)), key=recency)
        for path in stale + fresh:
            if removed >= excess:
                break
            try:
                os.remove(path)
                removed += 1
                dropped.append(os.path.basename(path))
            except OSError:
                pass
        if dropped:
            for name in dropped:
                index.pop(name, None)
            self._write_index(index)
        self.evictions += removed
        return removed

    def prune(self) -> int:
        """Drop entries written by other code versions (stale keys);
        returns how many were removed."""
        removed = 0
        index = self._load_index()
        for path in self._entry_paths():
            if self._entry_version(path) != self.version:
                try:
                    os.remove(path)
                    removed += 1
                    index.pop(os.path.basename(path), None)
                except OSError:
                    pass
        if removed:
            self._write_index(index)
        return removed

    def stats(self) -> Dict[str, Any]:
        """Summary for ``repro cache stats``."""
        paths = self._entry_paths()
        stale = sum(1 for p in paths if self._entry_version(p) != self.version)
        total_bytes = 0
        for path in paths:
            try:
                total_bytes += os.path.getsize(path)
            except OSError:
                pass
        return {
            "directory": self.directory,
            "code_version": self.version,
            "entries": len(paths),
            "stale_entries": stale,
            "bytes": total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "max_entries": self.max_entries,
        }

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""
        removed = 0
        if not os.path.isdir(self.directory):
            return removed
        for name in os.listdir(self.directory):
            if name.endswith(".json"):
                os.remove(os.path.join(self.directory, name))
                removed += 1
        try:
            os.remove(self._index_path())
        except OSError:
            pass
        return removed

    @staticmethod
    def is_missing(value: Any) -> bool:
        return value is _MISSING


MISSING = _MISSING
