"""Canonical sweep-point functions for the paper's figures and the CLI.

Every function here is module-level (picklable across process boundaries),
takes only JSON-able parameters, and returns a JSON-able dict — the
contract :mod:`repro.exp.runner` and :mod:`repro.exp.cache` build on.
The figure benchmarks and the CLI both express their sweeps through these
functions, so the parallel runner and result cache speed up every
consumer at once.

Results are bit-identical to the historical in-bench implementations:
each point builds its own :class:`repro.system.System` from a config and
all randomness is seeded per-config or per-call.

Warm-state reuse: the fig8/fig10/fig11 points route their deterministic,
expensive-to-rebuild pieces through :mod:`repro.exp.warmstore` — pristine
systems and the Streamline traversal order (fig8), the victim probe
schedule (fig10), reference streams and post-warm-up snapshots (fig11).
Reuse is pure: a point served from warm state is bit-identical to one
built from scratch (``REPRO_NO_WARMSTORE=1`` forces the scratch path; the
equivalence tests diff both).
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache
from typing import Any, Dict, List, Optional

from repro.config import SystemConfig
from repro.exp import warmstore
from repro.exp.warmstore import pristine_system
from repro.system import System

# ---------------------------------------------------------------------------
# Figs. 2 and 3 — §3.3 direct-vs-baseline attacks across LLC geometry
# ---------------------------------------------------------------------------


def _sec33_system(llc_mb: float, ways: int) -> System:
    """LRU LLC, prefetchers off: the paper's idealized one-request-per-way
    eviction setting (§3.3)."""
    base = SystemConfig.paper_default()
    hierarchy = replace(base.hierarchy, llc_size_mb=float(llc_mb),
                        llc_ways=ways, llc_replacement="lru",
                        prefetchers_enabled=False)
    return System(replace(base, hierarchy=hierarchy))


def sec33_point(llc_mb: float, ways: int = 16, bits: int = 384) -> Dict[str, float]:
    """One Fig. 2/3 point: direct + baseline throughput, eviction latency."""
    from repro.attacks import run_sec33_point

    return run_sec33_point(_sec33_system(llc_mb, ways), bits=bits)


# ---------------------------------------------------------------------------
# Fig. 8 — covert-channel throughput across LLC sizes, all seven attacks
# ---------------------------------------------------------------------------


def fig8_point(llc_mb: float) -> Dict[str, float]:
    """All-attack throughputs (Mb/s) at one LLC size (§5.3)."""
    from repro.attacks import (
        DmaEngineChannel,
        DramaClflushChannel,
        DramaEvictionChannel,
        ImpactPnmChannel,
        ImpactPumChannel,
        PnmOffchipChannel,
        StreamlineChannel,
        streamline_upper_bound_mbps,
    )

    base = SystemConfig.paper_default().with_llc(float(llc_mb))
    xor_base = replace(base, mapping="xor")
    # pristine_system() reuses one pooled machine per config (restored to
    # construction-time state between channels); channels run strictly one
    # after another, so the aliasing is safe, and the pool self-bypasses
    # under observers/sanitizer/metrics.
    point: Dict[str, float] = {}
    point["DRAMA-eviction"] = DramaEvictionChannel(pristine_system(xor_base)) \
        .transmit_random(64, seed=1).throughput_mbps
    point["DRAMA-clflush"] = DramaClflushChannel(pristine_system(base)) \
        .transmit_random(192, seed=1).throughput_mbps
    point["Streamline"] = StreamlineChannel(pristine_system(base)) \
        .transmit_random(192, seed=1).throughput_mbps
    point["Streamline-bound"] = streamline_upper_bound_mbps(
        pristine_system(base))
    point["DMA-engine"] = DmaEngineChannel(pristine_system(base)) \
        .transmit_random(384, seed=1).throughput_mbps
    point["PnM-OffChip"] = PnmOffchipChannel(pristine_system(base)) \
        .transmit_random(512, seed=1).throughput_mbps
    point["IMPACT-PnM"] = ImpactPnmChannel(pristine_system(base)) \
        .transmit_random(512, seed=1).throughput_mbps
    point["IMPACT-PuM"] = ImpactPumChannel(pristine_system(base)) \
        .transmit_random(512, seed=1).throughput_mbps
    return point


#: Per-attack message lengths of the canonical Fig. 8 point; quality
#: points scale these down proportionally for quick report runs.
_FIG8_BITS = {
    "drama-eviction": 64,
    "drama-clflush": 192,
    "streamline": 192,
    "dma": 384,
    "pnm-offchip": 512,
    "impact-pnm": 512,
    "impact-pum": 512,
}

_FIG8_NAMES = {
    "drama-eviction": "DRAMA-eviction",
    "drama-clflush": "DRAMA-clflush",
    "streamline": "Streamline",
    "dma": "DMA-engine",
    "pnm-offchip": "PnM-OffChip",
    "impact-pnm": "IMPACT-PnM",
    "impact-pum": "IMPACT-PuM",
}


def fig8_quality_point(llc_mb: float, bits: int = 128,
                       attacks: Optional[List[str]] = None,
                       seed: int = 1) -> Dict[str, Any]:
    """One Fig. 8 point with full channel-quality analytics per attack.

    Runs the same seven channels as :func:`fig8_point` (or the subset
    named in ``attacks``, CLI keys like ``"impact-pnm"``), with message
    lengths scaled so ``bits`` plays the role the canonical point's 512
    does, and returns per-attack throughput *plus* BER with Wilson CI,
    mutual-information capacity, TVLA leakage t-score, and eye-diagram
    summaries — the payload ``repro report`` renders.

    ``seed`` varies the transmitted random message — the repetition axis
    adaptive sweeps resample to tighten the BER confidence interval
    (``seed=1`` reproduces the historical fixed point exactly).
    """
    from repro.attacks import streamline_upper_bound_mbps
    from repro.cli import ATTACKS

    names = list(_FIG8_BITS) if attacks is None else list(attacks)
    unknown = [n for n in names if n not in _FIG8_BITS]
    if unknown:
        raise ValueError(f"unknown attack(s): {unknown}")
    base = SystemConfig.paper_default().with_llc(float(llc_mb))
    out: Dict[str, Any] = {"llc_mb": float(llc_mb), "bits": int(bits),
                           "attacks": {}}
    for cli_name in names:
        config = (replace(base, mapping="xor")
                  if cli_name == "drama-eviction" else base)
        message_bits = max(16, _FIG8_BITS[cli_name] * int(bits) // 512)
        channel = ATTACKS[cli_name](pristine_system(config))
        result = channel.transmit_random(message_bits, seed=int(seed))
        quality = result.quality(channel.threshold_cycles)
        out["attacks"][_FIG8_NAMES[cli_name]] = {
            "throughput_mbps": result.throughput_mbps,
            "raw_throughput_mbps": result.raw_throughput_mbps,
            "cycles_per_bit": result.cycles_per_bit,
            **quality.to_dict(),
        }
    if attacks is None or "streamline" in names:
        out["attacks"]["Streamline-bound"] = {
            "throughput_mbps": streamline_upper_bound_mbps(
                pristine_system(base))}
    return out


def fig8_quality_sweep(sizes_mb=(8, 64), bits: int = 128,
                       attacks: Optional[List[str]] = None):
    from repro.exp.sweep import sweep_points

    return sweep_points("fig8", fig8_quality_point, "llc_mb",
                        [float(s) for s in sizes_mb], bits=bits,
                        attacks=list(attacks) if attacks else None)


# ---------------------------------------------------------------------------
# Fig. 10 — read-mapping side channel vs bank count
# ---------------------------------------------------------------------------

FIG10_NOISE_RATE = 0.0105  # stray activations per kilocycle (§5.1)


@lru_cache(maxsize=1)
def _fig10_world():
    """The Fig. 10 victim pipeline: synthetic reference, mutated sample,
    sampled reads, and the 1024-bank base index (restriped per point).

    Built lazily once per process; all seeds are fixed, so every worker
    reconstructs the identical world.
    """
    from repro.genomics import (
        ReferenceIndex,
        generate_reference,
        mutate_genome,
        sample_reads,
    )

    reference = generate_reference(20_000, seed=31)
    sample = mutate_genome(reference, seed=32)
    reads = [r for r, _ in sample_reads(sample, num_reads=6, read_length=150,
                                        error_rate=0.002, seed=33)]
    base_index = ReferenceIndex(reference, num_banks=1024)
    return reference, reads, base_index


#: Per-process memo of victim probe schedules, keyed (num_banks, rounds).
_FIG10_SCHEDULES: dict = {}


def _fig10_schedule(num_banks: int, rounds: int):
    """The victim's probe schedule and index occupancy for one point.

    Building the schedule means restriping the 1024-bank base index and
    replaying the read mapper — pure in (num_banks, rounds) since every
    seed in :func:`_fig10_world` is fixed.  Memoized per process and
    persisted as a warm-store artifact; ``REPRO_NO_WARMSTORE=1`` forces
    the from-scratch build.  Returns ``(schedule, entries_per_bank)``.
    """
    def build():
        from repro.genomics import PimReadMapper

        reference, reads, base_index = _fig10_world()
        index = base_index.restripe(num_banks)
        # trace_for_reads only consults the software mapper and index, so
        # no System is needed to reconstruct the victim's schedule.
        mapper = PimReadMapper(None, reference, index)
        return (mapper.trace_for_reads(reads)[:rounds],
                index.entries_per_bank)

    if not warmstore.enabled():
        return build()
    key = (num_banks, rounds)
    value = _FIG10_SCHEDULES.get(key)
    if value is not None:
        warmstore.record_event("hits")
        return value
    store = warmstore.current()
    recipe = ("fig10-schedule", num_banks, rounds)
    if store is not None:
        loaded = store.load_artifact(recipe)
        if not store.is_missing(loaded):
            _FIG10_SCHEDULES[key] = loaded
            return loaded
    value = build()
    _FIG10_SCHEDULES[key] = value
    if store is not None:
        store.store_artifact(recipe, value)
    else:
        warmstore.record_event("misses")
    return value


def fig10_point(num_banks: int, rounds: int = 100) -> Dict[str, Any]:
    """One Fig. 10 point: side-channel leakage at ``num_banks`` banks."""
    from repro.attacks import ReadMappingSideChannel

    config = (SystemConfig.paper_default()
              .with_banks(num_banks)
              .with_noise(FIG10_NOISE_RATE))
    schedule, entries_per_bank = _fig10_schedule(num_banks, rounds)
    system = pristine_system(config)
    channel = ReadMappingSideChannel(system)
    result = channel.run(schedule, entries_per_bank=entries_per_bank)
    return side_channel_payload(result)


def side_channel_payload(result) -> Dict[str, Any]:
    """JSON-able raw fields + derived metrics of a SideChannelResult."""
    return {
        "num_banks": result.num_banks,
        "rounds": result.rounds,
        "correct": result.correct,
        "missed": result.missed,
        "false_positives": result.false_positives,
        "cycles": result.cycles,
        "cpu_hz": result.cpu_hz,
        "entries_per_bank": result.entries_per_bank,
        "leaked_bits": result.leaked_bits,
        "throughput_mbps": result.throughput_mbps,
        "error_rate": result.error_rate,
        "accuracy": result.accuracy,
        "summary": result.summary(),
    }


# ---------------------------------------------------------------------------
# Fig. 11 — defense overheads on multiprogrammed workloads
# ---------------------------------------------------------------------------


#: Per-process warm-up cache shared by every fig11 point (lazy; only used
#: when the warm store is enabled, so ``REPRO_NO_WARMSTORE=1`` still
#: exercises the full from-scratch warm-up path).
_FIG11_WARM = None


def _fig11_warm_cache():
    global _FIG11_WARM
    if _FIG11_WARM is None:
        from repro.workloads import WarmupCache

        _FIG11_WARM = WarmupCache()
    return _FIG11_WARM


def _fig11_stream(workload: str, max_refs: int):
    """The workload's reference stream, persisted as a warm-store artifact.

    Building a stream means constructing the scaled graph input and
    replaying the kernel — pure in (workload, max_refs).  Returns ``None``
    when no store is active (the caller lets
    :func:`repro.workloads.evaluate_defenses` build the stream itself).
    """
    store = warmstore.current()
    if store is None:
        return None
    recipe = ("fig11-stream", workload, max_refs)
    loaded = store.load_artifact(recipe)
    if not store.is_missing(loaded):
        return loaded
    from repro.workloads.kernels import workload_spec

    spec = workload_spec(workload)
    stream = spec.refs(graph=spec.build_graph(), max_refs=max_refs)
    store.store_artifact(recipe, stream)
    return stream


def fig11_point(workload: str, max_refs: int = 60_000) -> Dict[str, Any]:
    """One Fig. 11 workload under open/crp/ctd row policies."""
    from repro.workloads import evaluate_defenses

    warm_cache = stream = None
    if warmstore.enabled():
        warm_cache = _fig11_warm_cache()
        stream = _fig11_stream(workload, max_refs)
    evaluation = evaluate_defenses(workload, max_refs=max_refs,
                                   warm_cache=warm_cache, stream=stream)
    policies = {
        policy: {
            "cycles": run.cycles,
            "instructions": run.instructions,
            "refs": run.refs,
            "llc_misses": run.llc_misses,
            "mpki": run.mpki,
        }
        for policy, run in evaluation.results.items()
    }
    return {
        "workload": evaluation.workload,
        "paper_mpki": evaluation.paper_mpki,
        "mpki": evaluation.measured_mpki,
        "policies": policies,
        "crp_overhead": evaluation.overhead("crp"),
        "ctd_overhead": evaluation.overhead("ctd"),
    }


# ---------------------------------------------------------------------------
# CLI sweeps — covert channels, side channel, defense security
# ---------------------------------------------------------------------------


def _cli_config(llc_mb: Optional[float], noise: float,
                mapping: Optional[str]) -> SystemConfig:
    config = SystemConfig.paper_default()
    if llc_mb:
        config = config.with_llc(float(llc_mb))
    if noise:
        config = config.with_noise(noise)
    if mapping:
        config = replace(config, mapping=mapping)
    return config


def covert_point(attack: str, bits: int = 512, seed: int = 0,
                 llc_mb: Optional[float] = None, noise: float = 0.0,
                 mapping: Optional[str] = None) -> Dict[str, Any]:
    """One covert-channel transmission (a ``repro covert`` table row)."""
    from repro.cli import ATTACKS

    config = _cli_config(llc_mb, noise, mapping)
    if attack == "drama-eviction" and config.mapping != "xor":
        config = replace(config, mapping="xor")
    channel = ATTACKS[attack](System(config))
    result = channel.transmit_random(bits, seed=seed)
    return {
        "attack": attack,
        "throughput_mbps": result.throughput_mbps,
        "error_rate": result.error_rate,
        "cycles_per_bit": result.cycles_per_bit,
    }


def streamline_bound_point(llc_mb: Optional[float] = None, noise: float = 0.0,
                           mapping: Optional[str] = None) -> Dict[str, Any]:
    """The §5.1 analytical Streamline upper bound for one config."""
    from repro.attacks import streamline_upper_bound_mbps

    bound = streamline_upper_bound_mbps(System(_cli_config(llc_mb, noise,
                                                           mapping)))
    return {"attack": "streamline (bound)", "throughput_mbps": bound}


def sidechannel_point(num_banks: int, rounds: int = 100, seed: int = 0,
                      noise: float = 0.0) -> Dict[str, Any]:
    """One ``repro sidechannel`` run over a synthetic victim schedule."""
    from repro.attacks import ReadMappingSideChannel, fake_schedule

    config = (SystemConfig.paper_default().with_banks(num_banks)
              .with_noise(noise if noise else FIG10_NOISE_RATE))
    system = System(config)
    schedule = fake_schedule(num_banks, rounds, seed=seed)
    result = ReadMappingSideChannel(system).run(schedule)
    return side_channel_payload(result)


def defense_security_point(defense: str, bits: int = 192,
                           attack: str = "impact-pnm") -> Dict[str, Any]:
    """Security of one §6 defense against one covert channel."""
    from repro.cli import ATTACKS
    from repro.defenses import evaluate_channel_under_defense

    factory = ATTACKS[attack]
    report = evaluate_channel_under_defense(lambda s: factory(s), defense,
                                            bits=bits)
    return {
        "defense": defense,
        "attack": attack,
        "blocked": report.blocked,
        "error_rate": report.error_rate,
        "capacity_bits_per_symbol": report.capacity_bits_per_symbol,
        "eliminated": report.channel_eliminated,
    }


# ---------------------------------------------------------------------------
# Sweep builders (shared by benchmarks and the CLI)
# ---------------------------------------------------------------------------


def fig2_sweep(sizes_mb=(2, 4, 8, 16, 32, 64), bits: int = 384):
    from repro.exp.sweep import sweep_points

    return sweep_points("fig2", sec33_point, "llc_mb", list(sizes_mb),
                        bits=bits)


def fig3_sweep(ways=(2, 4, 8, 16, 32, 64, 128), llc_mb: float = 16,
               bits: int = 256):
    from repro.exp.sweep import sweep_points

    return sweep_points("fig3", sec33_point, "ways", list(ways),
                        llc_mb=llc_mb, bits=bits)


def fig8_sweep(sizes_mb=(8, 16, 32, 64)):
    from repro.exp.sweep import sweep_points

    return sweep_points("fig8", fig8_point, "llc_mb", list(sizes_mb))


def fig10_sweep(bank_counts=(1024, 2048, 4096, 8192), rounds: int = 100):
    from repro.exp.sweep import sweep_points

    return sweep_points("fig10", fig10_point, "num_banks", list(bank_counts),
                        rounds=rounds)


def fig11_sweep(workloads=("BC", "BFS", "CC", "TC", "PR"),
                max_refs: int = 60_000):
    from repro.exp.sweep import sweep_points

    return sweep_points("fig11", fig11_point, "workload", list(workloads),
                        max_refs=max_refs)
