"""Parallel sweep runner.

Fans independent :class:`~repro.exp.sweep.SweepPoint`\\ s out across a
persistent fork-server :class:`WorkerPool`.  Each point constructs its
own ``System`` inside the worker, and every stochastic component of the
simulator is seeded from its config, so parallel results are
bit-identical to serial execution — the runner only changes wall-clock
time, never numbers.

Unlike the per-sweep ``ProcessPoolExecutor`` this replaced, the pool's
workers survive across sweeps: each worker keeps its
:mod:`repro.exp.warmstore` memory LRU of restored snapshots, its
pristine-system pool, and its artifact memos, so a worker that has
already warmed (or loaded) the 64 MB-LLC state serves every subsequent
point sharing that config without re-warming or re-unpickling.  Because
workers fork *before* later environment changes, every task carries a
``REPRO_*`` environment overlay captured in the parent at dispatch time —
trace/metrics/warm-store directories and sanitizer flags behave exactly
as if the worker had been forked fresh.

Degradation is graceful by design: ``jobs=1``, a single pending point, or
an environment where worker processes cannot be spawned (sandboxes without
semaphores, exotic interpreters) all fall back to in-process serial
execution of the exact same point functions; a broken pool is torn down
and the pending points re-run serially.

Observability survives the fan-out: when ``REPRO_TRACE_DIR`` /
``REPRO_METRICS_DIR`` are set (directly, or via
``run_sweep(trace_dir=..., metrics_dir=...)``, which exports them around
the sweep so forked workers inherit them), every point — serial or in a
worker process — runs under a fresh :class:`repro.obs.Tracer` and/or
:class:`repro.obs.MetricsRegistry` and writes its Chrome-trace / metrics
JSON into those directories, named after the point's label (see
:func:`point_slug`).  ``repro report`` joins these files with the sweep
payloads into one run report.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import re
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import (Any, Callable, Dict, List, Iterator, Optional, Sequence,
                    Tuple)

from repro import obs
from repro.exp import warmstore
from repro.exp.cache import ResultCache
from repro.exp.sweep import SweepPoint
from repro.obs import metrics as obs_metrics
from repro.obs import telemetry
from repro.obs.telemetry import FleetHealth


class PoolUnavailableError(RuntimeError):
    """Worker processes cannot be spawned or the pool's pipes broke.

    An *infrastructure* failure, distinct from a sweep point raising: the
    runner falls back to serial in-process execution on this error, while
    a point's own exception propagates to the caller (after completed
    in-flight results have been committed)."""


def default_jobs() -> int:
    """Worker count used when ``jobs`` is not given: the CPUs available to
    *this process*.  ``os.process_cpu_count()`` (Python 3.13+) already
    honours CPU affinity; on older interpreters fall back to
    ``len(os.sched_getaffinity(0))`` so cgroup- or taskset-restricted CI
    boxes don't oversubscribe the pool, and only then to the raw
    ``os.cpu_count()`` (platforms without affinity, e.g. macOS)."""
    counter = getattr(os, "process_cpu_count", None)
    if counter is None:
        affinity = getattr(os, "sched_getaffinity", None)
        if affinity is not None:
            try:
                return max(1, len(affinity(0)))
            except OSError:
                pass
        counter = os.cpu_count
    return max(1, counter() or 1)


@dataclass
class SweepOutcome:
    """Results of one sweep, in point order, plus execution metadata."""

    results: List[Any]
    jobs: int
    parallel: bool
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_seconds: float = 0.0
    fallback_reason: Optional[str] = None
    #: Warm-state reuse during the executed (non-result-cached) points:
    #: snapshot/artifact loads and pristine-system restores served from
    #: the :mod:`repro.exp.warmstore` layers vs. paid from scratch.
    warm_hits: int = 0
    warm_misses: int = 0
    points: Sequence[SweepPoint] = field(default_factory=tuple)
    #: Causal run ID minted for this sweep — every telemetry record,
    #: stamped trace, and stamped metrics JSON the sweep produced carries
    #: it (see :mod:`repro.obs.telemetry`).
    run_id: Optional[str] = None

    def __iter__(self) -> Iterator[Any]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> Any:
        return self.results[index]


def point_slug(point: SweepPoint) -> str:
    """Filesystem-safe name for a point's per-point artifacts (trace and
    metrics files share it, so reports can join them by label)."""
    slug = re.sub(r"[^A-Za-z0-9._=-]+", "_", point.describe()).strip("_")
    return slug[:120] or "point"


def _trace_path(trace_dir: str, point: SweepPoint) -> str:
    return os.path.join(trace_dir, f"{point_slug(point)}.trace.json")


def metrics_path(metrics_dir: str, point: SweepPoint) -> str:
    """Where a point's metrics JSON lands under ``metrics_dir``."""
    return os.path.join(metrics_dir, f"{point_slug(point)}.metrics.json")


def _run_point(point: SweepPoint, run_id: Optional[str] = None,
               span_id: Optional[str] = None) -> Any:
    trace_dir = os.environ.get("REPRO_TRACE_DIR")
    metrics_dir = os.environ.get("REPRO_METRICS_DIR")
    if not trace_dir and not metrics_dir and not telemetry.enabled():
        return point.run()
    # Causal IDs arrive explicitly (serial/inline paths) or through the
    # env overlay mirrored into forked workers (pool path).
    run_id = run_id or os.environ.get(telemetry.ENV_RUN_ID)
    span_id = span_id or os.environ.get(telemetry.ENV_SPAN_ID)
    slug = point_slug(point)
    # Provenance stamped into the trace/metrics artifacts: two sweeps
    # sharing a directory (or two pool workers racing on one) stay
    # distinguishable and joinable by run/span, not just filename.
    provenance: Dict[str, Any] = {"pid": os.getpid(), "point_slug": slug}
    if run_id:
        provenance["run_id"] = run_id
    if span_id:
        provenance["span_id"] = span_id
    telemetry.emit("point_start", run_id=run_id, span_id=span_id,
                   point_slug=slug, experiment=point.experiment)
    # Per-point tracer/metrics registry, installed process-globally so the
    # Systems and schedulers the point builds internally pick them up.
    # Works identically in the parent (serial path) and in forked workers,
    # which inherit the environment variables.
    tracer = None
    previous_observer = obs.current_observer()
    if trace_dir:
        os.makedirs(trace_dir, exist_ok=True)
        tracer = obs.Tracer()
        obs.install(tracer)
    registry = None
    previous_registry = obs_metrics.current()
    if metrics_dir:
        os.makedirs(metrics_dir, exist_ok=True)
        registry = obs_metrics.install(obs_metrics.MetricsRegistry())
    started = time.perf_counter()
    warm_before = warmstore.counters()
    ok = True
    try:
        if registry is not None:
            with registry.profiler.phase("point"):
                return point.run()
        return point.run()
    except BaseException:
        ok = False
        raise
    finally:
        warm_after = warmstore.counters()
        telemetry.emit(
            "point_end", run_id=run_id, span_id=span_id, point_slug=slug,
            ok=ok, elapsed_s=round(time.perf_counter() - started, 6),
            warm_hits=warm_after["hits"] - warm_before["hits"],
            warm_misses=warm_after["misses"] - warm_before["misses"])
        if tracer is not None:
            if previous_observer is not None:
                obs.install(previous_observer)
            else:
                obs.uninstall()
            # Written even when the point raises — a partial trace is
            # exactly what debugging a failed point needs.
            tracer.write_chrome(_trace_path(trace_dir, point),
                                extra=provenance)
        if registry is not None:
            if previous_registry is not None:
                obs_metrics.install(previous_registry)
            else:
                obs_metrics.uninstall()
            registry.write_json(metrics_path(metrics_dir, point),
                                extra={"label": point.describe(),
                                       **provenance})


def _pool_worker_main(conn) -> None:
    """Loop of one persistent fork-server worker.

    Tasks arrive as ``(seq, point, env)`` where ``env`` is the parent's
    ``REPRO_*`` environment at dispatch time; the worker mirrors it
    exactly (removing stale keys) before running the point, so a worker
    forked long ago behaves like one forked for this sweep.  Replies are
    ``(seq, ok, payload, warm_delta)`` — ``payload`` is the point result
    or the raised exception, ``warm_delta`` the warm-store hit/miss
    counts this point generated.  ``None`` shuts the worker down.
    """
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break
        if task is None:
            break
        seq, point, env = task
        for key in [k for k in os.environ
                    if k.startswith("REPRO_") and k not in env]:
            del os.environ[key]
        os.environ.update(env)
        before = warmstore.counters()
        ok = True
        try:
            payload: Any = _run_point(point)
        except BaseException as exc:  # transported to the parent
            ok = False
            payload = exc
        after = warmstore.counters()
        warm_delta = {key: after[key] - before[key] for key in after}
        try:
            conn.send((seq, ok, payload, warm_delta))
        except Exception as exc:  # unpicklable payload/exception
            conn.send((seq, False,
                       RuntimeError(f"unpicklable point result: {exc}"),
                       warm_delta))
    conn.close()


def pool_task_env() -> Dict[str, str]:
    """The ``REPRO_*`` environment overlay sent with every pool task, so
    long-forked workers mirror the parent's current settings."""
    return {key: value for key, value in os.environ.items()
            if key.startswith("REPRO_")}


class WorkerHandle:
    """One persistent fork-server worker: process plus duplex pipe.

    Handles are *leased* for exactly one in-flight task at a time —
    :meth:`WorkerPool.checkout` marks the lease, :meth:`WorkerPool.checkin`
    releases it.  :meth:`fileno` exposes the reply pipe so an event loop
    can await the worker's answer without blocking (the ``repro serve``
    scheduler registers it with ``loop.add_reader``); the blocking
    :meth:`WorkerPool.run` path waits on the same pipe via
    ``multiprocessing.connection.wait``.
    """

    __slots__ = ("process", "conn", "leased")

    def __init__(self, process: Any, conn: Any) -> None:
        self.process = process
        self.conn = conn
        self.leased = False

    def fileno(self) -> int:
        return self.conn.fileno()

    def alive(self) -> bool:
        return self.process.is_alive()

    def send_task(self, seq: int, point: SweepPoint,
                  env: Optional[Dict[str, str]] = None) -> None:
        self.conn.send((seq, point, pool_task_env() if env is None else env))

    def recv(self) -> Tuple[int, bool, Any, Dict[str, int]]:
        """The worker's next ``(seq, ok, payload, warm_delta)`` reply.
        Raises ``EOFError``/``OSError`` when the worker died."""
        return self.conn.recv()


class WorkerPool:
    """Reusable fork-server pool of :func:`_pool_worker_main` processes.

    Workers persist across :func:`run_sweep` calls (that is the point:
    their in-memory warm-state LRUs keep paying off), grow on demand up
    to the ``jobs`` currently requested, and are torn down via
    :func:`shutdown_pool` (registered ``atexit``).  The pool no longer
    only grows: :meth:`run` trims back to the requested parallelism when
    it finishes and :meth:`shrink` retires idle workers on demand, so one
    wide sweep does not pin worker processes (and their warm memos) at
    the high-water mark forever.

    Two dispatch seams share the same workers: the blocking :meth:`run`
    loop used by :func:`run_sweep`, and the lease-based
    :meth:`checkout`/:meth:`checkin`/:meth:`retire` trio the async
    ``repro serve`` scheduler drives one task at a time.
    """

    def __init__(self) -> None:
        methods = multiprocessing.get_all_start_methods()
        # fork: workers inherit the parent's imports and sys.path, so
        # even point functions defined in scripts resolve.
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        self._workers: List[WorkerHandle] = []

    def __len__(self) -> int:
        return len(self._workers)

    def _spawn(self) -> WorkerHandle:
        try:
            parent_conn, child_conn = self._context.Pipe()
            process = self._context.Process(target=_pool_worker_main,
                                            args=(child_conn,), daemon=True)
            process.start()
        except (OSError, PermissionError, ImportError, RuntimeError) as exc:
            raise PoolUnavailableError(
                f"cannot spawn worker: {type(exc).__name__}: {exc}") from exc
        child_conn.close()
        return WorkerHandle(process, parent_conn)

    def ensure(self, count: int) -> None:
        """Grow the pool to at least ``count`` live workers."""
        self._reap_dead()
        while len(self._workers) < count:
            self._workers.append(self._spawn())

    def _reap_dead(self) -> None:
        for handle in [h for h in self._workers
                       if not h.leased and not h.alive()]:
            self._dismiss(handle)

    # -- lease-based dispatch (the async scheduler's seam) --------------

    def checkout(self, spawn: bool = True) -> Optional[WorkerHandle]:
        """Lease an idle worker (spawning one when ``spawn`` and none is
        free); ``None`` when every worker is busy and ``spawn`` is off."""
        self._reap_dead()
        for handle in self._workers:
            if not handle.leased:
                handle.leased = True
                return handle
        if not spawn:
            return None
        handle = self._spawn()
        handle.leased = True
        self._workers.append(handle)
        return handle

    def checkin(self, handle: WorkerHandle) -> None:
        """Release a leased worker back to the idle set."""
        handle.leased = False

    def retire(self, handle: WorkerHandle) -> None:
        """Remove a (possibly dead) worker from the pool and reap its
        process; the caller's lease, if any, is void afterwards."""
        self._dismiss(handle)

    def _dismiss(self, handle: WorkerHandle) -> None:
        try:
            handle.conn.send(None)
        except Exception:
            pass
        handle.process.join(timeout=2.0)
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=2.0)
        try:
            handle.conn.close()
        except Exception:
            pass
        handle.leased = False
        try:
            self._workers.remove(handle)
        except ValueError:
            pass

    def shrink(self, target: int) -> int:
        """Retire idle workers until at most ``target`` remain (leased
        workers are never touched); returns how many were retired.
        Newest workers go first, so the longest-lived — warmest — memos
        survive."""
        target = max(0, int(target))
        removed = 0
        for handle in reversed(list(self._workers)):
            if len(self._workers) <= target:
                break
            if handle.leased:
                continue
            self._dismiss(handle)
            removed += 1
        return removed

    # -- blocking batch dispatch (run_sweep's seam) ---------------------

    def run(self, points: Sequence[SweepPoint], jobs: int,
            on_result: Optional[Callable[[int, Any, Dict[str, int]],
                                         None]] = None,
            span_ids: Optional[Sequence[Optional[str]]] = None,
            ) -> List[Tuple[Any, Dict[str, int]]]:
        """Execute ``points``; returns ``(payload, warm_delta)`` pairs in
        point order.  Re-raises the first failing point's exception after
        draining in-flight tasks (the pool stays reusable) — but first
        every successfully completed payload is handed to ``on_result``
        (called as ``on_result(index, payload, warm_delta)`` as results
        arrive), so callers can commit finished work before the raise and
        a retried sweep never redoes completed points.

        ``span_ids`` aligns with ``points``: each task's env overlay
        carries its span so the worker's telemetry records chain with the
        parent's (see :mod:`repro.obs.telemetry`)."""
        count = min(jobs, len(points))
        env = pool_task_env()
        # A stale ambient span must never leak into workers; each task
        # gets its own (or none).
        env.pop(telemetry.ENV_SPAN_ID, None)
        spans: List[Optional[str]] = (list(span_ids) if span_ids is not None
                                      else [None] * len(points))
        tele = telemetry.enabled()
        health = FleetHealth() if tele else None
        out: List[Optional[Tuple[Any, Dict[str, int]]]] = [None] * len(points)
        failure: Optional[BaseException] = None
        next_index = 0
        # checkout (not a raw scan) so concurrent lease holders — e.g. the
        # serve scheduler sharing this pool — never starve a blocking run:
        # missing idle workers are spawned on demand.
        idle: List[WorkerHandle] = []
        busy: Dict[Any, WorkerHandle] = {}  # conn -> handle
        try:
            while len(idle) < count:
                idle.append(self.checkout())
            while True:
                while idle and next_index < len(points) and failure is None:
                    handle = idle.pop()
                    span = spans[next_index]
                    handle.send_task(
                        next_index, points[next_index],
                        env if span is None
                        else {**env, telemetry.ENV_SPAN_ID: span})
                    if health is not None:
                        slug = point_slug(points[next_index])
                        health.record_dispatch(
                            handle.process.pid, span or f"seq-{next_index}",
                            point_slug=slug)
                        telemetry.emit("point_dispatched", span_id=span,
                                       point_slug=slug,
                                       worker_pid=handle.process.pid)
                    busy[handle.conn] = handle
                    next_index += 1
                if not busy:
                    break
                for conn in mp_connection.wait(list(busy)):
                    seq, ok, payload, warm_delta = conn.recv()
                    handle = busy.pop(conn)
                    idle.append(handle)
                    if health is not None:
                        elapsed, straggler = health.record_done(
                            handle.process.pid, spans[seq] or f"seq-{seq}",
                            ok=ok)
                        if straggler:
                            telemetry.emit(
                                "point_straggler", span_id=spans[seq],
                                point_slug=point_slug(points[seq]),
                                worker_pid=handle.process.pid,
                                age_s=round(elapsed, 6),
                                threshold_s=health.threshold())
                    if ok:
                        out[seq] = (payload, warm_delta)
                        if on_result is not None:
                            on_result(seq, payload, warm_delta)
                    else:
                        if tele:
                            telemetry.emit(
                                "point_failed", span_id=spans[seq],
                                point_slug=point_slug(points[seq]),
                                error=f"{type(payload).__name__}: {payload}")
                        if failure is None:
                            failure = payload
        except (OSError, EOFError, BrokenPipeError) as exc:
            # A worker or pipe died: the pool is unusable.  Tear it down
            # so the next sweep starts fresh, and let run_sweep fall back
            # to serial execution of the points still missing.
            telemetry.log("warning", "runner",
                          "worker pool failed; tearing it down",
                          error=f"{type(exc).__name__}: {exc}")
            self.shutdown()
            raise PoolUnavailableError(f"worker pool failed: {exc}") from exc
        finally:
            for handle in idle + list(busy.values()):
                handle.leased = False
            # Resident footprint tracks the *current* request, not the
            # historical high-water mark: idle workers beyond the
            # parallelism just asked for are reaped.
            self.shrink(jobs)
        if failure is not None:
            raise failure
        return [pair for pair in out]  # type: ignore[misc]

    def shutdown(self) -> None:
        for handle in list(self._workers):
            self._dismiss(handle)
        self._workers = []


_POOL: Optional[WorkerPool] = None


def _get_pool() -> WorkerPool:
    global _POOL
    if _POOL is None:
        _POOL = WorkerPool()
    return _POOL


def get_pool() -> WorkerPool:
    """The process-wide persistent :class:`WorkerPool`, created on first
    use.  ``run_sweep`` and the ``repro serve`` scheduler share it, so a
    daemon's workers keep serving ad-hoc sweeps' warm state and vice
    versa."""
    return _get_pool()


def shutdown_pool() -> None:
    """Terminate the persistent worker pool (no-op when none exists).
    A later parallel sweep transparently builds a fresh pool."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None


atexit.register(shutdown_pool)


def _run_parallel(points: Sequence[SweepPoint], jobs: int,
                  on_result: Optional[Callable[[int, Any, Dict[str, int]],
                                               None]] = None,
                  span_ids: Optional[Sequence[Optional[str]]] = None,
                  ) -> List[Tuple[Any, Dict[str, int]]]:
    """Execute ``points`` on the persistent pool; results in point order."""
    return _get_pool().run(points, jobs, on_result=on_result,
                           span_ids=span_ids)


def run_sweep(points: Sequence[SweepPoint], *, jobs: Optional[int] = None,
              cache: Optional[ResultCache] = None,
              trace_dir: Optional[str] = None,
              metrics_dir: Optional[str] = None,
              warm_dir: Optional[str] = None,
              telemetry_dir: Optional[str] = None) -> SweepOutcome:
    """Run every point, in parallel when possible, and return a
    :class:`SweepOutcome` whose ``results`` align with ``points``.

    Args:
        points: the sweep; order is preserved in the outcome.
        jobs: worker processes (``None`` → :func:`default_jobs`;
            ``1`` → serial in-process execution).
        cache: optional result cache — cached points never reach a worker,
            and freshly computed payloads are stored back.
        trace_dir: when given, every executed point writes a Chrome-trace
            JSON into this directory (exported as ``REPRO_TRACE_DIR`` for
            the duration of the sweep so worker processes see it too).
            Cached points are not re-traced.
        metrics_dir: when given, every executed point runs under a fresh
            :class:`repro.obs.MetricsRegistry` and writes its metrics
            JSON (counters, histograms, phase profile) into this
            directory, keyed like the trace files (exported as
            ``REPRO_METRICS_DIR``).  Cached points are not re-measured.
        warm_dir: when given, points resolve a shared
            :class:`repro.exp.warmstore.WarmStore` rooted here (exported
            as ``REPRO_WARMSTORE_DIR``): warm-up snapshots and
            deterministic artifacts are loaded instead of recomputed, and
            the outcome's ``warm_hits``/``warm_misses`` report the reuse.
        telemetry_dir: when given, the sweep appends causal lifecycle
            records (queued/dispatched/executed/committed per point) to
            NDJSON files in this directory (exported as
            ``REPRO_TELEMETRY_DIR``); see :mod:`repro.obs.telemetry`.
    """
    started = time.perf_counter()
    overlay = {}
    if trace_dir is not None:
        overlay["REPRO_TRACE_DIR"] = trace_dir
    if metrics_dir is not None:
        overlay["REPRO_METRICS_DIR"] = metrics_dir
    if warm_dir is not None:
        overlay["REPRO_WARMSTORE_DIR"] = warm_dir
    if telemetry_dir is not None:
        overlay[telemetry.ENV_TELEMETRY_DIR] = telemetry_dir
    if overlay:
        saved = {key: os.environ.get(key) for key in overlay}
        os.environ.update(overlay)
        try:
            outcome = run_sweep(points, jobs=jobs, cache=cache)
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
        outcome.elapsed_seconds = time.perf_counter() - started
        return outcome
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    # Every sweep gets a fresh causal run ID, exported so pool workers
    # (which mirror REPRO_* per task) stamp it into their records and
    # artifacts even when the event log itself is off.
    run_id = telemetry.new_run_id()
    saved_run = os.environ.get(telemetry.ENV_RUN_ID)
    os.environ[telemetry.ENV_RUN_ID] = run_id
    try:
        return _run_sweep_body(points, jobs, cache, run_id, started)
    finally:
        if saved_run is None:
            os.environ.pop(telemetry.ENV_RUN_ID, None)
        else:
            os.environ[telemetry.ENV_RUN_ID] = saved_run


def _run_sweep_body(points: Sequence[SweepPoint], jobs: int,
                    cache: Optional[ResultCache], run_id: str,
                    started: float) -> SweepOutcome:
    results: List[Any] = [None] * len(points)
    pending: List[int] = []
    cache_hits = 0
    for index, point in enumerate(points):
        if cache is not None:
            hit = cache.get(point.experiment, point.params)
            if not ResultCache.is_missing(hit):
                results[index] = hit
                cache_hits += 1
                telemetry.emit("point_cached", run_id=run_id,
                               point_slug=point_slug(point))
                continue
        pending.append(index)

    parallel = False
    fallback_reason: Optional[str] = None
    warm_hits = 0
    warm_misses = 0
    telemetry.emit("run_start", run_id=run_id, points=len(points),
                   pending=len(pending), cache_hits=cache_hits, jobs=jobs)

    if pending:
        todo = [points[i] for i in pending]
        completed = [False] * len(todo)
        # One span per executed point: its whole lifecycle — here and in
        # whichever process runs it — chains under this ID.
        spans = [telemetry.new_span_id() for _ in todo]
        for pos, point in enumerate(todo):
            telemetry.emit("point_queued", run_id=run_id, span_id=spans[pos],
                           point_slug=point_slug(point),
                           experiment=point.experiment)

        def _commit(pos: int, payload: Any) -> None:
            # Results are committed (and cached) as they arrive, not after
            # the whole sweep: when one point fails, everything that
            # finished stays finished and a retried sweep never redoes it.
            index = pending[pos]
            results[index] = payload
            completed[pos] = True
            if cache is not None:
                cache.put(points[index].experiment, points[index].params,
                          payload)
            telemetry.emit("point_committed", run_id=run_id,
                           span_id=spans[pos],
                           point_slug=point_slug(points[index]))

        def _parallel_result(pos: int, payload: Any,
                             delta: Dict[str, int]) -> None:
            nonlocal warm_hits, warm_misses
            warm_hits += delta["hits"]
            warm_misses += delta["misses"]
            _commit(pos, payload)

        def _run_serial_committing(positions: Sequence[int]) -> None:
            nonlocal warm_hits, warm_misses
            for pos in positions:
                telemetry.emit("point_dispatched", run_id=run_id,
                               span_id=spans[pos],
                               point_slug=point_slug(todo[pos]),
                               worker_pid=os.getpid())
                before = warmstore.counters()
                try:
                    payload = _run_point(todo[pos], run_id=run_id,
                                         span_id=spans[pos])
                except BaseException as exc:
                    telemetry.emit(
                        "point_failed", run_id=run_id, span_id=spans[pos],
                        point_slug=point_slug(todo[pos]),
                        error=f"{type(exc).__name__}: {exc}")
                    raise
                finally:
                    after = warmstore.counters()
                    warm_hits += after["hits"] - before["hits"]
                    warm_misses += after["misses"] - before["misses"]
                _commit(pos, payload)

        if jobs > 1 and len(todo) > 1:
            try:
                try:
                    _run_parallel(todo, jobs, on_result=_parallel_result,
                                  span_ids=spans)
                    parallel = True
                finally:
                    # Workers counted their warm events in their own
                    # metrics registries; mirror whatever completed into
                    # the parent's, like warmstore.record_event does on
                    # the serial path.
                    registry = obs_metrics.current()
                    if registry is not None:
                        if warm_hits:
                            registry.counter("warmstore.hits").inc(warm_hits)
                        if warm_misses:
                            registry.counter("warmstore.misses").inc(
                                warm_misses)
            except (OSError, PermissionError, PoolUnavailableError,
                    ImportError) as exc:
                # Worker processes unavailable (restricted sandbox, missing
                # semaphores, mid-sweep pool death, ...): identical
                # results, just serially — and only for the points that
                # did not already complete in a worker.  A *point* raising
                # is not an infrastructure failure and propagates instead.
                fallback_reason = f"{type(exc).__name__}: {exc}"
                telemetry.log("warning", "runner",
                              "worker pool unavailable; falling back to "
                              "serial execution", reason=fallback_reason)
                remaining = [pos for pos, done in enumerate(completed)
                             if not done]
                for pos in remaining:
                    telemetry.emit("point_retried", run_id=run_id,
                                   span_id=spans[pos],
                                   point_slug=point_slug(todo[pos]),
                                   reason="pool_fallback")
                _run_serial_committing(remaining)
        else:
            _run_serial_committing(range(len(todo)))

    elapsed = time.perf_counter() - started
    telemetry.emit("run_end", run_id=run_id, ok=True,
                   elapsed_s=round(elapsed, 6), parallel=parallel,
                   fallback_reason=fallback_reason,
                   warm_hits=warm_hits, warm_misses=warm_misses)
    return SweepOutcome(
        results=results,
        jobs=jobs,
        parallel=parallel,
        cache_hits=cache_hits,
        cache_misses=len(pending),
        elapsed_seconds=elapsed,
        fallback_reason=fallback_reason,
        warm_hits=warm_hits,
        warm_misses=warm_misses,
        points=tuple(points),
        run_id=run_id,
    )
