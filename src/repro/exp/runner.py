"""Parallel sweep runner.

Fans independent :class:`~repro.exp.sweep.SweepPoint`\\ s out across a
persistent fork-server :class:`WorkerPool`.  Each point constructs its
own ``System`` inside the worker, and every stochastic component of the
simulator is seeded from its config, so parallel results are
bit-identical to serial execution — the runner only changes wall-clock
time, never numbers.

Unlike the per-sweep ``ProcessPoolExecutor`` this replaced, the pool's
workers survive across sweeps: each worker keeps its
:mod:`repro.exp.warmstore` memory LRU of restored snapshots, its
pristine-system pool, and its artifact memos, so a worker that has
already warmed (or loaded) the 64 MB-LLC state serves every subsequent
point sharing that config without re-warming or re-unpickling.  Because
workers fork *before* later environment changes, every task carries a
``REPRO_*`` environment overlay captured in the parent at dispatch time —
trace/metrics/warm-store directories and sanitizer flags behave exactly
as if the worker had been forked fresh.

Degradation is graceful by design: ``jobs=1``, a single pending point, or
an environment where worker processes cannot be spawned (sandboxes without
semaphores, exotic interpreters) all fall back to in-process serial
execution of the exact same point functions; a broken pool is torn down
and the pending points re-run serially.

Observability survives the fan-out: when ``REPRO_TRACE_DIR`` /
``REPRO_METRICS_DIR`` are set (directly, or via
``run_sweep(trace_dir=..., metrics_dir=...)``, which exports them around
the sweep so forked workers inherit them), every point — serial or in a
worker process — runs under a fresh :class:`repro.obs.Tracer` and/or
:class:`repro.obs.MetricsRegistry` and writes its Chrome-trace / metrics
JSON into those directories, named after the point's label (see
:func:`point_slug`).  ``repro report`` joins these files with the sweep
payloads into one run report.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import re
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import (Any, Callable, Dict, List, Iterator, Optional, Sequence,
                    Tuple, Union)

from repro import obs
from repro.exp import warmstore
from repro.exp.cache import ResultCache
from repro.exp.sweep import SweepPoint
from repro.obs import metrics as obs_metrics
from repro.obs import telemetry
from repro.obs.telemetry import FleetHealth


class PoolUnavailableError(RuntimeError):
    """Worker processes cannot be spawned or the pool's pipes broke.

    An *infrastructure* failure, distinct from a sweep point raising: the
    runner falls back to serial in-process execution on this error, while
    a point's own exception propagates to the caller (after completed
    in-flight results have been committed)."""


def default_jobs() -> int:
    """Worker count used when ``jobs`` is not given: the CPUs available to
    *this process*.  ``os.process_cpu_count()`` (Python 3.13+) already
    honours CPU affinity; on older interpreters fall back to
    ``len(os.sched_getaffinity(0))`` so cgroup- or taskset-restricted CI
    boxes don't oversubscribe the pool, and only then to the raw
    ``os.cpu_count()`` (platforms without affinity, e.g. macOS)."""
    counter = getattr(os, "process_cpu_count", None)
    if counter is None:
        affinity = getattr(os, "sched_getaffinity", None)
        if affinity is not None:
            try:
                return max(1, len(affinity(0)))
            except OSError:
                pass
        counter = os.cpu_count
    return max(1, counter() or 1)


@dataclass(frozen=True)
class StragglerPolicy:
    """When and how the pool re-dispatches flagged stragglers.

    A point in flight longer than ``max(factor × running-median,
    min_seconds)`` (after ``min_samples`` completions warmed the median)
    is speculatively re-dispatched to an idle worker; the first copy to
    finish wins and the losing copies are killed.  ``max_twins`` bounds
    speculative copies per point; the overall per-point retry budget
    (``run_sweep(max_point_retries=...)``) bounds re-dispatches *plus*
    serial-fallback retries together."""

    factor: float = 4.0
    min_seconds: float = 1.0
    min_samples: int = 4
    max_twins: int = 1
    enabled: bool = True

    def poll_seconds(self) -> float:
        """How often the blocking pool loop wakes to scan for stragglers
        (a fraction of ``min_seconds``, clamped to a sane band)."""
        return min(0.5, max(0.02, self.min_seconds / 4.0))

    def health(self) -> FleetHealth:
        return FleetHealth(straggler_factor=self.factor,
                           min_samples=self.min_samples,
                           min_seconds=self.min_seconds)


@dataclass
class SweepOutcome:
    """Results of one sweep, in point order, plus execution metadata."""

    results: List[Any]
    jobs: int
    parallel: bool
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_seconds: float = 0.0
    fallback_reason: Optional[str] = None
    #: Warm-state reuse during the executed (non-result-cached) points:
    #: snapshot/artifact loads and pristine-system restores served from
    #: the :mod:`repro.exp.warmstore` layers vs. paid from scratch.
    warm_hits: int = 0
    warm_misses: int = 0
    points: Sequence[SweepPoint] = field(default_factory=tuple)
    #: Causal run ID minted for this sweep — every telemetry record,
    #: stamped trace, and stamped metrics JSON the sweep produced carries
    #: it (see :mod:`repro.obs.telemetry`).
    run_id: Optional[str] = None
    #: Which :class:`ExecutionBackend` actually ran the pending points
    #: (``None`` when everything came from the result cache).
    backend: Optional[str] = None
    #: Speculative straggler re-dispatches the pool performed.
    redispatches: int = 0

    def __iter__(self) -> Iterator[Any]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> Any:
        return self.results[index]


def point_slug(point: SweepPoint) -> str:
    """Filesystem-safe name for a point's per-point artifacts (trace and
    metrics files share it, so reports can join them by label)."""
    slug = re.sub(r"[^A-Za-z0-9._=-]+", "_", point.describe()).strip("_")
    return slug[:120] or "point"


def _trace_path(trace_dir: str, point: SweepPoint) -> str:
    return os.path.join(trace_dir, f"{point_slug(point)}.trace.json")


def metrics_path(metrics_dir: str, point: SweepPoint) -> str:
    """Where a point's metrics JSON lands under ``metrics_dir``."""
    return os.path.join(metrics_dir, f"{point_slug(point)}.metrics.json")


def _run_point(point: SweepPoint, run_id: Optional[str] = None,
               span_id: Optional[str] = None) -> Any:
    trace_dir = os.environ.get("REPRO_TRACE_DIR")
    metrics_dir = os.environ.get("REPRO_METRICS_DIR")
    if not trace_dir and not metrics_dir and not telemetry.enabled():
        return point.run()
    # Causal IDs arrive explicitly (serial/inline paths) or through the
    # env overlay mirrored into forked workers (pool path).
    run_id = run_id or os.environ.get(telemetry.ENV_RUN_ID)
    span_id = span_id or os.environ.get(telemetry.ENV_SPAN_ID)
    slug = point_slug(point)
    # Provenance stamped into the trace/metrics artifacts: two sweeps
    # sharing a directory (or two pool workers racing on one) stay
    # distinguishable and joinable by run/span, not just filename.
    provenance: Dict[str, Any] = {"pid": os.getpid(), "point_slug": slug}
    if run_id:
        provenance["run_id"] = run_id
    if span_id:
        provenance["span_id"] = span_id
    telemetry.emit("point_start", run_id=run_id, span_id=span_id,
                   point_slug=slug, experiment=point.experiment)
    # Per-point tracer/metrics registry, installed process-globally so the
    # Systems and schedulers the point builds internally pick them up.
    # Works identically in the parent (serial path) and in forked workers,
    # which inherit the environment variables.
    tracer = None
    previous_observer = obs.current_observer()
    if trace_dir:
        os.makedirs(trace_dir, exist_ok=True)
        tracer = obs.Tracer()
        obs.install(tracer)
    registry = None
    previous_registry = obs_metrics.current()
    if metrics_dir:
        os.makedirs(metrics_dir, exist_ok=True)
        registry = obs_metrics.install(obs_metrics.MetricsRegistry())
    started = time.perf_counter()
    warm_before = warmstore.counters()
    ok = True
    try:
        if registry is not None:
            with registry.profiler.phase("point"):
                return point.run()
        return point.run()
    except BaseException:
        ok = False
        raise
    finally:
        warm_after = warmstore.counters()
        telemetry.emit(
            "point_end", run_id=run_id, span_id=span_id, point_slug=slug,
            ok=ok, elapsed_s=round(time.perf_counter() - started, 6),
            warm_hits=warm_after["hits"] - warm_before["hits"],
            warm_misses=warm_after["misses"] - warm_before["misses"])
        if tracer is not None:
            if previous_observer is not None:
                obs.install(previous_observer)
            else:
                obs.uninstall()
            # Written even when the point raises — a partial trace is
            # exactly what debugging a failed point needs.
            tracer.write_chrome(_trace_path(trace_dir, point),
                                extra=provenance)
        if registry is not None:
            if previous_registry is not None:
                obs_metrics.install(previous_registry)
            else:
                obs_metrics.uninstall()
            registry.write_json(metrics_path(metrics_dir, point),
                                extra={"label": point.describe(),
                                       **provenance})


def _pool_worker_main(conn) -> None:
    """Loop of one persistent fork-server worker.

    Tasks arrive as ``(seq, point, env)`` where ``env`` is the parent's
    ``REPRO_*`` environment at dispatch time; the worker mirrors it
    exactly (removing stale keys) before running the point, so a worker
    forked long ago behaves like one forked for this sweep.  Replies are
    ``(seq, ok, payload, warm_delta)`` — ``payload`` is the point result
    or the raised exception, ``warm_delta`` the warm-store hit/miss
    counts this point generated.  ``None`` shuts the worker down.
    """
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break
        if task is None:
            break
        seq, point, env = task
        for key in [k for k in os.environ
                    if k.startswith("REPRO_") and k not in env]:
            del os.environ[key]
        os.environ.update(env)
        before = warmstore.counters()
        ok = True
        try:
            payload: Any = _run_point(point)
        except BaseException as exc:  # transported to the parent
            ok = False
            payload = exc
        after = warmstore.counters()
        warm_delta = {key: after[key] - before[key] for key in after}
        try:
            conn.send((seq, ok, payload, warm_delta))
        except Exception as exc:  # unpicklable payload/exception
            conn.send((seq, False,
                       RuntimeError(f"unpicklable point result: {exc}"),
                       warm_delta))
    conn.close()


def pool_task_env() -> Dict[str, str]:
    """The ``REPRO_*`` environment overlay sent with every pool task, so
    long-forked workers mirror the parent's current settings."""
    return {key: value for key, value in os.environ.items()
            if key.startswith("REPRO_")}


class WorkerHandle:
    """One persistent fork-server worker: process plus duplex pipe.

    Handles are *leased* for exactly one in-flight task at a time —
    :meth:`WorkerPool.checkout` marks the lease, :meth:`WorkerPool.checkin`
    releases it.  :meth:`fileno` exposes the reply pipe so an event loop
    can await the worker's answer without blocking (the ``repro serve``
    scheduler registers it with ``loop.add_reader``); the blocking
    :meth:`WorkerPool.run` path waits on the same pipe via
    ``multiprocessing.connection.wait``.
    """

    __slots__ = ("process", "conn", "leased")

    def __init__(self, process: Any, conn: Any) -> None:
        self.process = process
        self.conn = conn
        self.leased = False

    def fileno(self) -> int:
        return self.conn.fileno()

    def alive(self) -> bool:
        return self.process.is_alive()

    def send_task(self, seq: int, point: SweepPoint,
                  env: Optional[Dict[str, str]] = None) -> None:
        self.conn.send((seq, point, pool_task_env() if env is None else env))

    def recv(self) -> Tuple[int, bool, Any, Dict[str, int]]:
        """The worker's next ``(seq, ok, payload, warm_delta)`` reply.
        Raises ``EOFError``/``OSError`` when the worker died."""
        return self.conn.recv()


class WorkerPool:
    """Reusable fork-server pool of :func:`_pool_worker_main` processes.

    Workers persist across :func:`run_sweep` calls (that is the point:
    their in-memory warm-state LRUs keep paying off), grow on demand up
    to the ``jobs`` currently requested, and are torn down via
    :func:`shutdown_pool` (registered ``atexit``).  The pool no longer
    only grows: :meth:`run` trims back to the requested parallelism when
    it finishes and :meth:`shrink` retires idle workers on demand, so one
    wide sweep does not pin worker processes (and their warm memos) at
    the high-water mark forever.

    Two dispatch seams share the same workers: the blocking :meth:`run`
    loop used by :func:`run_sweep`, and the lease-based
    :meth:`checkout`/:meth:`checkin`/:meth:`retire` trio the async
    ``repro serve`` scheduler drives one task at a time.
    """

    def __init__(self) -> None:
        methods = multiprocessing.get_all_start_methods()
        # fork: workers inherit the parent's imports and sys.path, so
        # even point functions defined in scripts resolve.
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        self._workers: List[WorkerHandle] = []

    def __len__(self) -> int:
        return len(self._workers)

    def _spawn(self) -> WorkerHandle:
        try:
            parent_conn, child_conn = self._context.Pipe()
            process = self._context.Process(target=_pool_worker_main,
                                            args=(child_conn,), daemon=True)
            process.start()
        except (OSError, PermissionError, ImportError, RuntimeError) as exc:
            raise PoolUnavailableError(
                f"cannot spawn worker: {type(exc).__name__}: {exc}") from exc
        child_conn.close()
        return WorkerHandle(process, parent_conn)

    def ensure(self, count: int) -> None:
        """Grow the pool to at least ``count`` live workers."""
        self._reap_dead()
        while len(self._workers) < count:
            self._workers.append(self._spawn())

    def _reap_dead(self) -> None:
        for handle in [h for h in self._workers
                       if not h.leased and not h.alive()]:
            self._dismiss(handle)

    # -- lease-based dispatch (the async scheduler's seam) --------------

    def checkout(self, spawn: bool = True) -> Optional[WorkerHandle]:
        """Lease an idle worker (spawning one when ``spawn`` and none is
        free); ``None`` when every worker is busy and ``spawn`` is off."""
        self._reap_dead()
        for handle in self._workers:
            if not handle.leased:
                handle.leased = True
                return handle
        if not spawn:
            return None
        handle = self._spawn()
        handle.leased = True
        self._workers.append(handle)
        return handle

    def checkin(self, handle: WorkerHandle) -> None:
        """Release a leased worker back to the idle set."""
        handle.leased = False

    def retire(self, handle: WorkerHandle) -> None:
        """Remove a (possibly dead) worker from the pool and reap its
        process; the caller's lease, if any, is void afterwards."""
        self._dismiss(handle)

    def kill(self, handle: WorkerHandle) -> None:
        """Terminate a worker *immediately* (no graceful drain, no
        multi-second join) — used to cancel the losing copy of a
        speculatively re-dispatched point the moment its twin commits.
        The worker's warm memos die with it; that is the accepted price
        of not waiting out a straggler."""
        try:
            handle.process.terminate()
        except Exception:
            pass
        try:
            handle.conn.close()
        except Exception:
            pass
        handle.process.join(timeout=0.05)
        handle.leased = False
        try:
            self._workers.remove(handle)
        except ValueError:
            pass

    def _dismiss(self, handle: WorkerHandle) -> None:
        try:
            handle.conn.send(None)
        except Exception:
            pass
        handle.process.join(timeout=2.0)
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=2.0)
        try:
            handle.conn.close()
        except Exception:
            pass
        handle.leased = False
        try:
            self._workers.remove(handle)
        except ValueError:
            pass

    def shrink(self, target: int) -> int:
        """Retire idle workers until at most ``target`` remain (leased
        workers are never touched); returns how many were retired.
        Newest workers go first, so the longest-lived — warmest — memos
        survive."""
        target = max(0, int(target))
        removed = 0
        for handle in reversed(list(self._workers)):
            if len(self._workers) <= target:
                break
            if handle.leased:
                continue
            self._dismiss(handle)
            removed += 1
        return removed

    # -- blocking batch dispatch (run_sweep's seam) ---------------------

    def run(self, points: Sequence[SweepPoint], jobs: int,
            on_result: Optional[Callable[[int, Any, Dict[str, int]],
                                         None]] = None,
            span_ids: Optional[Sequence[Optional[str]]] = None,
            straggler: Optional[StragglerPolicy] = None,
            allow_retry: Optional[Callable[[int, str], bool]] = None,
            stats: Optional[Dict[str, int]] = None,
            ) -> List[Tuple[Any, Dict[str, int]]]:
        """Execute ``points``; returns ``(payload, warm_delta)`` pairs in
        point order.  Re-raises the first failing point's exception after
        draining in-flight tasks (the pool stays reusable) — but first
        every successfully completed payload is handed to ``on_result``
        (called as ``on_result(index, payload, warm_delta)`` as results
        arrive), so callers can commit finished work before the raise and
        a retried sweep never redoes completed points.

        ``span_ids`` aligns with ``points``: each task's env overlay
        carries its span so the worker's telemetry records chain with the
        parent's (see :mod:`repro.obs.telemetry`).

        With a :class:`StragglerPolicy`, the loop polls in-flight ages
        against the running-median threshold and speculatively
        re-dispatches flagged points to idle workers: first copy to
        finish wins, losing copies are killed (:meth:`kill`) the moment
        the winner's reply lands, so exactly one result per point ever
        reaches ``on_result``.  ``allow_retry(seq, reason)`` consults the
        caller's per-point retry budget before each re-dispatch; ``stats``
        (when given) receives a ``redispatches`` count."""
        count = min(jobs, len(points))
        env = pool_task_env()
        # A stale ambient span must never leak into workers; each task
        # gets its own (or none).
        env.pop(telemetry.ENV_SPAN_ID, None)
        spans: List[Optional[str]] = (list(span_ids) if span_ids is not None
                                      else [None] * len(points))
        tele = telemetry.enabled()
        policy = straggler if (straggler is not None
                               and straggler.enabled) else None
        health: Optional[FleetHealth]
        if policy is not None:
            health = policy.health()
        else:
            health = FleetHealth() if tele else None
        poll = policy.poll_seconds() if policy is not None else None
        out: List[Optional[Tuple[Any, Dict[str, int]]]] = [None] * len(points)
        failure: Optional[BaseException] = None
        next_index = 0
        redispatches = 0
        done: set = set()  # seqs whose winning result was delivered
        # conn -> (seq, flight_key, is_twin); flight keys ("<span>#rN" for
        # speculative copies) keep every live copy distinct in FleetHealth.
        flights: Dict[Any, Tuple[int, str, bool]] = {}
        active: Dict[int, List[Any]] = {}  # seq -> conns racing on it
        twins_sent: Dict[int, int] = {}
        key_seq: Dict[str, int] = {}
        overdue: List[int] = []  # flagged seqs awaiting an idle worker
        failed_once: Dict[int, BaseException] = {}
        # checkout (not a raw scan) so concurrent lease holders — e.g. the
        # serve scheduler sharing this pool — never starve a blocking run:
        # missing idle workers are spawned on demand.
        idle: List[WorkerHandle] = []
        busy: Dict[Any, WorkerHandle] = {}  # conn -> handle

        def _flight_key(seq: int, attempt: int) -> str:
            base = spans[seq] or f"seq-{seq}"
            return base if attempt == 0 else f"{base}#r{attempt}"

        def _dispatch(handle: WorkerHandle, seq: int,
                      twin: bool = False) -> None:
            nonlocal redispatches
            span = spans[seq]
            attempt = twins_sent.get(seq, 0) + 1 if twin else 0
            key = _flight_key(seq, attempt)
            handle.send_task(seq, points[seq],
                             env if span is None
                             else {**env, telemetry.ENV_SPAN_ID: span})
            slug = point_slug(points[seq])
            if health is not None:
                health.record_dispatch(
                    handle.process.pid, key, point_slug=slug,
                    redispatch_of=_flight_key(seq, 0) if twin else None)
            extra = {"redispatch": True} if twin else {}
            telemetry.emit("point_dispatched", span_id=span, point_slug=slug,
                           worker_pid=handle.process.pid, **extra)
            if twin:
                twins_sent[seq] = attempt
                redispatches += 1
            busy[handle.conn] = handle
            flights[handle.conn] = (seq, key, twin)
            key_seq[key] = seq
            active.setdefault(seq, []).append(handle.conn)

        def _cancel_losers(seq: int, winner_conn: Any) -> None:
            for conn in list(active.get(seq, [])):
                if conn is winner_conn:
                    continue
                loser = busy.pop(conn, None)
                info = flights.pop(conn, None)
                if loser is None:
                    continue
                if health is not None and info is not None:
                    health.record_cancelled(loser.process.pid, info[1])
                telemetry.log("info", "runner",
                              "killed losing straggler copy",
                              point_slug=point_slug(points[seq]),
                              worker_pid=loser.process.pid)
                self.kill(loser)
                if next_index < len(points) or overdue:
                    try:
                        idle.append(self.checkout())
                    except PoolUnavailableError:
                        pass
            active.pop(seq, None)

        try:
            while len(idle) < count:
                idle.append(self.checkout())
            while True:
                while idle and next_index < len(points) and failure is None:
                    _dispatch(idle.pop(), next_index)
                    next_index += 1
                if policy is not None and failure is None:
                    for entry in health.flag_stragglers():
                        seq = key_seq.get(entry["span_id"])
                        if seq is None or seq in done:
                            continue
                        telemetry.emit(
                            "point_straggler", span_id=spans[seq],
                            point_slug=point_slug(points[seq]),
                            worker_pid=entry["pid"],
                            age_s=entry["age_s"],
                            threshold_s=entry["threshold_s"])
                        if (entry["span_id"] == _flight_key(seq, 0)
                                and seq not in overdue):
                            overdue.append(seq)
                    while idle and overdue and failure is None:
                        seq = overdue.pop(0)
                        if (seq in done
                                or twins_sent.get(seq, 0) >= policy.max_twins):
                            continue
                        if (allow_retry is not None
                                and not allow_retry(
                                    seq, "straggler_redispatch")):
                            continue
                        telemetry.emit("point_retried", span_id=spans[seq],
                                       point_slug=point_slug(points[seq]),
                                       reason="straggler_redispatch")
                        _dispatch(idle.pop(), seq, twin=True)
                if not busy:
                    break
                ready = mp_connection.wait(list(busy), timeout=poll)
                for conn in ready:
                    handle = busy.pop(conn, None)
                    if handle is None:
                        continue  # a loser killed earlier in this batch
                    seq, key, _is_twin = flights.pop(conn)
                    _reply_seq, ok, payload, warm_delta = conn.recv()
                    idle.append(handle)
                    racing = active.get(seq, [])
                    if conn in racing:
                        racing.remove(conn)
                    if seq in done:
                        # Late loser: its twin already won; the result is
                        # dropped unseen (first-commit-wins).
                        if health is not None:
                            health.record_cancelled(handle.process.pid, key)
                        continue
                    if health is not None:
                        elapsed, straggled = health.record_done(
                            handle.process.pid, key, ok=ok)
                        if straggled:
                            telemetry.emit(
                                "point_straggler", span_id=spans[seq],
                                point_slug=point_slug(points[seq]),
                                worker_pid=handle.process.pid,
                                age_s=round(elapsed, 6),
                                threshold_s=health.threshold())
                    if ok:
                        done.add(seq)
                        failed_once.pop(seq, None)
                        _cancel_losers(seq, conn)
                        out[seq] = (payload, warm_delta)
                        if on_result is not None:
                            on_result(seq, payload, warm_delta)
                    elif racing:
                        # A speculative copy is still running this point;
                        # it may yet succeed, so hold the failure.
                        failed_once[seq] = payload
                    else:
                        telemetry.emit(
                            "point_failed", span_id=spans[seq],
                            point_slug=point_slug(points[seq]),
                            error=f"{type(payload).__name__}: {payload}")
                        if failure is None:
                            failure = payload
        except (OSError, EOFError, BrokenPipeError) as exc:
            # A worker or pipe died: the pool is unusable.  Tear it down
            # so the next sweep starts fresh, and let run_sweep fall back
            # to serial execution of the points still missing.
            telemetry.log("warning", "runner",
                          "worker pool failed; tearing it down",
                          error=f"{type(exc).__name__}: {exc}")
            self.shutdown()
            raise PoolUnavailableError(f"worker pool failed: {exc}") from exc
        finally:
            if stats is not None:
                stats["redispatches"] = redispatches
            for handle in idle + list(busy.values()):
                handle.leased = False
            # Resident footprint tracks the *current* request, not the
            # historical high-water mark: idle workers beyond the
            # parallelism just asked for are reaped.
            self.shrink(jobs)
        if failure is not None:
            raise failure
        return [pair for pair in out]  # type: ignore[misc]

    def shutdown(self) -> None:
        for handle in list(self._workers):
            self._dismiss(handle)
        self._workers = []


_POOL: Optional[WorkerPool] = None


def _get_pool() -> WorkerPool:
    global _POOL
    if _POOL is None:
        _POOL = WorkerPool()
    return _POOL


def get_pool() -> WorkerPool:
    """The process-wide persistent :class:`WorkerPool`, created on first
    use.  ``run_sweep`` and the ``repro serve`` scheduler share it, so a
    daemon's workers keep serving ad-hoc sweeps' warm state and vice
    versa."""
    return _get_pool()


def shutdown_pool() -> None:
    """Terminate the persistent worker pool (no-op when none exists).
    A later parallel sweep transparently builds a fresh pool."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None


atexit.register(shutdown_pool)


def _run_parallel(points: Sequence[SweepPoint], jobs: int,
                  on_result: Optional[Callable[[int, Any, Dict[str, int]],
                                               None]] = None,
                  span_ids: Optional[Sequence[Optional[str]]] = None,
                  straggler: Optional["StragglerPolicy"] = None,
                  allow_retry: Optional[Callable[[int, str], bool]] = None,
                  stats: Optional[Dict[str, int]] = None,
                  ) -> List[Tuple[Any, Dict[str, int]]]:
    """Execute ``points`` on the persistent pool; results in point order."""
    return _get_pool().run(points, jobs, on_result=on_result,
                           span_ids=span_ids, straggler=straggler,
                           allow_retry=allow_retry, stats=stats)


# ---------------------------------------------------------------------------
# Execution backends
# ---------------------------------------------------------------------------

@dataclass
class SweepContext:
    """Everything a backend needs to execute one sweep's pending points.

    ``commit(pos, payload)`` delivers one finished point (the runner
    caches it and emits ``point_committed``); ``add_warm`` accumulates
    warm-store deltas; ``allow_retry(pos, reason)`` consults and consumes
    the per-point retry budget; ``completed`` is a live view the fallback
    path uses to find what still needs running; ``stats`` carries backend
    counters (``redispatches``) back to the outcome."""

    todo: Sequence[SweepPoint]
    spans: Sequence[str]
    run_id: str
    jobs: int
    commit: Callable[[int, Any], None]
    add_warm: Callable[[int, int], None]
    allow_retry: Callable[[int, str], bool]
    completed: List[bool]
    stats: Dict[str, int] = field(default_factory=dict)

    def pending_positions(self) -> List[int]:
        return [pos for pos, done in enumerate(self.completed) if not done]


class ExecutionBackend:
    """How a sweep executes its non-cached points.

    One seam, three implementations — ``serial`` (in this process),
    ``pool`` (the persistent fork-server :class:`WorkerPool`), ``serve``
    (a running ``repro serve`` daemon via the blocking client) — so
    :func:`run_sweep` carries one code path instead of special-casing
    each mode.  A backend raising :class:`PoolUnavailableError` (or the
    OS-level spawn failures) signals *infrastructure* trouble: the runner
    falls back to serial execution of whatever has not completed,
    charging each re-run to the point's retry budget."""

    name = "backend"

    def execute(self, ctx: SweepContext) -> None:
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """In-process execution, one point at a time — also the fallback
    target when a parallel backend's infrastructure fails."""

    name = "serial"

    def execute(self, ctx: SweepContext) -> None:
        _serial_execute(ctx, ctx.pending_positions())


def _serial_execute(ctx: SweepContext, positions: Sequence[int]) -> None:
    for pos in positions:
        telemetry.emit("point_dispatched", run_id=ctx.run_id,
                       span_id=ctx.spans[pos],
                       point_slug=point_slug(ctx.todo[pos]),
                       worker_pid=os.getpid())
        before = warmstore.counters()
        try:
            payload = _run_point(ctx.todo[pos], run_id=ctx.run_id,
                                 span_id=ctx.spans[pos])
        except BaseException as exc:
            telemetry.emit(
                "point_failed", run_id=ctx.run_id, span_id=ctx.spans[pos],
                point_slug=point_slug(ctx.todo[pos]),
                error=f"{type(exc).__name__}: {exc}")
            raise
        finally:
            after = warmstore.counters()
            ctx.add_warm(after["hits"] - before["hits"],
                         after["misses"] - before["misses"])
        ctx.commit(pos, payload)


class PoolBackend(ExecutionBackend):
    """The persistent fork-server pool, with optional straggler
    re-dispatch driven by a :class:`StragglerPolicy`."""

    name = "pool"

    def __init__(self, straggler: Optional[StragglerPolicy] = None) -> None:
        self.straggler = straggler

    def execute(self, ctx: SweepContext) -> None:
        def _on_result(pos: int, payload: Any,
                       delta: Dict[str, int]) -> None:
            ctx.add_warm(delta["hits"], delta["misses"])
            ctx.commit(pos, payload)

        _run_parallel(ctx.todo, ctx.jobs, on_result=_on_result,
                      span_ids=ctx.spans, straggler=self.straggler,
                      allow_retry=ctx.allow_retry, stats=ctx.stats)


class ServeBackend(ExecutionBackend):
    """Submit the points to a running ``repro serve`` daemon.

    Points are grouped by function (the daemon resolves
    ``module:qualname`` through its registry escape hatch) and streamed
    back per point, so commits land as they finish, exactly like the
    other backends.  Connection failures raise
    :class:`PoolUnavailableError`, engaging the same serial fallback."""

    name = "serve"

    def __init__(self, host: str = "127.0.0.1", port: int = 9306,
                 timeout: float = 600.0, priority: int = 0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.priority = priority

    def execute(self, ctx: SweepContext) -> None:
        from repro.serve.client import ServeClient, ServeError
        try:
            client = ServeClient(self.host, self.port, timeout=self.timeout)
        except OSError as exc:
            raise PoolUnavailableError(
                f"serve daemon unreachable at {self.host}:{self.port}: "
                f"{exc}") from exc
        groups: Dict[Tuple[str, str], List[int]] = {}
        for pos in ctx.pending_positions():
            point = ctx.todo[pos]
            spec = f"{point.fn.__module__}:{point.fn.__qualname__}"
            groups.setdefault((point.experiment, spec), []).append(pos)
        errors: List[str] = []
        try:
            for (_experiment, spec), positions in groups.items():
                params = [dict(ctx.todo[pos].params) for pos in positions]

                def _on_event(event: Dict[str, Any],
                              positions: List[int] = positions) -> None:
                    if (event.get("event") == "point"
                            and event.get("error") is None
                            and "index" in event):
                        ctx.commit(positions[event["index"]],
                                   event["payload"])

                result = client.submit(points=params, fn=spec,
                                       priority=self.priority,
                                       on_event=_on_event)
                if not result.ok:
                    errors.extend(result.errors)
        except (OSError, ServeError) as exc:
            raise PoolUnavailableError(f"serve submission failed: "
                                       f"{exc}") from exc
        finally:
            try:
                client.close()
            except Exception:
                pass
        if errors:
            raise RuntimeError(f"serve backend: {errors[0]}")


def resolve_backend(backend: Union[str, ExecutionBackend, None], *,
                    jobs: int, pending: int,
                    straggler: Optional[StragglerPolicy] = None,
                    serve_addr: Optional[Tuple[str, int]] = None,
                    ) -> ExecutionBackend:
    """Map a backend spec to an instance.  ``"auto"`` (or ``None``) keeps
    the historical behaviour: the pool when it can actually help
    (``jobs > 1`` and more than one pending point), serial otherwise."""
    if isinstance(backend, ExecutionBackend):
        return backend
    spec = (backend or "auto").lower()
    if spec == "auto":
        spec = "pool" if jobs > 1 and pending > 1 else "serial"
    if spec == "serial":
        return SerialBackend()
    if spec == "pool":
        return PoolBackend(straggler)
    if spec == "serve":
        host, port = serve_addr if serve_addr else ("127.0.0.1", 9306)
        return ServeBackend(host, port)
    raise ValueError(f"unknown execution backend {backend!r} "
                     f"(expected serial/pool/serve/auto)")


def run_sweep(points: Sequence[SweepPoint], *, jobs: Optional[int] = None,
              cache: Optional[ResultCache] = None,
              trace_dir: Optional[str] = None,
              metrics_dir: Optional[str] = None,
              warm_dir: Optional[str] = None,
              telemetry_dir: Optional[str] = None,
              backend: Union[str, ExecutionBackend, None] = "auto",
              straggler: Optional[StragglerPolicy] = None,
              serve_addr: Optional[Tuple[str, int]] = None,
              max_point_retries: int = 3) -> SweepOutcome:
    """Run every point, in parallel when possible, and return a
    :class:`SweepOutcome` whose ``results`` align with ``points``.

    Args:
        points: the sweep; order is preserved in the outcome.
        jobs: worker processes (``None`` → :func:`default_jobs`;
            ``1`` → serial in-process execution).
        cache: optional result cache — cached points never reach a worker,
            and freshly computed payloads are stored back.
        trace_dir: when given, every executed point writes a Chrome-trace
            JSON into this directory (exported as ``REPRO_TRACE_DIR`` for
            the duration of the sweep so worker processes see it too).
            Cached points are not re-traced.
        metrics_dir: when given, every executed point runs under a fresh
            :class:`repro.obs.MetricsRegistry` and writes its metrics
            JSON (counters, histograms, phase profile) into this
            directory, keyed like the trace files (exported as
            ``REPRO_METRICS_DIR``).  Cached points are not re-measured.
        warm_dir: when given, points resolve a shared
            :class:`repro.exp.warmstore.WarmStore` rooted here (exported
            as ``REPRO_WARMSTORE_DIR``): warm-up snapshots and
            deterministic artifacts are loaded instead of recomputed, and
            the outcome's ``warm_hits``/``warm_misses`` report the reuse.
        telemetry_dir: when given, the sweep appends causal lifecycle
            records (queued/dispatched/executed/committed per point) to
            NDJSON files in this directory (exported as
            ``REPRO_TELEMETRY_DIR``); see :mod:`repro.obs.telemetry`.
        backend: ``"serial"`` / ``"pool"`` / ``"serve"`` /
            ``"auto"`` (default: pool when it helps), or an
            :class:`ExecutionBackend` instance.
        straggler: a :class:`StragglerPolicy` enabling speculative
            re-dispatch of flagged stragglers on the pool backend.
        serve_addr: ``(host, port)`` of the daemon for
            ``backend="serve"``.
        max_point_retries: per-point budget shared by every retry reason
            (``pool_fallback``, ``straggler_redispatch``) — re-execution
            of one point is bounded no matter how reasons combine.
    """
    started = time.perf_counter()
    overlay = {}
    if trace_dir is not None:
        overlay["REPRO_TRACE_DIR"] = trace_dir
    if metrics_dir is not None:
        overlay["REPRO_METRICS_DIR"] = metrics_dir
    if warm_dir is not None:
        overlay["REPRO_WARMSTORE_DIR"] = warm_dir
    if telemetry_dir is not None:
        overlay[telemetry.ENV_TELEMETRY_DIR] = telemetry_dir
    if overlay:
        saved = {key: os.environ.get(key) for key in overlay}
        os.environ.update(overlay)
        try:
            outcome = run_sweep(points, jobs=jobs, cache=cache,
                                backend=backend, straggler=straggler,
                                serve_addr=serve_addr,
                                max_point_retries=max_point_retries)
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
        outcome.elapsed_seconds = time.perf_counter() - started
        return outcome
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    # Every sweep gets a fresh causal run ID, exported so pool workers
    # (which mirror REPRO_* per task) stamp it into their records and
    # artifacts even when the event log itself is off.
    run_id = telemetry.new_run_id()
    saved_run = os.environ.get(telemetry.ENV_RUN_ID)
    os.environ[telemetry.ENV_RUN_ID] = run_id
    try:
        return _run_sweep_body(points, jobs, cache, run_id, started,
                               backend=backend, straggler=straggler,
                               serve_addr=serve_addr,
                               max_point_retries=max_point_retries)
    finally:
        if saved_run is None:
            os.environ.pop(telemetry.ENV_RUN_ID, None)
        else:
            os.environ[telemetry.ENV_RUN_ID] = saved_run


def _run_sweep_body(points: Sequence[SweepPoint], jobs: int,
                    cache: Optional[ResultCache], run_id: str,
                    started: float, *,
                    backend: Union[str, ExecutionBackend, None] = "auto",
                    straggler: Optional[StragglerPolicy] = None,
                    serve_addr: Optional[Tuple[str, int]] = None,
                    max_point_retries: int = 3) -> SweepOutcome:
    results: List[Any] = [None] * len(points)
    pending: List[int] = []
    cache_hits = 0
    for index, point in enumerate(points):
        if cache is not None:
            hit = cache.get(point.experiment, point.params)
            if not ResultCache.is_missing(hit):
                results[index] = hit
                cache_hits += 1
                telemetry.emit("point_cached", run_id=run_id,
                               point_slug=point_slug(point))
                continue
        pending.append(index)

    parallel = False
    fallback_reason: Optional[str] = None
    backend_name: Optional[str] = None
    warm_hits = 0
    warm_misses = 0
    stats: Dict[str, int] = {}
    telemetry.emit("run_start", run_id=run_id, points=len(points),
                   pending=len(pending), cache_hits=cache_hits, jobs=jobs)

    if pending:
        todo = [points[i] for i in pending]
        completed = [False] * len(todo)
        retries = [0] * len(todo)
        # One span per executed point: its whole lifecycle — here and in
        # whichever process runs it — chains under this ID.
        spans = [telemetry.new_span_id() for _ in todo]
        for pos, point in enumerate(todo):
            telemetry.emit("point_queued", run_id=run_id, span_id=spans[pos],
                           point_slug=point_slug(point),
                           experiment=point.experiment)

        def _commit(pos: int, payload: Any) -> None:
            # Results are committed (and cached) as they arrive, not after
            # the whole sweep: when one point fails, everything that
            # finished stays finished and a retried sweep never redoes it.
            if completed[pos]:
                return  # first commit wins; a racing twin's copy is dropped
            index = pending[pos]
            results[index] = payload
            completed[pos] = True
            if cache is not None:
                cache.put(points[index].experiment, points[index].params,
                          payload)
            telemetry.emit("point_committed", run_id=run_id,
                           span_id=spans[pos],
                           point_slug=point_slug(points[index]))

        def _add_warm(hits: int, misses: int) -> None:
            nonlocal warm_hits, warm_misses
            warm_hits += hits
            warm_misses += misses

        def _allow_retry(pos: int, reason: str) -> bool:
            # One budget across every retry reason: pool fallback after a
            # string of straggler re-dispatches (or vice versa) cannot
            # re-execute a point without bound.
            if retries[pos] >= max_point_retries:
                telemetry.log("warning", "runner",
                              "retry budget exhausted",
                              point_slug=point_slug(todo[pos]),
                              reason=reason, retries=retries[pos])
                return False
            retries[pos] += 1
            return True

        ctx = SweepContext(todo=todo, spans=spans, run_id=run_id, jobs=jobs,
                           commit=_commit, add_warm=_add_warm,
                           allow_retry=_allow_retry, completed=completed,
                           stats=stats)
        backend_obj = resolve_backend(backend, jobs=jobs, pending=len(todo),
                                      straggler=straggler,
                                      serve_addr=serve_addr)
        backend_name = backend_obj.name
        if backend_obj.name == "serial":
            backend_obj.execute(ctx)
        else:
            try:
                try:
                    backend_obj.execute(ctx)
                    parallel = True
                finally:
                    # Workers counted their warm events in their own
                    # metrics registries; mirror whatever completed into
                    # the parent's, like warmstore.record_event does on
                    # the serial path.
                    registry = obs_metrics.current()
                    if registry is not None:
                        if warm_hits:
                            registry.counter("warmstore.hits").inc(warm_hits)
                        if warm_misses:
                            registry.counter("warmstore.misses").inc(
                                warm_misses)
            except (OSError, PermissionError, PoolUnavailableError,
                    ImportError) as exc:
                # Worker processes unavailable (restricted sandbox, missing
                # semaphores, mid-sweep pool death, unreachable daemon...):
                # identical results, just serially — and only for the
                # points that did not already complete.  A *point* raising
                # is not an infrastructure failure and propagates instead.
                fallback_reason = f"{type(exc).__name__}: {exc}"
                telemetry.log("warning", "runner",
                              f"{backend_obj.name} backend unavailable; "
                              "falling back to serial execution",
                              reason=fallback_reason)
                remaining = ctx.pending_positions()
                for pos in remaining:
                    if not _allow_retry(pos, "pool_fallback"):
                        error = (f"retry budget exhausted for "
                                 f"{point_slug(todo[pos])} after "
                                 f"{retries[pos]} retries")
                        telemetry.emit("point_failed", run_id=run_id,
                                       span_id=spans[pos],
                                       point_slug=point_slug(todo[pos]),
                                       error=error)
                        raise RuntimeError(error) from exc
                    telemetry.emit("point_retried", run_id=run_id,
                                   span_id=spans[pos],
                                   point_slug=point_slug(todo[pos]),
                                   reason="pool_fallback")
                _serial_execute(ctx, remaining)

    elapsed = time.perf_counter() - started
    telemetry.emit("run_end", run_id=run_id, ok=True,
                   elapsed_s=round(elapsed, 6), parallel=parallel,
                   fallback_reason=fallback_reason,
                   warm_hits=warm_hits, warm_misses=warm_misses,
                   redispatches=stats.get("redispatches", 0))
    return SweepOutcome(
        results=results,
        jobs=jobs,
        parallel=parallel,
        cache_hits=cache_hits,
        cache_misses=len(pending),
        elapsed_seconds=elapsed,
        fallback_reason=fallback_reason,
        warm_hits=warm_hits,
        warm_misses=warm_misses,
        points=tuple(points),
        run_id=run_id,
        backend=backend_name,
        redispatches=stats.get("redispatches", 0),
    )
