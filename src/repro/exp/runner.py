"""Parallel sweep runner.

Fans independent :class:`~repro.exp.sweep.SweepPoint`\\ s out across a
:class:`concurrent.futures.ProcessPoolExecutor`.  Each point constructs
its own ``System`` inside the worker, and every stochastic component of
the simulator is seeded from its config, so parallel results are
bit-identical to serial execution — the runner only changes wall-clock
time, never numbers.

Degradation is graceful by design: ``jobs=1``, a single pending point, or
an environment where worker processes cannot be spawned (sandboxes without
semaphores, exotic interpreters) all fall back to in-process serial
execution of the exact same point functions.

Observability survives the fan-out: when ``REPRO_TRACE_DIR`` /
``REPRO_METRICS_DIR`` are set (directly, or via
``run_sweep(trace_dir=..., metrics_dir=...)``, which exports them around
the sweep so forked workers inherit them), every point — serial or in a
worker process — runs under a fresh :class:`repro.obs.Tracer` and/or
:class:`repro.obs.MetricsRegistry` and writes its Chrome-trace / metrics
JSON into those directories, named after the point's label (see
:func:`point_slug`).  ``repro report`` joins these files with the sweep
payloads into one run report.
"""

from __future__ import annotations

import multiprocessing
import os
import re
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Sequence

from repro import obs
from repro.exp.cache import ResultCache
from repro.exp.sweep import SweepPoint
from repro.obs import metrics as obs_metrics


def default_jobs() -> int:
    """Worker count used when ``jobs`` is not given: the CPUs available to
    this process (``os.process_cpu_count()`` where it exists, Python 3.13+;
    ``os.cpu_count()`` otherwise)."""
    counter = getattr(os, "process_cpu_count", None) or os.cpu_count
    return max(1, counter() or 1)


@dataclass
class SweepOutcome:
    """Results of one sweep, in point order, plus execution metadata."""

    results: List[Any]
    jobs: int
    parallel: bool
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_seconds: float = 0.0
    fallback_reason: Optional[str] = None
    points: Sequence[SweepPoint] = field(default_factory=tuple)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> Any:
        return self.results[index]


def point_slug(point: SweepPoint) -> str:
    """Filesystem-safe name for a point's per-point artifacts (trace and
    metrics files share it, so reports can join them by label)."""
    slug = re.sub(r"[^A-Za-z0-9._=-]+", "_", point.describe()).strip("_")
    return slug[:120] or "point"


def _trace_path(trace_dir: str, point: SweepPoint) -> str:
    return os.path.join(trace_dir, f"{point_slug(point)}.trace.json")


def metrics_path(metrics_dir: str, point: SweepPoint) -> str:
    """Where a point's metrics JSON lands under ``metrics_dir``."""
    return os.path.join(metrics_dir, f"{point_slug(point)}.metrics.json")


def _run_point(point: SweepPoint) -> Any:
    trace_dir = os.environ.get("REPRO_TRACE_DIR")
    metrics_dir = os.environ.get("REPRO_METRICS_DIR")
    if not trace_dir and not metrics_dir:
        return point.run()
    # Per-point tracer/metrics registry, installed process-globally so the
    # Systems and schedulers the point builds internally pick them up.
    # Works identically in the parent (serial path) and in forked workers,
    # which inherit the environment variables.
    tracer = None
    previous_observer = obs.current_observer()
    if trace_dir:
        os.makedirs(trace_dir, exist_ok=True)
        tracer = obs.Tracer()
        obs.install(tracer)
    registry = None
    previous_registry = obs_metrics.current()
    if metrics_dir:
        os.makedirs(metrics_dir, exist_ok=True)
        registry = obs_metrics.install(obs_metrics.MetricsRegistry())
    try:
        if registry is not None:
            with registry.profiler.phase("point"):
                return point.run()
        return point.run()
    finally:
        if tracer is not None:
            if previous_observer is not None:
                obs.install(previous_observer)
            else:
                obs.uninstall()
            # Written even when the point raises — a partial trace is
            # exactly what debugging a failed point needs.
            tracer.write_chrome(_trace_path(trace_dir, point))
        if registry is not None:
            if previous_registry is not None:
                obs_metrics.install(previous_registry)
            else:
                obs_metrics.uninstall()
            registry.write_json(metrics_path(metrics_dir, point),
                                extra={"label": point.describe()})


def _run_serial(points: Sequence[SweepPoint]) -> List[Any]:
    return [_run_point(point) for point in points]


def _run_parallel(points: Sequence[SweepPoint], jobs: int) -> List[Any]:
    """Execute ``points`` on a process pool; results in point order.

    Prefers the ``fork`` start method (workers inherit the parent's
    imports and ``sys.path``, so even point functions defined in scripts
    resolve); falls back to the platform default elsewhere.
    """
    methods = multiprocessing.get_all_start_methods()
    mp_context = (multiprocessing.get_context("fork")
                  if "fork" in methods else None)
    workers = min(jobs, len(points))
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=mp_context) as pool:
        return list(pool.map(_run_point, points))


def run_sweep(points: Sequence[SweepPoint], *, jobs: Optional[int] = None,
              cache: Optional[ResultCache] = None,
              trace_dir: Optional[str] = None,
              metrics_dir: Optional[str] = None) -> SweepOutcome:
    """Run every point, in parallel when possible, and return a
    :class:`SweepOutcome` whose ``results`` align with ``points``.

    Args:
        points: the sweep; order is preserved in the outcome.
        jobs: worker processes (``None`` → :func:`default_jobs`;
            ``1`` → serial in-process execution).
        cache: optional result cache — cached points never reach a worker,
            and freshly computed payloads are stored back.
        trace_dir: when given, every executed point writes a Chrome-trace
            JSON into this directory (exported as ``REPRO_TRACE_DIR`` for
            the duration of the sweep so worker processes see it too).
            Cached points are not re-traced.
        metrics_dir: when given, every executed point runs under a fresh
            :class:`repro.obs.MetricsRegistry` and writes its metrics
            JSON (counters, histograms, phase profile) into this
            directory, keyed like the trace files (exported as
            ``REPRO_METRICS_DIR``).  Cached points are not re-measured.
    """
    started = time.perf_counter()
    overlay = {}
    if trace_dir is not None:
        overlay["REPRO_TRACE_DIR"] = trace_dir
    if metrics_dir is not None:
        overlay["REPRO_METRICS_DIR"] = metrics_dir
    if overlay:
        saved = {key: os.environ.get(key) for key in overlay}
        os.environ.update(overlay)
        try:
            outcome = run_sweep(points, jobs=jobs, cache=cache)
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
        outcome.elapsed_seconds = time.perf_counter() - started
        return outcome
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    results: List[Any] = [None] * len(points)
    pending: List[int] = []
    cache_hits = 0
    for index, point in enumerate(points):
        if cache is not None:
            hit = cache.get(point.experiment, point.params)
            if not ResultCache.is_missing(hit):
                results[index] = hit
                cache_hits += 1
                continue
        pending.append(index)

    parallel = False
    fallback_reason: Optional[str] = None
    if pending:
        todo = [points[i] for i in pending]
        if jobs > 1 and len(todo) > 1:
            try:
                fresh = _run_parallel(todo, jobs)
                parallel = True
            except (OSError, PermissionError, RuntimeError,
                    ImportError) as exc:
                # Worker processes unavailable (restricted sandbox, missing
                # semaphores, ...): identical results, just serially.
                fallback_reason = f"{type(exc).__name__}: {exc}"
                fresh = _run_serial(todo)
        else:
            fresh = _run_serial(todo)
        for index, payload in zip(pending, fresh):
            results[index] = payload
            if cache is not None:
                cache.put(points[index].experiment, points[index].params,
                          payload)

    return SweepOutcome(
        results=results,
        jobs=jobs,
        parallel=parallel,
        cache_hits=cache_hits,
        cache_misses=len(pending),
        elapsed_seconds=time.perf_counter() - started,
        fallback_reason=fallback_reason,
        points=tuple(points),
    )
