"""Parallel sweep runner.

Fans independent :class:`~repro.exp.sweep.SweepPoint`\\ s out across a
persistent fork-server :class:`WorkerPool`.  Each point constructs its
own ``System`` inside the worker, and every stochastic component of the
simulator is seeded from its config, so parallel results are
bit-identical to serial execution — the runner only changes wall-clock
time, never numbers.

Unlike the per-sweep ``ProcessPoolExecutor`` this replaced, the pool's
workers survive across sweeps: each worker keeps its
:mod:`repro.exp.warmstore` memory LRU of restored snapshots, its
pristine-system pool, and its artifact memos, so a worker that has
already warmed (or loaded) the 64 MB-LLC state serves every subsequent
point sharing that config without re-warming or re-unpickling.  Because
workers fork *before* later environment changes, every task carries a
``REPRO_*`` environment overlay captured in the parent at dispatch time —
trace/metrics/warm-store directories and sanitizer flags behave exactly
as if the worker had been forked fresh.

Degradation is graceful by design: ``jobs=1``, a single pending point, or
an environment where worker processes cannot be spawned (sandboxes without
semaphores, exotic interpreters) all fall back to in-process serial
execution of the exact same point functions; a broken pool is torn down
and the pending points re-run serially.

Observability survives the fan-out: when ``REPRO_TRACE_DIR`` /
``REPRO_METRICS_DIR`` are set (directly, or via
``run_sweep(trace_dir=..., metrics_dir=...)``, which exports them around
the sweep so forked workers inherit them), every point — serial or in a
worker process — runs under a fresh :class:`repro.obs.Tracer` and/or
:class:`repro.obs.MetricsRegistry` and writes its Chrome-trace / metrics
JSON into those directories, named after the point's label (see
:func:`point_slug`).  ``repro report`` joins these files with the sweep
payloads into one run report.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import re
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Dict, List, Iterator, Optional, Sequence, Tuple

from repro import obs
from repro.exp import warmstore
from repro.exp.cache import ResultCache
from repro.exp.sweep import SweepPoint
from repro.obs import metrics as obs_metrics


def default_jobs() -> int:
    """Worker count used when ``jobs`` is not given: the CPUs available to
    *this process*.  ``os.process_cpu_count()`` (Python 3.13+) already
    honours CPU affinity; on older interpreters fall back to
    ``len(os.sched_getaffinity(0))`` so cgroup- or taskset-restricted CI
    boxes don't oversubscribe the pool, and only then to the raw
    ``os.cpu_count()`` (platforms without affinity, e.g. macOS)."""
    counter = getattr(os, "process_cpu_count", None)
    if counter is None:
        affinity = getattr(os, "sched_getaffinity", None)
        if affinity is not None:
            try:
                return max(1, len(affinity(0)))
            except OSError:
                pass
        counter = os.cpu_count
    return max(1, counter() or 1)


@dataclass
class SweepOutcome:
    """Results of one sweep, in point order, plus execution metadata."""

    results: List[Any]
    jobs: int
    parallel: bool
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_seconds: float = 0.0
    fallback_reason: Optional[str] = None
    #: Warm-state reuse during the executed (non-result-cached) points:
    #: snapshot/artifact loads and pristine-system restores served from
    #: the :mod:`repro.exp.warmstore` layers vs. paid from scratch.
    warm_hits: int = 0
    warm_misses: int = 0
    points: Sequence[SweepPoint] = field(default_factory=tuple)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> Any:
        return self.results[index]


def point_slug(point: SweepPoint) -> str:
    """Filesystem-safe name for a point's per-point artifacts (trace and
    metrics files share it, so reports can join them by label)."""
    slug = re.sub(r"[^A-Za-z0-9._=-]+", "_", point.describe()).strip("_")
    return slug[:120] or "point"


def _trace_path(trace_dir: str, point: SweepPoint) -> str:
    return os.path.join(trace_dir, f"{point_slug(point)}.trace.json")


def metrics_path(metrics_dir: str, point: SweepPoint) -> str:
    """Where a point's metrics JSON lands under ``metrics_dir``."""
    return os.path.join(metrics_dir, f"{point_slug(point)}.metrics.json")


def _run_point(point: SweepPoint) -> Any:
    trace_dir = os.environ.get("REPRO_TRACE_DIR")
    metrics_dir = os.environ.get("REPRO_METRICS_DIR")
    if not trace_dir and not metrics_dir:
        return point.run()
    # Per-point tracer/metrics registry, installed process-globally so the
    # Systems and schedulers the point builds internally pick them up.
    # Works identically in the parent (serial path) and in forked workers,
    # which inherit the environment variables.
    tracer = None
    previous_observer = obs.current_observer()
    if trace_dir:
        os.makedirs(trace_dir, exist_ok=True)
        tracer = obs.Tracer()
        obs.install(tracer)
    registry = None
    previous_registry = obs_metrics.current()
    if metrics_dir:
        os.makedirs(metrics_dir, exist_ok=True)
        registry = obs_metrics.install(obs_metrics.MetricsRegistry())
    try:
        if registry is not None:
            with registry.profiler.phase("point"):
                return point.run()
        return point.run()
    finally:
        if tracer is not None:
            if previous_observer is not None:
                obs.install(previous_observer)
            else:
                obs.uninstall()
            # Written even when the point raises — a partial trace is
            # exactly what debugging a failed point needs.
            tracer.write_chrome(_trace_path(trace_dir, point))
        if registry is not None:
            if previous_registry is not None:
                obs_metrics.install(previous_registry)
            else:
                obs_metrics.uninstall()
            registry.write_json(metrics_path(metrics_dir, point),
                                extra={"label": point.describe()})


def _run_serial(points: Sequence[SweepPoint]) -> List[Any]:
    return [_run_point(point) for point in points]


def _pool_worker_main(conn) -> None:
    """Loop of one persistent fork-server worker.

    Tasks arrive as ``(seq, point, env)`` where ``env`` is the parent's
    ``REPRO_*`` environment at dispatch time; the worker mirrors it
    exactly (removing stale keys) before running the point, so a worker
    forked long ago behaves like one forked for this sweep.  Replies are
    ``(seq, ok, payload, warm_delta)`` — ``payload`` is the point result
    or the raised exception, ``warm_delta`` the warm-store hit/miss
    counts this point generated.  ``None`` shuts the worker down.
    """
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break
        if task is None:
            break
        seq, point, env = task
        for key in [k for k in os.environ
                    if k.startswith("REPRO_") and k not in env]:
            del os.environ[key]
        os.environ.update(env)
        before = warmstore.counters()
        ok = True
        try:
            payload: Any = _run_point(point)
        except BaseException as exc:  # transported to the parent
            ok = False
            payload = exc
        after = warmstore.counters()
        warm_delta = {key: after[key] - before[key] for key in after}
        try:
            conn.send((seq, ok, payload, warm_delta))
        except Exception as exc:  # unpicklable payload/exception
            conn.send((seq, False,
                       RuntimeError(f"unpicklable point result: {exc}"),
                       warm_delta))
    conn.close()


class WorkerPool:
    """Reusable fork-server pool of :func:`_pool_worker_main` processes.

    Workers persist across :func:`run_sweep` calls (that is the point:
    their in-memory warm-state LRUs keep paying off), grow on demand up
    to the largest ``jobs`` requested, and are torn down via
    :func:`shutdown_pool` (registered ``atexit``).  Any pipe or worker
    failure marks the pool broken; the caller tears it down and falls
    back to serial execution.
    """

    def __init__(self) -> None:
        methods = multiprocessing.get_all_start_methods()
        # fork: workers inherit the parent's imports and sys.path, so
        # even point functions defined in scripts resolve.
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        self._workers: List[Tuple[Any, Any]] = []  # (process, conn)

    def __len__(self) -> int:
        return len(self._workers)

    def _spawn(self) -> Tuple[Any, Any]:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(target=_pool_worker_main,
                                        args=(child_conn,), daemon=True)
        process.start()
        child_conn.close()
        return process, parent_conn

    def ensure(self, count: int) -> None:
        while len(self._workers) < count:
            self._workers.append(self._spawn())

    def run(self, points: Sequence[SweepPoint],
            jobs: int) -> List[Tuple[Any, Dict[str, int]]]:
        """Execute ``points``; returns ``(payload, warm_delta)`` pairs in
        point order.  Re-raises the first failing point's exception after
        draining in-flight tasks (the pool stays reusable)."""
        count = min(jobs, len(points))
        self.ensure(count)
        env = {key: value for key, value in os.environ.items()
               if key.startswith("REPRO_")}
        out: List[Optional[Tuple[Any, Dict[str, int]]]] = [None] * len(points)
        failure: Optional[BaseException] = None
        next_index = 0
        idle = list(self._workers[:count])
        busy: Dict[Any, Tuple[Any, Any]] = {}  # conn -> (process, conn)
        try:
            while True:
                while idle and next_index < len(points) and failure is None:
                    worker = idle.pop()
                    worker[1].send((next_index, points[next_index], env))
                    busy[worker[1]] = worker
                    next_index += 1
                if not busy:
                    break
                for conn in mp_connection.wait(list(busy)):
                    seq, ok, payload, warm_delta = conn.recv()
                    idle.append(busy.pop(conn))
                    if ok:
                        out[seq] = (payload, warm_delta)
                    elif failure is None:
                        failure = payload
        except (OSError, EOFError, BrokenPipeError) as exc:
            # A worker or pipe died: the pool is unusable.  Tear it down
            # so the next sweep starts fresh, and let run_sweep fall back
            # to serial execution of the whole pending set.
            self.shutdown()
            raise RuntimeError(f"worker pool failed: {exc}") from exc
        if failure is not None:
            raise failure
        return [pair for pair in out]  # type: ignore[misc]

    def shutdown(self) -> None:
        for _process, conn in self._workers:
            try:
                conn.send(None)
            except Exception:
                pass
        for process, conn in self._workers:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
            try:
                conn.close()
            except Exception:
                pass
        self._workers = []


_POOL: Optional[WorkerPool] = None


def _get_pool() -> WorkerPool:
    global _POOL
    if _POOL is None:
        _POOL = WorkerPool()
    return _POOL


def shutdown_pool() -> None:
    """Terminate the persistent worker pool (no-op when none exists).
    A later parallel sweep transparently builds a fresh pool."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None


atexit.register(shutdown_pool)


def _run_parallel(points: Sequence[SweepPoint],
                  jobs: int) -> List[Tuple[Any, Dict[str, int]]]:
    """Execute ``points`` on the persistent pool; results in point order."""
    return _get_pool().run(points, jobs)


def run_sweep(points: Sequence[SweepPoint], *, jobs: Optional[int] = None,
              cache: Optional[ResultCache] = None,
              trace_dir: Optional[str] = None,
              metrics_dir: Optional[str] = None,
              warm_dir: Optional[str] = None) -> SweepOutcome:
    """Run every point, in parallel when possible, and return a
    :class:`SweepOutcome` whose ``results`` align with ``points``.

    Args:
        points: the sweep; order is preserved in the outcome.
        jobs: worker processes (``None`` → :func:`default_jobs`;
            ``1`` → serial in-process execution).
        cache: optional result cache — cached points never reach a worker,
            and freshly computed payloads are stored back.
        trace_dir: when given, every executed point writes a Chrome-trace
            JSON into this directory (exported as ``REPRO_TRACE_DIR`` for
            the duration of the sweep so worker processes see it too).
            Cached points are not re-traced.
        metrics_dir: when given, every executed point runs under a fresh
            :class:`repro.obs.MetricsRegistry` and writes its metrics
            JSON (counters, histograms, phase profile) into this
            directory, keyed like the trace files (exported as
            ``REPRO_METRICS_DIR``).  Cached points are not re-measured.
        warm_dir: when given, points resolve a shared
            :class:`repro.exp.warmstore.WarmStore` rooted here (exported
            as ``REPRO_WARMSTORE_DIR``): warm-up snapshots and
            deterministic artifacts are loaded instead of recomputed, and
            the outcome's ``warm_hits``/``warm_misses`` report the reuse.
    """
    started = time.perf_counter()
    overlay = {}
    if trace_dir is not None:
        overlay["REPRO_TRACE_DIR"] = trace_dir
    if metrics_dir is not None:
        overlay["REPRO_METRICS_DIR"] = metrics_dir
    if warm_dir is not None:
        overlay["REPRO_WARMSTORE_DIR"] = warm_dir
    if overlay:
        saved = {key: os.environ.get(key) for key in overlay}
        os.environ.update(overlay)
        try:
            outcome = run_sweep(points, jobs=jobs, cache=cache)
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
        outcome.elapsed_seconds = time.perf_counter() - started
        return outcome
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    results: List[Any] = [None] * len(points)
    pending: List[int] = []
    cache_hits = 0
    for index, point in enumerate(points):
        if cache is not None:
            hit = cache.get(point.experiment, point.params)
            if not ResultCache.is_missing(hit):
                results[index] = hit
                cache_hits += 1
                continue
        pending.append(index)

    parallel = False
    fallback_reason: Optional[str] = None
    warm_hits = 0
    warm_misses = 0

    def _serial_with_warm_counts(todo: Sequence[SweepPoint]) -> List[Any]:
        nonlocal warm_hits, warm_misses
        before = warmstore.counters()
        payloads = _run_serial(todo)
        after = warmstore.counters()
        warm_hits += after["hits"] - before["hits"]
        warm_misses += after["misses"] - before["misses"]
        return payloads

    if pending:
        todo = [points[i] for i in pending]
        if jobs > 1 and len(todo) > 1:
            try:
                pairs = _run_parallel(todo, jobs)
                fresh = [payload for payload, _delta in pairs]
                warm_hits = sum(delta["hits"] for _p, delta in pairs)
                warm_misses = sum(delta["misses"] for _p, delta in pairs)
                parallel = True
                # Workers counted their warm events in their own metrics
                # registries; mirror the totals into the parent's, like
                # warmstore.record_event does on the serial path.
                registry = obs_metrics.current()
                if registry is not None:
                    if warm_hits:
                        registry.counter("warmstore.hits").inc(warm_hits)
                    if warm_misses:
                        registry.counter("warmstore.misses").inc(warm_misses)
            except (OSError, PermissionError, RuntimeError,
                    ImportError) as exc:
                # Worker processes unavailable (restricted sandbox, missing
                # semaphores, ...): identical results, just serially.
                fallback_reason = f"{type(exc).__name__}: {exc}"
                warm_hits = warm_misses = 0
                fresh = _serial_with_warm_counts(todo)
        else:
            fresh = _serial_with_warm_counts(todo)
        for index, payload in zip(pending, fresh):
            results[index] = payload
            if cache is not None:
                cache.put(points[index].experiment, points[index].params,
                          payload)

    return SweepOutcome(
        results=results,
        jobs=jobs,
        parallel=parallel,
        cache_hits=cache_hits,
        cache_misses=len(pending),
        elapsed_seconds=time.perf_counter() - started,
        fallback_reason=fallback_reason,
        warm_hits=warm_hits,
        warm_misses=warm_misses,
        points=tuple(points),
    )
