"""Declarative sweep points.

A :class:`SweepPoint` names one independent experiment invocation: a
module-level function plus JSON-able keyword parameters.  Restricting the
callable to module level keeps points picklable, which is what lets the
runner fan them out across worker processes; restricting parameters to
JSON-able values is what makes results cacheable by content hash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional


@dataclass(frozen=True)
class SweepPoint:
    """One independently runnable point of a sweep.

    Attributes:
        experiment: cache namespace (e.g. ``"fig8"``); points of one sweep
            share it, their ``params`` distinguish them.
        fn: a **module-level** callable (picklable by reference) invoked as
            ``fn(**params)``; must return a JSON-serializable payload when
            the sweep runs under a :class:`repro.exp.cache.ResultCache`.
        params: keyword arguments; also the cache-key material.
        label: optional human-readable tag for logs.
    """

    experiment: str
    fn: Callable[..., Any]
    params: Mapping[str, Any] = field(default_factory=dict)
    label: Optional[str] = None

    def __post_init__(self) -> None:
        qualname = getattr(self.fn, "__qualname__", "")
        if "<locals>" in qualname or "<lambda>" in qualname:
            raise ValueError(
                f"sweep point function {qualname!r} must be module-level "
                "(closures and lambdas cannot cross process boundaries)")

    def run(self) -> Any:
        return self.fn(**dict(self.params))

    def with_params(self, **updates: Any) -> "SweepPoint":
        """A copy with ``updates`` merged into ``params`` — how the
        adaptive engine expands one declared point into its repetitions
        along the repetition axis (each rep is its own cacheable point)."""
        merged: Dict[str, Any] = dict(self.params)
        merged.update(updates)
        inner = ", ".join(f"{k}={v!r}" for k, v in updates.items())
        label = f"{self.describe()}[{inner}]" if inner else self.label
        return SweepPoint(experiment=self.experiment, fn=self.fn,
                          params=merged, label=label)

    def describe(self) -> str:
        if self.label:
            return self.label
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params.items())
        return f"{self.experiment}({inner})"


def sweep_points(experiment: str, fn: Callable[..., Any], axis: str,
                 values: Iterable[Any],
                 **common: Any) -> List[SweepPoint]:
    """Points varying ``axis`` over ``values`` with ``common`` fixed.

    Example::

        points = sweep_points("fig8", fig8_point, "llc_mb", [8, 16, 32, 64])
    """
    points: List[SweepPoint] = []
    for value in values:
        params: Dict[str, Any] = dict(common)
        params[axis] = value
        points.append(SweepPoint(experiment=experiment, fn=fn, params=params,
                                 label=f"{experiment}[{axis}={value}]"))
    return points
