"""Persistent warm-state store: content-addressed snapshots on disk.

The §5.1 methodology warms caches, TLBs, and row-buffer state before every
measurement, and PR 2 showed restoring a :class:`repro.sim.snapshot.
SystemSnapshot` is ~300x faster than replaying that warm-up — but those
snapshots lived inside one process for one point.  A :class:`WarmStore`
makes warm state a first-class cached artifact shared across points,
sweeps, and processes:

- **Snapshot entries** serialize a system's ``snapshot_state()`` payload
  (via :meth:`SystemSnapshot.to_bytes`, the versioned wire format) keyed
  by a content hash over (``SystemConfig``, warm-up recipe, code
  version).  Editing any simulator source changes the code version and
  silently invalidates every entry — warm state is never served across
  code changes, mirroring :class:`repro.exp.cache.ResultCache`.
- **Artifact entries** hold deterministic derived objects that are
  expensive to rebuild but independent of a live system — Streamline's
  pseudorandom traversal order, Fig. 10's victim probe schedule, Fig. 11
  reference streams — keyed by (recipe, code version) alone.
- A bounded in-memory LRU fronts the disk files, so a persistent sweep
  worker that has already loaded the 64 MB-LLC warm state serves every
  later point sharing that config without re-unpickling.

Correctness invariant (PR 1): warm-up is deterministic, so a point served
from the store must be **bit-identical** to the same point re-warmed from
scratch.  Everything here is therefore *pure reuse*: the store never
changes what is computed, only whether a cached copy of the identical
bytes is used.  ``REPRO_NO_WARMSTORE=1`` disables every layer (the
randomized equivalence tests diff both modes), and the pristine-system
pool refuses to serve whenever an observer, metrics registry, or the
sanitizer is active — those attach at construction time and must see
every event of a fresh machine.

Process-global discovery mirrors ``REPRO_TRACE_DIR``: when
``REPRO_WARMSTORE_DIR`` is set, :func:`current` returns a store rooted
there (one per process, re-resolved when the variable changes), so sweep
workers — forked before or after the variable was exported — all share
one on-disk store.  Without the variable there is no disk layer, but the
in-process memo layers still work.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from collections import OrderedDict
from dataclasses import asdict
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.exp.cache import canonical_json, code_version
from repro.obs import metrics as obs_metrics
from repro.sim.snapshot import SnapshotFormatError, SystemSnapshot

_MISSING = object()

#: Deserialized entries kept per store instance (snapshots and artifacts
#: share one LRU).  Sized for one worker's working set: a handful of
#: figure configs plus their artifacts.
DEFAULT_MEMORY_ENTRIES = 32

#: Process-wide warm-reuse counters: every layer (disk store, memory LRU,
#: pristine-system pool) records here, and the sweep runner diffs them
#: around each point to fill ``SweepOutcome.warm_hits``/``warm_misses``.
_COUNTS = {"hits": 0, "misses": 0}


def record_event(kind: str, count: int = 1) -> None:
    """Count a warm-state hit or miss (``kind`` in {"hits", "misses"})
    and mirror it into the installed metrics registry, if any."""
    _COUNTS[kind] += count
    registry = obs_metrics.current()
    if registry is not None:
        registry.counter(f"warmstore.{kind}").inc(count)


def counters() -> Dict[str, int]:
    """Copy of the process-wide warm hit/miss counters."""
    return dict(_COUNTS)


def enabled() -> bool:
    """False when ``REPRO_NO_WARMSTORE`` is set: every warm-reuse layer
    (disk store, artifact memos, pristine pool) is bypassed, forcing the
    from-scratch execution path the equivalence tests compare against."""
    return os.environ.get("REPRO_NO_WARMSTORE", "") not in ("1", "true", "yes")


def config_digest(config: Any) -> str:
    """Stable content hash of a :class:`repro.config.SystemConfig`."""
    return hashlib.sha256(
        canonical_json(asdict(config)).encode()).hexdigest()[:24]


class WarmStore:
    """Content-addressed store of warm-state snapshots and artifacts.

    One file per entry under ``directory``; filenames embed the entry
    kind, the producing code version, and the content key
    (``{kind}-{version}-{key}.warm``), so :meth:`prune` can drop entries
    from other code versions without opening them and invalidation is
    ``rm -rf``.  A bounded in-memory LRU of deserialized entries fronts
    the files.
    """

    def __init__(self, directory: str, version: Optional[str] = None,
                 memory_entries: int = DEFAULT_MEMORY_ENTRIES) -> None:
        self.directory = str(directory)
        self.version = version if version is not None else code_version()
        self.memory_entries = max(0, int(memory_entries))
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.puts = 0

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------

    def key(self, recipe: Any, config: Any = None) -> str:
        """Content key over (recipe, code version[, config])."""
        material: Dict[str, Any] = {"recipe": recipe, "code": self.version}
        if config is not None:
            material["config"] = asdict(config)
        return hashlib.sha256(
            canonical_json(material).encode()).hexdigest()[:24]

    def _path(self, kind: str, key: str) -> str:
        return os.path.join(self.directory,
                            f"{kind}-{self.version}-{key}.warm")

    # ------------------------------------------------------------------
    # Memory LRU
    # ------------------------------------------------------------------

    def _memory_get(self, path: str) -> Any:
        entry = self._memory.get(path, _MISSING)
        if entry is not _MISSING:
            self._memory.move_to_end(path)
        return entry

    def _memory_put(self, path: str, value: Any) -> None:
        if self.memory_entries <= 0:
            return
        self._memory[path] = value
        self._memory.move_to_end(path)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------
    # Snapshot entries
    # ------------------------------------------------------------------

    def load_snapshot(self, config: Any, recipe: Any) -> Optional[SystemSnapshot]:
        """The stored warm snapshot for (``config``, ``recipe``), or None.

        A hit still validates the deserialized snapshot's config against
        the requested one (truncated-hash paranoia); corrupt files and
        format-version mismatches are clean misses.
        """
        path = self._path("snap", self.key(recipe, config))
        cached = self._memory_get(path)
        if cached is not _MISSING:
            if cached.config == config:
                self.hits += 1
                self.memory_hits += 1
                record_event("hits")
                return cached
            cached = _MISSING
        try:
            with open(path, "rb") as handle:
                data = handle.read()
            snapshot = SystemSnapshot.from_bytes(data)
        except (OSError, SnapshotFormatError):
            self.misses += 1
            record_event("misses")
            return None
        if snapshot.config != config:
            self.misses += 1
            record_event("misses")
            return None
        self._memory_put(path, snapshot)
        self.hits += 1
        self.disk_hits += 1
        record_event("hits")
        return snapshot

    def store_snapshot(self, snapshot: SystemSnapshot, recipe: Any) -> str:
        """Persist ``snapshot`` under its config + ``recipe``; returns the
        entry path."""
        path = self._path("snap", self.key(recipe, snapshot.config))
        self._write(path, snapshot.to_bytes())
        self._memory_put(path, snapshot)
        self.puts += 1
        return path

    # ------------------------------------------------------------------
    # Artifact entries (config-independent derived objects)
    # ------------------------------------------------------------------

    def load_artifact(self, recipe: Any) -> Any:
        """The stored artifact for ``recipe``, or :data:`MISSING`.

        Artifacts are treated as immutable by every consumer: the memory
        LRU hands the same object to all of them.
        """
        path = self._path("art", self.key(recipe))
        cached = self._memory_get(path)
        if cached is not _MISSING:
            self.hits += 1
            self.memory_hits += 1
            record_event("hits")
            return cached
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ValueError):
            self.misses += 1
            record_event("misses")
            return _MISSING
        self._memory_put(path, value)
        self.hits += 1
        self.disk_hits += 1
        record_event("hits")
        return value

    def store_artifact(self, recipe: Any, value: Any) -> str:
        path = self._path("art", self.key(recipe))
        self._write(path, pickle.dumps(value,
                                       protocol=pickle.HIGHEST_PROTOCOL))
        self._memory_put(path, value)
        self.puts += 1
        return path

    @staticmethod
    def is_missing(value: Any) -> bool:
        return value is _MISSING

    # ------------------------------------------------------------------
    # Maintenance (CLI: ``repro cache stats|prune``)
    # ------------------------------------------------------------------

    def _write(self, path: str, data: bytes) -> None:
        os.makedirs(self.directory, exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)

    def entries(self) -> Iterator[Tuple[str, str, str, int]]:
        """Yield (path, kind, version, size_bytes) for every entry."""
        if not os.path.isdir(self.directory):
            return
        for name in sorted(os.listdir(self.directory)):
            if not name.endswith(".warm"):
                continue
            parts = name[:-len(".warm")].split("-", 2)
            if len(parts) != 3:
                continue
            path = os.path.join(self.directory, name)
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            yield path, parts[0], parts[1], size

    def stats(self) -> Dict[str, Any]:
        entry_count = 0
        stale = 0
        total_bytes = 0
        for _path, _kind, version, size in self.entries():
            entry_count += 1
            total_bytes += size
            if version != self.version:
                stale += 1
        return {
            "directory": self.directory,
            "code_version": self.version,
            "entries": entry_count,
            "stale_entries": stale,
            "bytes": total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "puts": self.puts,
        }

    def prune(self) -> int:
        """Drop entries written by other code versions (their keys can
        never match again); returns how many were removed."""
        removed = 0
        for path, _kind, version, _size in list(self.entries()):
            if version != self.version:
                try:
                    os.remove(path)
                    removed += 1
                except OSError:
                    pass
                self._memory.pop(path, None)
        return removed

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""
        removed = 0
        for path, _kind, _version, _size in list(self.entries()):
            try:
                os.remove(path)
                removed += 1
            except OSError:
                pass
        self._memory.clear()
        return removed


# ---------------------------------------------------------------------------
# Process-global store (REPRO_WARMSTORE_DIR)
# ---------------------------------------------------------------------------

_ACTIVE: Optional[WarmStore] = None
_ACTIVE_DIR: Optional[str] = None


def current() -> Optional[WarmStore]:
    """The process's warm store, rooted at ``$REPRO_WARMSTORE_DIR``;
    ``None`` when the variable is unset or the store is disabled.  The
    instance (and its memory LRU) persists across calls until the
    variable changes."""
    global _ACTIVE, _ACTIVE_DIR
    if not enabled():
        return None
    directory = os.environ.get("REPRO_WARMSTORE_DIR") or None
    if directory != _ACTIVE_DIR:
        _ACTIVE = WarmStore(directory) if directory else None
        _ACTIVE_DIR = directory
    return _ACTIVE


def reset_active_store() -> None:
    """Forget the process-global store (and its memory LRU), so the next
    :func:`current` call re-resolves from the environment.  Tests use this
    to force reuse through the on-disk layer."""
    global _ACTIVE, _ACTIVE_DIR
    _ACTIVE = None
    _ACTIVE_DIR = None


# ---------------------------------------------------------------------------
# Pristine-system pool (construction reuse inside one process)
# ---------------------------------------------------------------------------

#: Distinct configs pooled per process.  Each entry keeps one live System
#: plus its construction-time snapshot; restore is ~10x cheaper than
#: construction for large-LLC configs.
_PRISTINE_LIMIT = 4

_PRISTINE: "OrderedDict[Any, Tuple[Any, SystemSnapshot]]" = OrderedDict()


def pristine_system(config: Any) -> Any:
    """A system indistinguishable from ``System(config)``, reusing one
    pooled instance per config where safe.

    The pool restores the pooled machine's construction-time snapshot, so
    the caller always receives freshly-constructed state (including a
    detached off-chip predictor).  Pooling is bypassed — a brand-new
    ``System`` is returned — whenever an observer, a metrics registry, or
    the sanitizer is active (they bind at construction and must see every
    event), or when ``REPRO_NO_WARMSTORE`` disables warm reuse.

    Callers must be done with the previous system for ``config`` before
    requesting the next one: leases of the same config alias one object.
    """
    from repro import obs
    from repro.system import System

    if (not enabled()
            or obs.current_observer() is not None
            or obs_metrics.current() is not None
            or obs.sanitize_requested()):
        return System(config)
    entry = _PRISTINE.get(config)
    if entry is None:
        system = System(config)
        _PRISTINE[config] = (system, system.snapshot())
        while len(_PRISTINE) > _PRISTINE_LIMIT:
            _PRISTINE.popitem(last=False)
        record_event("misses")
        return system
    _PRISTINE.move_to_end(config)
    system, snapshot = entry
    # Pristine machines have no predictor; a previous lease (PnM-OffChip)
    # may have attached one, which restore() would otherwise reject.
    system.offchip_predictor = None
    system.restore(snapshot)
    record_event("hits")
    return system


def clear_pristine_pool() -> None:
    """Drop pooled systems (tests that need fresh construction paths)."""
    _PRISTINE.clear()
