"""Read-mapping substrate for the §4.3 side-channel attack.

A compact but real minimap2-style [103] pipeline:

- :mod:`repro.genomics.sequences` — synthetic reference genomes, mutated
  sample genomes, and error-bearing reads (the paper uses the human
  reference with synthetic samples; the channel leaks *positions*, so a
  seeded synthetic reference exercises the identical code path),
- :mod:`repro.genomics.minimizers` — k-mer encoding, invertible 64-bit
  hashing, and (w, k) window minimizers,
- :mod:`repro.genomics.index` — the reference hash table, laid out across
  DRAM banks (the structure the attacker probes),
- :mod:`repro.genomics.chaining` — anchor chaining (seeding's second half),
- :mod:`repro.genomics.alignment` — banded Smith-Waterman alignment,
- :mod:`repro.genomics.mapper` — the end-to-end read mapper,
- :mod:`repro.genomics.pim_mapper` — the PiM-offloaded mapper whose
  hash-table probes become DRAM bank activations on the simulated system.
"""

from repro.genomics.alignment import AlignmentResult, banded_align
from repro.genomics.chaining import Anchor, Chain, chain_anchors
from repro.genomics.index import ReferenceIndex
from repro.genomics.mapper import MappingResult, ReadMapper
from repro.genomics.minimizers import (
    Minimizer,
    extract_minimizers,
    hash_kmer,
    reverse_complement,
)
from repro.genomics.pim_mapper import PimReadMapper, SeedAccess
from repro.genomics.sequences import (
    generate_reference,
    mutate_genome,
    sample_reads,
)

__all__ = [
    "AlignmentResult",
    "Anchor",
    "Chain",
    "MappingResult",
    "Minimizer",
    "PimReadMapper",
    "ReadMapper",
    "ReferenceIndex",
    "SeedAccess",
    "banded_align",
    "chain_anchors",
    "extract_minimizers",
    "generate_reference",
    "hash_kmer",
    "mutate_genome",
    "reverse_complement",
    "sample_reads",
]
