"""Banded global alignment (the RM pipeline's final step, §4.3).

A banded Needleman-Wunsch with affine-ish costs reduced to linear gap
penalties: sufficient for scoring a read against its chained candidate
region, O(n x band) instead of O(n x m).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

NEG_INF = float("-inf")


@dataclass(frozen=True)
class AlignmentResult:
    """Score plus a compact CIGAR-style operation string."""

    score: int
    cigar: str
    matches: int
    mismatches: int
    gaps: int

    @property
    def identity(self) -> float:
        aligned = self.matches + self.mismatches + self.gaps
        return self.matches / aligned if aligned else 0.0


def banded_align(query: str, target: str, band: int = 32,
                 match: int = 2, mismatch: int = -4,
                 gap: int = -2, free_end_gaps: bool = True) -> AlignmentResult:
    """Align ``query`` against ``target`` within a diagonal band.

    The band is centered on the main diagonal; a band of at least
    ``abs(len(query) - len(target))`` is enforced so the global alignment
    exists.  With ``free_end_gaps`` (the read-mapping convention), target
    bases overhanging the query at either end are excluded from the CIGAR
    and the identity/gap counts — the read "fits" inside its reference
    window.
    """
    if band < 1:
        raise ValueError("band must be >= 1")
    n, m = len(query), len(target)
    band = max(band, abs(n - m) + 1)
    # dp[i] maps j -> score of aligning query[:i] with target[:j].
    prev: dict = {0: 0}
    for j in range(1, min(m, band) + 1):
        prev[j] = j * gap
    trace: List[dict] = [dict((j, "I") for j in prev if j > 0)]
    for i in range(1, n + 1):
        lo = max(0, i - band)
        hi = min(m, i + band)
        current: dict = {}
        ops: dict = {}
        for j in range(lo, hi + 1):
            best = NEG_INF
            op = "?"
            if j > 0 and (j - 1) in prev:
                diag = prev[j - 1] + (match if query[i - 1] == target[j - 1]
                                      else mismatch)
                if diag > best:
                    best, op = diag, ("M" if query[i - 1] == target[j - 1]
                                      else "X")
            if j in prev:
                up = prev[j] + gap
                if up > best:
                    best, op = up, "D"
            if (j - 1) in current:
                left = current[j - 1] + gap
                if left > best:
                    best, op = left, "I"
            if best > NEG_INF:
                current[j] = best
                ops[j] = op
        prev = current
        trace.append(ops)
    if m not in prev:
        raise ValueError("band too narrow for a global alignment")
    # Traceback.
    operations: List[str] = []
    i, j = n, m
    while i > 0 or j > 0:
        op = trace[i].get(j)
        if op is None:
            op = "I" if i == 0 else "D"
        operations.append("M" if op in ("M", "X") else op)
        if op in ("M", "X"):
            counted = op
            i, j = i - 1, j - 1
        elif op == "D":
            i -= 1
        else:
            j -= 1
    operations.reverse()
    leading_trim = 0
    if free_end_gaps:
        lo = 0
        while lo < len(operations) and operations[lo] == "I":
            lo += 1
        hi = len(operations)
        while hi > lo and operations[hi - 1] == "I":
            hi -= 1
        leading_trim = lo
        operations = operations[lo:hi]
    cigar = _compress(operations)
    matches = mismatches = gaps = 0
    i, j = 0, leading_trim
    for op_char in operations:
        if op_char == "M":
            if query[i] == target[j]:
                matches += 1
            else:
                mismatches += 1
            i += 1
            j += 1
        elif op_char == "D":
            gaps += 1
            i += 1
        else:
            gaps += 1
            j += 1
    return AlignmentResult(score=int(prev[m]), cigar=cigar, matches=matches,
                           mismatches=mismatches, gaps=gaps)


def _compress(operations: List[str]) -> str:
    """Run-length encode an operation list: MMMID -> 3M1I1D."""
    if not operations:
        return ""
    parts: List[str] = []
    run_char = operations[0]
    run_len = 1
    for op in operations[1:]:
        if op == run_char:
            run_len += 1
        else:
            parts.append(f"{run_len}{run_char}")
            run_char, run_len = op, 1
    parts.append(f"{run_len}{run_char}")
    return "".join(parts)
