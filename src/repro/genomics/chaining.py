"""Anchor chaining: seeding's second half (§4.3).

Seed hits (anchors) are (read position, reference position) pairs; the
chainer finds the highest-scoring colinear subset via the standard
O(n^2) dynamic program with a concave gap cost — the same formulation
minimap2 uses (with its heuristics dropped for clarity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class Anchor:
    """One seed hit."""

    read_pos: int
    ref_pos: int
    length: int = 15


@dataclass(frozen=True)
class Chain:
    """A scored colinear chain of anchors."""

    anchors: List[Anchor]
    score: float

    @property
    def ref_start(self) -> int:
        return self.anchors[0].ref_pos

    @property
    def ref_end(self) -> int:
        last = self.anchors[-1]
        return last.ref_pos + last.length

    @property
    def read_start(self) -> int:
        return self.anchors[0].read_pos


def _gap_cost(dr: int, dq: int) -> float:
    """Concave penalty for the diagonal drift between two anchors."""
    gap = abs(dr - dq)
    if gap == 0:
        return 0.0
    return 0.5 * gap + 0.5 * math.log2(gap + 1)


def chain_anchors(anchors: Sequence[Anchor], max_gap: int = 5000,
                  min_score: float = 20.0) -> Optional[Chain]:
    """Best chain under the DP ``f[i] = max(f[j] + match - gap_cost)``.

    Returns None when no chain reaches ``min_score`` (the read does not
    map).  Anchors need not be sorted.
    """
    if not anchors:
        return None
    ordered = sorted(anchors, key=lambda a: (a.ref_pos, a.read_pos))
    n = len(ordered)
    score = [float(a.length) for a in ordered]
    parent = [-1] * n
    for i in range(n):
        ai = ordered[i]
        for j in range(i - 1, -1, -1):
            aj = ordered[j]
            dr = ai.ref_pos - aj.ref_pos
            dq = ai.read_pos - aj.read_pos
            if dr <= 0 or dq <= 0:
                continue
            if dr > max_gap:
                break
            candidate = score[j] + min(ai.length, dq, dr) - _gap_cost(dr, dq)
            if candidate > score[i]:
                score[i] = candidate
                parent[i] = j
    best = max(range(n), key=lambda i: score[i])
    if score[best] < min_score:
        return None
    chain: List[Anchor] = []
    i = best
    while i >= 0:
        chain.append(ordered[i])
        i = parent[i]
    chain.reverse()
    return Chain(anchors=chain, score=score[best])
