"""The reference hash table, laid out across DRAM banks.

The read-mapping tool builds one index from the reference genome; every
user's seeding step probes it (§4.3).  Buckets (one per distinct minimizer
hash) are assigned consecutive entry indices and striped across banks —
the bank-interleaving assumption the paper justifies with modern DRAM
address mappings [104-107].  The striping is exactly what the attacker
exploits: *which bank* a probe activates narrows the probed bucket down to
``buckets / num_banks`` candidates, and the narrowing sharpens as the
bank count grows (§5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.genomics.minimizers import Minimizer, extract_minimizers


@dataclass(frozen=True)
class BucketLocation:
    """Physical placement of one hash-table bucket.

    ``col`` is the bucket's byte offset within its DRAM row: distinct
    buckets sharing a row occupy distinct slots, so the victim's probes
    are distinct addresses (what the PMU locality monitor sees) even when
    they activate the same row (what the attacker sees)."""

    entry_index: int
    bank: int
    row: int
    col: int = 0


class ReferenceIndex:
    """Minimizer hash table over a reference genome.

    Args:
        reference: the reference sequence.
        k, w: minimizer parameters (the paper sweeps seed sizes, §5.1).
        num_banks: banks the table is striped over.
        rows_per_bank_offset: first DRAM row used by the table in each bank.
        entries_per_row: buckets that share one DRAM row within a bank.
    """

    def __init__(self, reference: str, k: int = 15, w: int = 10,
                 num_banks: int = 16, rows_per_bank_offset: int = 1024,
                 entries_per_row: int = 16) -> None:
        if num_banks < 1:
            raise ValueError("num_banks must be >= 1")
        if entries_per_row < 1:
            raise ValueError("entries_per_row must be >= 1")
        self.k = k
        self.w = w
        self.num_banks = num_banks
        self.rows_per_bank_offset = rows_per_bank_offset
        self.entries_per_row = entries_per_row
        self._buckets: Dict[int, List[int]] = {}
        for minimizer in extract_minimizers(reference, k=k, w=w):
            self._buckets.setdefault(minimizer.hash_value, []).append(
                minimizer.position)
        # Deterministic entry order: sorted by hash.
        self._entry_of_hash: Dict[int, int] = {
            h: i for i, h in enumerate(sorted(self._buckets))
        }

    # ------------------------------------------------------------------
    # Logical lookups (the mapper's view)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._buckets)

    def lookup(self, hash_value: int) -> List[int]:
        """Reference positions whose minimizer matches ``hash_value``."""
        return list(self._buckets.get(hash_value, ()))

    def contains(self, hash_value: int) -> bool:
        return hash_value in self._buckets

    # ------------------------------------------------------------------
    # Physical layout (the attacker's view)
    # ------------------------------------------------------------------

    def entry_index(self, hash_value: int) -> Optional[int]:
        """Flat entry index of the bucket, or None if absent."""
        return self._entry_of_hash.get(hash_value)

    #: Byte slot per bucket within a row (one cache line each).
    BUCKET_SLOT_BYTES = 64

    def location_of_entry(self, entry_index: int) -> BucketLocation:
        """Bank/row/slot placement of a bucket: entries stripe across
        banks, then pack ``entries_per_row`` to a row within each bank."""
        if not 0 <= entry_index < len(self._buckets):
            raise ValueError(f"entry {entry_index} out of range")
        bank = entry_index % self.num_banks
        index_in_bank = entry_index // self.num_banks
        row = self.rows_per_bank_offset + index_in_bank // self.entries_per_row
        col = (index_in_bank % self.entries_per_row) * self.BUCKET_SLOT_BYTES
        return BucketLocation(entry_index=entry_index, bank=bank, row=row,
                              col=col)

    def location_of_hash(self, hash_value: int) -> Optional[BucketLocation]:
        entry = self.entry_index(hash_value)
        if entry is None:
            return None
        return self.location_of_entry(entry)

    @property
    def entries_per_bank(self) -> float:
        """Candidate buckets per bank — the attacker's ambiguity (§5.4):
        halves every time the bank count doubles."""
        return len(self._buckets) / self.num_banks

    def candidates_in_bank(self, bank: int) -> List[int]:
        """Entry indices a leak of ``bank`` narrows the probe down to."""
        if not 0 <= bank < self.num_banks:
            raise ValueError(f"bank {bank} out of range")
        return list(range(bank, len(self._buckets), self.num_banks))

    def restripe(self, num_banks: int) -> "ReferenceIndex":
        """The same logical table laid out over a different bank count
        (Fig. 10's sweep re-stripes, it does not rebuild)."""
        clone = object.__new__(ReferenceIndex)
        clone.k = self.k
        clone.w = self.w
        clone.num_banks = num_banks
        clone.rows_per_bank_offset = self.rows_per_bank_offset
        clone.entries_per_row = self.entries_per_row
        clone._buckets = self._buckets
        clone._entry_of_hash = self._entry_of_hash
        if num_banks < 1:
            raise ValueError("num_banks must be >= 1")
        return clone
