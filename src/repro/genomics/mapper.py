"""The end-to-end read mapper: seeding -> chaining -> alignment (§4.3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.genomics.alignment import AlignmentResult, banded_align
from repro.genomics.chaining import Anchor, Chain, chain_anchors
from repro.genomics.index import ReferenceIndex
from repro.genomics.minimizers import extract_minimizers, reverse_complement


@dataclass(frozen=True)
class MappingResult:
    """Where a read mapped, and how well."""

    position: int
    chain: Chain
    alignment: AlignmentResult

    @property
    def score(self) -> int:
        return self.alignment.score


class ReadMapper:
    """Maps reads against a :class:`ReferenceIndex`.

    The seeding step probes the shared hash table — on a PiM-enabled
    system those probes are the DRAM activations the §4.3 attacker
    observes (see :class:`repro.genomics.pim_mapper.PimReadMapper`).
    """

    def __init__(self, reference: str, index: ReferenceIndex,
                 max_hits_per_seed: int = 64, band: int = 32) -> None:
        self.reference = reference
        self.index = index
        self.max_hits_per_seed = max_hits_per_seed
        self.band = band

    def seed(self, read: str) -> List[Anchor]:
        """Seeding: extract minimizers and collect index hits as anchors."""
        anchors: List[Anchor] = []
        for minimizer in extract_minimizers(read, k=self.index.k,
                                            w=self.index.w):
            positions = self.index.lookup(minimizer.hash_value)
            if not positions or len(positions) > self.max_hits_per_seed:
                continue  # absent or too repetitive to be informative
            for ref_pos in positions:
                anchors.append(Anchor(read_pos=minimizer.position,
                                      ref_pos=ref_pos, length=self.index.k))
        return anchors

    def map_read(self, read: str) -> Optional[MappingResult]:
        """Full pipeline; returns None when the read does not map.

        Reads sequenced from the reverse strand are handled by retrying
        with the reverse complement (minimap2 does this via canonical
        k-mer hashing; the retry exercises the identical seeding path)."""
        result = self._map_oriented(read)
        if result is not None:
            return result
        return self._map_oriented(reverse_complement(read))

    def _map_oriented(self, read: str) -> Optional[MappingResult]:
        anchors = self.seed(read)
        chain = chain_anchors(anchors)
        if chain is None:
            return None
        # Align the read against a tight reference window: the chain pins
        # the read's start on the reference; a small slack absorbs indels.
        slack = 8
        start = max(0, chain.ref_start - chain.read_start - slack // 2)
        end = min(len(self.reference), start + len(read) + slack)
        target = self.reference[start:end]
        alignment = banded_align(read, target, band=self.band)
        return MappingResult(position=start, chain=chain, alignment=alignment)

    def mapping_accuracy(self, reads, tolerance: int = 64) -> float:
        """Fraction of (read, true_pos) pairs mapped within ``tolerance``."""
        if not reads:
            return 0.0
        hits = 0
        for read, true_pos in reads:
            result = self.map_read(read)
            if result is not None and abs(result.position - true_pos) <= tolerance:
                hits += 1
        return hits / len(reads)
