"""k-mer hashing and window minimizers (minimap2-style seeding [103]).

A minimizer is the smallest-hashed k-mer in each window of w consecutive
k-mers; storing only minimizers keeps the index small while guaranteeing
that two sequences sharing a long enough exact match share a minimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

_BASE_CODES: Dict[str, int] = {"A": 0, "C": 1, "G": 2, "T": 3}
_COMPLEMENT: Dict[str, str] = {"A": "T", "C": "G", "G": "C", "T": "A"}
_MASK64 = (1 << 64) - 1


def reverse_complement(sequence: str) -> str:
    """The opposite-strand reading of ``sequence`` (3'->5' complement)."""
    try:
        return "".join(_COMPLEMENT[base] for base in reversed(sequence))
    except KeyError as exc:
        raise ValueError(f"invalid base {exc.args[0]!r}") from None


def encode_kmer(kmer: str) -> int:
    """Pack a k-mer into 2 bits per base (A=0, C=1, G=2, T=3)."""
    value = 0
    for base in kmer:
        try:
            code = _BASE_CODES[base]
        except KeyError:
            raise ValueError(f"invalid base {base!r}") from None
        value = (value << 2) | code
    return value


def hash_kmer(kmer: str) -> int:
    """Invertible 64-bit mix of the packed k-mer (minimap2's hash64)."""
    return _hash64(encode_kmer(kmer))


def _hash64(key: int) -> int:
    """Thomas Wang's 64-bit integer hash, as used by minimap2."""
    key = (~key + (key << 21)) & _MASK64
    key = key ^ (key >> 24)
    key = (key + (key << 3) + (key << 8)) & _MASK64
    key = key ^ (key >> 14)
    key = (key + (key << 2) + (key << 4)) & _MASK64
    key = key ^ (key >> 28)
    key = (key + (key << 31)) & _MASK64
    return key


@dataclass(frozen=True)
class Minimizer:
    """One selected seed: the k-mer's hash and its start position."""

    hash_value: int
    position: int


def extract_minimizers(sequence: str, k: int = 15,
                       w: int = 10) -> List[Minimizer]:
    """(w, k) window minimizers of ``sequence``.

    Scans every window of ``w`` consecutive k-mers and keeps the k-mer
    with the smallest hash (leftmost on ties); consecutive windows sharing
    their minimizer emit it once.
    """
    if k < 1 or w < 1:
        raise ValueError("k and w must be >= 1")
    n = len(sequence) - k + 1
    if n < 1:
        return []
    hashes = [_hash64(encode_kmer(sequence[i:i + k])) for i in range(n)]
    minimizers: List[Minimizer] = []
    last_pos = -1
    for window_start in range(max(1, n - w + 1)):
        end = min(window_start + w, n)
        best = window_start
        for i in range(window_start, end):
            if hashes[i] < hashes[best]:
                best = i
        if best != last_pos:
            minimizers.append(Minimizer(hash_value=hashes[best], position=best))
            last_pos = best
    return minimizers
