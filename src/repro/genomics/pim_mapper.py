"""PiM-offloaded read mapping: the §4.3 victim.

The victim's seeding step is offloaded to the PiM-enabled system: each
hash-table probe becomes a PEI to the DRAM bank holding the probed bucket,
activating that bucket's row (Fig. 6, step 2).  The attacker never sees
the probe's *content* — only the bank-level activation, which this module
exposes as the ground-truth access trace the side channel is scored
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.genomics.index import BucketLocation, ReferenceIndex
from repro.genomics.mapper import MappingResult, ReadMapper
from repro.genomics.minimizers import extract_minimizers
from repro.sim.scheduler import Context
from repro.system import System


@dataclass(frozen=True)
class SeedAccess:
    """One victim hash-table probe: which bucket, hence which bank/row."""

    hash_value: int
    location: BucketLocation

    @property
    def bank(self) -> int:
        return self.location.bank

    @property
    def row(self) -> int:
        return self.location.row


class PimReadMapper:
    """A read mapper whose seeding probes run as PEIs on a System.

    Separates two concerns:

    - :meth:`seed_accesses` — the *logical* access schedule of a read
      (which buckets, in probe order); pure computation, reusable across
      bank-count sweeps via :meth:`ReferenceIndex.restripe`.
    - :meth:`probe` — executing one access on the simulated system from a
      victim thread (advances the thread's clock, activates the bank).
    """

    def __init__(self, system: System, reference: str,
                 index: ReferenceIndex, mapper: Optional[ReadMapper] = None) -> None:
        self.system = system
        self.index = index
        self.mapper = mapper or ReadMapper(reference, index)

    def seed_accesses(self, read: str) -> List[SeedAccess]:
        """The bank/row schedule the victim's seeding step will touch."""
        accesses: List[SeedAccess] = []
        for minimizer in extract_minimizers(read, k=self.index.k,
                                            w=self.index.w):
            location = self.index.location_of_hash(minimizer.hash_value)
            if location is None:
                continue
            accesses.append(SeedAccess(hash_value=minimizer.hash_value,
                                       location=location))
        return accesses

    def trace_for_reads(self, reads: List[str]) -> List[SeedAccess]:
        """Concatenated access schedule for a batch of reads."""
        trace: List[SeedAccess] = []
        for read in reads:
            trace.extend(self.seed_accesses(read))
        return trace

    def probe(self, ctx: Context, access: SeedAccess) -> None:
        """Execute one hash-table probe as a PEI (the victim's step 2)."""
        addr = self.system.address_of(access.bank, access.row,
                                      access.location.col)
        self.system.pei_op(ctx, addr, requestor="victim")

    def map_read(self, read: str) -> Optional[MappingResult]:
        """The full pipeline result (the victim's output is unchanged by
        offloading — PiM accelerates, the attack leaks)."""
        return self.mapper.map_read(read)
