"""Synthetic genome and read generation.

The paper maps reads from synthetic sample genomes against the human
reference (§5.1).  We generate seeded random references and derive sample
genomes by applying SNPs and small indels, then sample error-bearing reads
from the sample — the standard evaluation setup for read mappers.
"""

from __future__ import annotations

import random
from typing import List, Tuple

ALPHABET = "ACGT"


def generate_reference(length: int, seed: int = 0) -> str:
    """A uniform-random reference genome of ``length`` bases."""
    if length < 1:
        raise ValueError("length must be >= 1")
    rng = random.Random(seed)
    return "".join(rng.choice(ALPHABET) for _ in range(length))


def mutate_genome(reference: str, snp_rate: float = 0.001,
                  indel_rate: float = 0.0002, seed: int = 1) -> str:
    """Derive a sample genome: substitutions plus 1-3 bp indels.

    Rates are per-base probabilities; defaults approximate human
    inter-individual variation (~0.1% SNPs).
    """
    if not 0 <= snp_rate <= 1 or not 0 <= indel_rate <= 1:
        raise ValueError("rates must be within [0, 1]")
    rng = random.Random(seed)
    out: List[str] = []
    i = 0
    while i < len(reference):
        base = reference[i]
        roll = rng.random()
        if roll < indel_rate / 2:
            # Deletion of 1-3 bases.
            i += rng.randint(1, 3)
            continue
        if roll < indel_rate:
            # Insertion of 1-3 random bases.
            out.append("".join(rng.choice(ALPHABET)
                               for _ in range(rng.randint(1, 3))))
        if rng.random() < snp_rate:
            choices = [b for b in ALPHABET if b != base]
            base = rng.choice(choices)
        out.append(base)
        i += 1
    return "".join(out)


def sample_reads(genome: str, num_reads: int, read_length: int = 150,
                 error_rate: float = 0.002, seed: int = 2,
                 both_strands: bool = False) -> List[Tuple[str, int]]:
    """Extract ``num_reads`` reads of ``read_length`` with base errors.

    Returns (read, true_position) pairs; positions refer to the *sampled*
    genome, enabling mapping-accuracy checks.  With ``both_strands``,
    half the reads (in expectation) come from the reverse strand, as real
    sequencing produces.
    """
    if read_length > len(genome):
        raise ValueError("read longer than genome")
    if num_reads < 0:
        raise ValueError("num_reads must be >= 0")
    rng = random.Random(seed)
    complement = {"A": "T", "C": "G", "G": "C", "T": "A"}
    reads: List[Tuple[str, int]] = []
    for _ in range(num_reads):
        pos = rng.randrange(len(genome) - read_length + 1)
        bases = list(genome[pos:pos + read_length])
        for j in range(len(bases)):
            if rng.random() < error_rate:
                bases[j] = rng.choice([b for b in ALPHABET if b != bases[j]])
        read = "".join(bases)
        if both_strands and rng.random() < 0.5:
            read = "".join(complement[b] for b in reversed(read))
        reads.append((read, pos))
    return reads
