"""MMU substrate: TLBs and the page-table walker.

Address translation matters to the attacks in two ways (§3.2, §5.1):
eviction-set construction suffers translation overheads, and page-table
walks are a noise source — a PTW issues real memory accesses that perturb
caches and DRAM row buffers.  The attacks' warm-up phase (§5.1) exists to
pre-fill these TLBs.
"""

from repro.mmu.mmu import MMU, MMUConfig, TranslationResult
from repro.mmu.page_table import PageTableWalker
from repro.mmu.tlb import TLB, TLBConfig

__all__ = [
    "MMU",
    "MMUConfig",
    "PageTableWalker",
    "TLB",
    "TLBConfig",
    "TranslationResult",
]
