"""Per-core MMU: two split L1 DTLBs, a unified L2 TLB, and the walker."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.mmu.page_table import PageTableWalker
from repro.mmu.tlb import TLB, TLBConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.hierarchy import CacheHierarchy


@dataclass(frozen=True)
class MMUConfig:
    """Table 2's MMU row."""

    l1_4k: TLBConfig = field(default_factory=lambda: TLBConfig(
        name="L1-DTLB-4K", entries=64, ways=4, latency_cycles=1,
        page_bytes=4096))
    l1_2m: TLBConfig = field(default_factory=lambda: TLBConfig(
        name="L1-DTLB-2M", entries=32, ways=4, latency_cycles=1,
        page_bytes=2 * 1024 * 1024))
    l2: TLBConfig = field(default_factory=lambda: TLBConfig(
        name="L2-TLB", entries=1536, ways=12, latency_cycles=12,
        page_bytes=4096))


@dataclass(frozen=True)
class TranslationResult:
    """Outcome of a translation: physical address plus the cycles it cost."""

    paddr: int
    latency: int
    l1_hit: bool
    l2_hit: bool
    walked: bool


class MMU:
    """One core's translation path (flat virtual=physical address space).

    The simulation uses an identity virtual-to-physical mapping — attacks in
    the paper assume successful memory massaging, i.e. the attacker already
    knows the physical placement of its pages — so the MMU contributes
    latency and page-walk noise, not remapping.
    """

    def __init__(self, config: MMUConfig, walker: Optional[PageTableWalker],
                 core: int, huge_pages: bool = False) -> None:
        self.config = config
        self.walker = walker
        self.core = core
        self.huge_pages = huge_pages
        self.l1_4k = TLB(config.l1_4k)
        self.l1_2m = TLB(config.l1_2m)
        self.l2 = TLB(config.l2)

    def _l1(self) -> TLB:
        return self.l1_2m if self.huge_pages else self.l1_4k

    def translate(self, vaddr: int, issued: int) -> TranslationResult:
        """Translate ``vaddr``; may trigger a page-table walk."""
        l1 = self._l1()
        latency = l1.config.latency_cycles
        if l1.lookup(vaddr):
            return TranslationResult(paddr=vaddr, latency=latency,
                                     l1_hit=True, l2_hit=False, walked=False)
        latency += self.l2.config.latency_cycles
        if self.l2.lookup(vaddr):
            l1.fill(vaddr)
            return TranslationResult(paddr=vaddr, latency=latency,
                                     l1_hit=False, l2_hit=True, walked=False)
        walk_latency = 0
        if self.walker is not None:
            walk_latency = self.walker.walk(self.core, vaddr, issued + latency)
        latency += walk_latency
        self.l2.fill(vaddr)
        l1.fill(vaddr)
        return TranslationResult(paddr=vaddr, latency=latency,
                                 l1_hit=False, l2_hit=False, walked=True)

    def warm_up(self, vaddrs) -> None:
        """Pre-fill the TLBs (the attacks' warm-up phase, §5.1)."""
        for vaddr in vaddrs:
            self.l2.fill(vaddr)
            self._l1().fill(vaddr)

    def snapshot_state(self) -> tuple:
        """Copied state of all three TLBs (warm-state snapshots)."""
        return (self.l1_4k.snapshot_state(), self.l1_2m.snapshot_state(),
                self.l2.snapshot_state())

    def restore_state(self, state: tuple) -> None:
        l1_4k, l1_2m, l2 = state
        self.l1_4k.restore_state(l1_4k)
        self.l1_2m.restore_state(l1_2m)
        self.l2.restore_state(l2)
