"""Radix page-table walker.

A TLB miss triggers a 4-level walk; each level is a real memory access
through the cache hierarchy, so walks both cost latency and perturb shared
state (a simulated noise source, §5.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.hierarchy import CacheHierarchy

_LEVELS = 4
_ENTRY_BYTES = 8
_ENTRIES_PER_TABLE = 512  # 9 bits per level, x86-64 radix


class PageTableWalker:
    """Walks a synthetic 4-level radix table laid out in physical memory.

    The table occupies a dedicated physical region starting at
    ``table_base``; entry addresses are derived from the virtual page
    number's 9-bit slices, so distinct pages walk distinct (cacheable)
    entry chains, as on real hardware.
    """

    def __init__(self, hierarchy: "CacheHierarchy", table_base: int,
                 table_bytes: int = 1 << 20) -> None:
        if table_base < 0 or table_bytes < _LEVELS * _ENTRY_BYTES:
            raise ValueError("page-table region too small")
        self.hierarchy = hierarchy
        self.table_base = table_base
        self.table_bytes = table_bytes
        self.walks = 0

    def entry_addresses(self, vaddr: int) -> List[int]:
        """Physical addresses of the 4 page-table entries for ``vaddr``."""
        vpn = vaddr >> 12
        addrs = []
        for level in range(_LEVELS):
            index = (vpn >> (9 * (_LEVELS - 1 - level))) & (_ENTRIES_PER_TABLE - 1)
            # Each level owns a slice of the table region.
            slice_base = self.table_base + level * (self.table_bytes // _LEVELS)
            slice_size = self.table_bytes // _LEVELS
            offset = (index * _ENTRY_BYTES + (vpn * 257) % slice_size) % slice_size
            offset -= offset % _ENTRY_BYTES
            addrs.append(slice_base + offset)
        return addrs

    def walk(self, core: int, vaddr: int, issued: int, *,
             requestor: str = "ptw") -> int:
        """Perform the walk; returns its total latency in cycles."""
        self.walks += 1
        latency = 0
        for entry_addr in self.entry_addresses(vaddr):
            result = self.hierarchy.access(core, entry_addr, issued + latency,
                                           requestor=requestor)
            latency += result.latency
        return latency
