"""Set-associative translation lookaside buffers (Table 2 MMU row)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class TLBConfig:
    """One TLB level.

    Defaults are Table 2's L1 DTLB for 4 KB pages: 64-entry, 4-way, 1-cycle.
    """

    name: str = "L1-DTLB-4K"
    entries: int = 64
    ways: int = 4
    latency_cycles: int = 1
    page_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.entries < 1 or self.ways < 1:
            raise ValueError("entries and ways must be >= 1")
        if self.entries % self.ways != 0:
            raise ValueError(f"{self.name}: entries not divisible by ways")
        if self.latency_cycles < 0:
            raise ValueError("latency must be >= 0")
        if self.page_bytes < 1 or self.page_bytes & (self.page_bytes - 1):
            raise ValueError("page_bytes must be a positive power of two")

    @property
    def num_sets(self) -> int:
        return self.entries // self.ways


class TLB:
    """LRU set-associative TLB caching page-number translations."""

    def __init__(self, config: TLBConfig) -> None:
        self.config = config
        sets = config.num_sets
        self._pages: List[List[int]] = [[-1] * config.ways for _ in range(sets)]
        self._stamps: List[List[int]] = [[0] * config.ways for _ in range(sets)]
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def page_of(self, vaddr: int) -> int:
        return vaddr // self.config.page_bytes

    def lookup(self, vaddr: int) -> bool:
        """Probe for the page containing ``vaddr``; updates LRU on hit."""
        page = self.page_of(vaddr)
        set_index = page % self.config.num_sets
        pages = self._pages[set_index]
        for way in range(self.config.ways):
            if pages[way] == page:
                self._clock += 1
                self._stamps[set_index][way] = self._clock
                self.hits += 1
                return True
        self.misses += 1
        return False

    def fill(self, vaddr: int) -> Optional[int]:
        """Install the translation; returns the evicted page (or None)."""
        page = self.page_of(vaddr)
        set_index = page % self.config.num_sets
        pages = self._pages[set_index]
        stamps = self._stamps[set_index]
        if page in pages:
            return None
        victim = min(range(self.config.ways), key=lambda w: stamps[w])
        evicted = pages[victim] if pages[victim] >= 0 else None
        pages[victim] = page
        self._clock += 1
        stamps[victim] = self._clock
        return evicted

    def flush(self) -> None:
        """Invalidate all entries (context switch)."""
        for pages in self._pages:
            for way in range(len(pages)):
                pages[way] = -1

    def snapshot_state(self) -> tuple:
        """Copied entries + LRU stamps + counters (warm-state snapshots)."""
        return ([list(row) for row in self._pages],
                [list(row) for row in self._stamps],
                self._clock, self.hits, self.misses)

    def restore_state(self, state: tuple) -> None:
        pages, stamps, self._clock, self.hits, self.misses = state
        for dst, src in zip(self._pages, pages):
            dst[:] = src
        for dst, src in zip(self._stamps, stamps):
            dst[:] = src

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
