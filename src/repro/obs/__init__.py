"""Observability and sanitizer subsystem (``repro.obs``).

Three layers:

- :class:`Observer` / :class:`MultiObserver` — the hook protocol the
  instrumented components (controller, cache hierarchy, scheduler, PEI
  engine) call into; ``None`` means "off" and costs one branch.
- :class:`Tracer` — structured cycle-stamped event capture with
  Chrome-trace JSON and per-requestor metrics export.
- :class:`Sanitizer` — per-event timing-invariant checks
  (``REPRO_SANITIZE=1`` or ``System(sanitize=True)``).

A process-global observer can be installed with :func:`install` so
components built without an explicit ``observer=`` argument (schedulers
inside attack primitives, systems built deep inside sweep workers) still
report events — that is how traces survive ``exp/runner``'s process-pool
fan-out: each worker installs a fresh :class:`Tracer` around its point.

This package deliberately imports nothing from the simulation core so the
core modules can import it without cycles.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.obs.core import MultiObserver, Observer
from repro.obs.metrics import (
    MetricsObserver,
    MetricsRegistry,
    PhaseProfiler,
)
from repro.obs.metrics import current as current_metrics
from repro.obs.metrics import install as install_metrics
from repro.obs.metrics import phase as metrics_phase
from repro.obs.metrics import uninstall as uninstall_metrics
from repro.obs.sanitizer import Sanitizer, SanitizerError
from repro.obs.telemetry import FleetHealth
from repro.obs.telemetry import emit as telemetry_emit
from repro.obs.telemetry import log as telemetry_log
from repro.obs.trace import TraceEvent, Tracer, summarize_chrome_trace

__all__ = [
    "Observer",
    "MultiObserver",
    "Tracer",
    "TraceEvent",
    "Sanitizer",
    "SanitizerError",
    "MetricsRegistry",
    "MetricsObserver",
    "PhaseProfiler",
    "install",
    "uninstall",
    "current_observer",
    "sanitize_requested",
    "install_metrics",
    "uninstall_metrics",
    "current_metrics",
    "metrics_phase",
    "summarize_chrome_trace",
    "FleetHealth",
    "telemetry_emit",
    "telemetry_log",
]

_active: Optional[Observer] = None


def install(observer: Observer) -> Observer:
    """Make ``observer`` the process-global default observer.

    Components created afterwards (without an explicit ``observer=``)
    pick it up; returns the observer for chaining.
    """
    global _active
    _active = observer
    return observer


def uninstall() -> None:
    """Remove the process-global observer."""
    global _active
    _active = None


def current_observer() -> Optional[Observer]:
    """The installed process-global observer, or ``None``."""
    return _active


def sanitize_requested() -> bool:
    """True when ``REPRO_SANITIZE`` is set to a truthy value."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() \
        not in ("", "0", "false", "no", "off")
