"""Observer protocol shared by the trace and sanitizer layers.

Instrumented components (memory controller, cache hierarchy, scheduler,
PEI engine) hold an optional observer reference that defaults to ``None``;
every hook site is guarded by ``if obs is not None`` so the instrumentation
is a single attribute load + branch when observability is off — the
simulation hot paths pay (measurably) nothing.

:class:`Observer` is the no-op base: subclasses override only the hooks
they care about (:class:`repro.obs.trace.Tracer` records events,
:class:`repro.obs.sanitizer.Sanitizer` checks timing invariants).
:class:`MultiObserver` fans every hook out to several observers so tracing
and sanitizing can run together.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional


class Observer:
    """No-op base observer; every hook is safe to leave unimplemented.

    Hook arguments are plain values plus, for DRAM hooks, the live
    :class:`~repro.dram.bank.Bank` so checkers can inspect post-event bank
    state.  Observers must not mutate any component they are handed.
    """

    def bind_device(self, device: Any) -> None:
        """Called when attached to a memory controller; ``device`` is its
        :class:`~repro.dram.device.DRAMDevice` (geometry + timings +
        refresh schedule)."""

    # -- DRAM ----------------------------------------------------------
    def on_dram_access(self, op: str, bank_index: int, row: int, kind: Any,
                       requestor: str, issued: int, start: int,
                       service_start: int, finish: int, predicted: Any,
                       bank: Any) -> None:
        """A column access (``op`` = ``"RD"``/``"WR"``) or a bare
        activation (``op`` = ``"ACT"``) completed on ``bank``.

        ``start`` is the post-queue/post-refresh earliest issue time the
        controller handed the bank; ``predicted`` is the outcome
        ``Bank.classify`` forecast immediately before the access (``None``
        when the observer layer did not request a prediction).
        """

    def on_precharge(self, bank_index: int, issued: int, service_start: int,
                     finish: int, opened_at: int, had_row: bool,
                     bank: Any) -> None:
        """An explicit PRE command closed (or found already closed) a row."""

    def on_refresh(self, bank_index: int, blocked_at: int, window_end: int,
                   bank: Any) -> None:
        """A request was blocked by a refresh window ending at
        ``window_end``; the bank's row buffer closed."""

    def on_rowclone(self, bank_index: int, src_row: int, dst_row: int,
                    kind: Any, issued: int, service_start: int, finish: int,
                    requestor: str, predicted: Any, bank: Any) -> None:
        """One bank-level leg of a (multi-bank) RowClone completed."""

    # -- PiM -----------------------------------------------------------
    def on_pei(self, site: str, addr: int, issued: int, finish: int,
               requestor: str, kind: Optional[str],
               bank: Optional[int]) -> None:
        """A PEI operation completed at ``site`` (``"memory"``/``"host"``)."""

    # -- Cache hierarchy ----------------------------------------------
    def on_cache_miss(self, core: int, addr: int, issued: int, finish: int,
                      requestor: str) -> None:
        """A demand access missed the whole hierarchy and filled from DRAM."""

    def on_cache_writeback(self, addr: int, time: int,
                           requestor: str) -> None:
        """A dirty line left the LLC toward DRAM."""

    def on_clflush(self, core: int, addr: int, issued: int, finish: int,
                   requestor: str, dirty: bool) -> None:
        """A ``clflush`` invalidated a line everywhere."""

    # -- Scheduler -----------------------------------------------------
    def on_thread_resume(self, name: str, now: int, sched_id: int) -> None:
        """The scheduler resumed thread ``name`` at virtual time ``now``.

        ``sched_id`` identifies the scheduler instance — thread names
        repeat across trials (each builds a fresh scheduler restarting at
        t=0), so per-thread clocks are only monotonic *within* one
        scheduler's lifetime.
        """

    def on_thread_block(self, name: str, now: int, reason: str,
                        sched_id: int) -> None:
        """Thread ``name`` blocked on ``reason`` (semaphore/barrier name)."""

    # -- Lifecycle -----------------------------------------------------
    def on_clock_reset(self, reason: str) -> None:
        """Virtual clocks were legitimately rewound (``"rebase"`` after a
        warm-up pass, ``"restore"`` of a snapshot); monotonicity baselines
        must restart."""


class MultiObserver(Observer):
    """Fans every hook out to each child observer, in order."""

    def __init__(self, observers: Iterable[Observer]) -> None:
        self.observers: List[Observer] = [o for o in observers if o is not None]

    def bind_device(self, device: Any) -> None:
        for o in self.observers:
            o.bind_device(device)

    def on_dram_access(self, *args: Any) -> None:
        for o in self.observers:
            o.on_dram_access(*args)

    def on_precharge(self, *args: Any) -> None:
        for o in self.observers:
            o.on_precharge(*args)

    def on_refresh(self, *args: Any) -> None:
        for o in self.observers:
            o.on_refresh(*args)

    def on_rowclone(self, *args: Any) -> None:
        for o in self.observers:
            o.on_rowclone(*args)

    def on_pei(self, *args: Any) -> None:
        for o in self.observers:
            o.on_pei(*args)

    def on_cache_miss(self, *args: Any) -> None:
        for o in self.observers:
            o.on_cache_miss(*args)

    def on_cache_writeback(self, *args: Any) -> None:
        for o in self.observers:
            o.on_cache_writeback(*args)

    def on_clflush(self, *args: Any) -> None:
        for o in self.observers:
            o.on_clflush(*args)

    def on_thread_resume(self, *args: Any) -> None:
        for o in self.observers:
            o.on_thread_resume(*args)

    def on_thread_block(self, *args: Any) -> None:
        for o in self.observers:
            o.on_thread_block(*args)

    def on_clock_reset(self, *args: Any) -> None:
        for o in self.observers:
            o.on_clock_reset(*args)
