"""Metrics registry and phase profiler (``repro.obs.metrics``).

A :class:`MetricsRegistry` holds three instrument kinds — monotonic
:class:`Counter`\\ s, last/max-value :class:`Gauge`\\ s, and fixed-bucket
:class:`Histogram`\\ s — plus a wall-clock :class:`PhaseProfiler`.  It is
fed two ways:

- :class:`MetricsObserver` adapts the :class:`repro.obs.Observer` hook
  protocol, so every instrumented component (memory controller, banks,
  cache hierarchy, scheduler, PEI engine) streams into the registry with
  no new hook sites;
- higher layers (attack channels, the sweep runner) record directly:
  per-channel bit/error counters, probe-latency histograms, and
  :func:`phase` timers around warm-up / transmit / decode and the
  simulator hot paths.

Zero cost when off: like tracing, metrics ride the existing
``if observer is not None`` guards, and the module-level :func:`phase`
helper returns a shared no-op context manager when no registry is
installed — the only always-on cost is one global load per *phase*, never
per simulated operation.

The process-global :func:`install`/:func:`current`/:func:`uninstall`
trio mirrors ``repro.obs.install`` for tracers, and for the same reason:
systems and schedulers are built deep inside sweep workers, so the
registry must be discoverable without threading it through every
constructor.  ``run_sweep(metrics_dir=...)`` installs one registry per
point (serial or forked worker) and writes its JSON next to the point's
trace.
"""

from __future__ import annotations

import json
import time
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.core import Observer

#: Default histogram edges (upper bounds, cycles) sized for the latency
#: range the paper's channels live in: row-buffer hits ~60-120 cycles,
#: conflicts ~200-300, PEI round trips and refresh stalls up to a few
#: thousand.  Values above the last edge land in an overflow bucket.
DEFAULT_LATENCY_BUCKETS: Tuple[int, ...] = (
    32, 64, 96, 128, 160, 192, 224, 256, 320, 384, 512, 768, 1024,
    2048, 4096)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last written, with a max-tracking helper)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def update_max(self, value: float) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max accumulators.

    ``edges`` are inclusive upper bounds; one extra overflow bucket
    catches everything above the last edge.  Buckets are fixed at
    construction so histograms from different runs (or worker processes)
    merge by element-wise addition.
    """

    __slots__ = ("name", "edges", "counts", "count", "total",
                 "minimum", "maximum")

    def __init__(self, name: str,
                 edges: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError("histogram edges must be non-empty and sorted")
        self.name = name
        self.edges: Tuple[float, ...] = tuple(edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def observe_many(self, values: Iterable[float]) -> None:
        """Batch form of :meth:`observe` for hot paths that collect
        thousands of samples per call (e.g. one probe latency per
        transmitted bit): bucket in one tight loop, fold count/total/
        min/max with the C-level builtins."""
        if not isinstance(values, (list, tuple)):
            values = list(values)
        if not values:
            return
        counts = self.counts
        edges = self.edges
        for value in values:
            counts[bisect_left(edges, value)] += 1
        self.count += len(values)
        self.total += sum(values)
        low = min(values)
        high = max(values)
        if self.minimum is None or low < self.minimum:
            self.minimum = low
        if self.maximum is None or high > self.maximum:
            self.maximum = high

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
        }


class _Phase:
    """A live phase timer; used as a context manager."""

    __slots__ = ("_profiler", "name", "ops", "_started")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self.name = name
        self.ops = 0
        self._started = 0.0

    def add_ops(self, count: int) -> None:
        """Attribute ``count`` operations to this phase (for ops/s)."""
        self.ops += count

    def __enter__(self) -> "_Phase":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._profiler.record(self.name, time.perf_counter() - self._started,
                              self.ops)


class _NullPhase:
    """Shared no-op phase handed out when no registry is installed."""

    __slots__ = ()

    def add_ops(self, count: int) -> None:
        pass

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


NULL_PHASE = _NullPhase()


class PhaseProfiler:
    """Wall-clock timers around named phases (warm-up, transmit, decode,
    sweep-point execution), with optional operation counts for ops/s.

    Phases may nest or repeat; each ``record`` accumulates into the named
    slot, so overlapping phases each report their own wall time (the sum
    over phases can exceed real elapsed time — they are per-phase views,
    not a partition).
    """

    def __init__(self) -> None:
        # name -> [seconds, calls, ops]
        self._records: Dict[str, List[float]] = {}

    def phase(self, name: str) -> _Phase:
        return _Phase(self, name)

    def record(self, name: str, seconds: float, ops: int = 0) -> None:
        slot = self._records.setdefault(name, [0.0, 0, 0])
        slot[0] += seconds
        slot[1] += 1
        slot[2] += ops

    def __len__(self) -> int:
        return len(self._records)

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for name, (seconds, calls, ops) in sorted(self._records.items()):
            entry: Dict[str, float] = {
                "seconds": round(seconds, 6), "calls": calls, "ops": ops}
            if ops and seconds > 0:
                entry["ops_per_sec"] = round(ops / seconds, 1)
            out[name] = entry
        return out


class MetricsRegistry:
    """Named counters, gauges, fixed-bucket histograms, and a profiler."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.profiler = PhaseProfiler()

    # -- instrument accessors (create on first use) --------------------

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str,
                  edges: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name, edges)
        return histogram

    # -- export --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counters": {name: c.value
                         for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self.gauges.items())},
            "histograms": {name: h.to_dict()
                           for name, h in sorted(self.histograms.items())},
            "phases": self.profiler.to_dict(),
        }

    def write_json(self, path: str, extra: Optional[Dict[str, Any]] = None) -> str:
        """Serialize :meth:`to_dict` (plus ``extra`` top-level fields) to
        ``path``; returns the path."""
        payload = dict(extra or {})
        payload.update(self.to_dict())
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        return path

    @staticmethod
    def merge_dicts(dicts: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
        """Element-wise sum of several :meth:`to_dict` payloads (counters,
        histogram buckets, phase times); gauges take the max.  Used to
        aggregate per-point metrics files into sweep totals."""
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        phases: Dict[str, Dict[str, float]] = {}
        for payload in dicts:
            for name, value in payload.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            for name, value in payload.get("gauges", {}).items():
                if name not in gauges or value > gauges[name]:
                    gauges[name] = value
            for name, hist in payload.get("histograms", {}).items():
                merged = histograms.get(name)
                if merged is None or merged["edges"] != hist["edges"]:
                    if merged is not None:
                        raise ValueError(
                            f"histogram {name!r} has mismatched edges")
                    histograms[name] = {key: (list(val)
                                              if isinstance(val, list) else val)
                                        for key, val in hist.items()}
                    continue
                merged["counts"] = [a + b for a, b in zip(merged["counts"],
                                                          hist["counts"])]
                merged["count"] += hist["count"]
                merged["sum"] += hist["sum"]
                merged["mean"] = (merged["sum"] / merged["count"]
                                  if merged["count"] else 0.0)
                for key, pick in (("min", min), ("max", max)):
                    values = [v for v in (merged[key], hist[key])
                              if v is not None]
                    merged[key] = pick(values) if values else None
            for name, entry in payload.get("phases", {}).items():
                slot = phases.setdefault(
                    name, {"seconds": 0.0, "calls": 0, "ops": 0})
                slot["seconds"] += entry.get("seconds", 0.0)
                slot["calls"] += entry.get("calls", 0)
                slot["ops"] += entry.get("ops", 0)
        for entry in phases.values():
            if entry["ops"] and entry["seconds"] > 0:
                entry["ops_per_sec"] = round(entry["ops"] / entry["seconds"], 1)
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms, "phases": phases}


class MetricsObserver(Observer):
    """Adapts the Observer hook protocol onto a :class:`MetricsRegistry`.

    One instance per instrumented component graph (a ``System`` or a
    ``Scheduler``); several instances may share one registry — the hook
    families they receive are disjoint, so nothing double-counts.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        # Hot instruments resolved once, not per event.
        self._ops = {op: registry.counter(f"dram.{op}")
                     for op in ("RD", "WR", "ACT")}
        self._queue_delay = registry.histogram("dram.queue_delay")
        self._service = registry.histogram("dram.service_cycles")
        self._horizon = registry.gauge("sim.horizon_cycles")

    def on_dram_access(self, op, bank_index, row, kind, requestor, issued,
                       start, service_start, finish, predicted, bank) -> None:
        registry = self.registry
        counter = self._ops.get(op)
        if counter is None:
            counter = registry.counter(f"dram.{op}")
        counter.inc()
        kind_name = getattr(kind, "value", kind)
        if kind_name is not None:
            registry.counter(f"dram.outcome.{kind_name}").inc()
        registry.counter(f"dram.ops.{requestor}").inc()
        self._queue_delay.observe(service_start - issued)
        self._service.observe(finish - service_start)
        self._horizon.update_max(finish)

    def on_precharge(self, bank_index, issued, service_start, finish,
                     opened_at, had_row, bank) -> None:
        self.registry.counter("dram.PRE").inc()
        self._horizon.update_max(finish)

    def on_refresh(self, bank_index, blocked_at, window_end, bank) -> None:
        self.registry.counter("dram.REF").inc()
        self.registry.histogram("dram.refresh_stall").observe(
            window_end - blocked_at)

    def on_rowclone(self, bank_index, src_row, dst_row, kind, issued,
                    service_start, finish, requestor, predicted, bank) -> None:
        self.registry.counter("dram.RowClone").inc()
        self.registry.counter(f"dram.ops.{requestor}").inc()
        self._horizon.update_max(finish)

    def on_pei(self, site, addr, issued, finish, requestor, kind,
               bank) -> None:
        self.registry.counter(f"pei.{site}").inc()
        self.registry.histogram("pei.latency").observe(finish - issued)

    def on_cache_miss(self, core, addr, issued, finish, requestor) -> None:
        self.registry.counter("cache.miss").inc()
        self.registry.histogram("cache.miss_latency").observe(finish - issued)

    def on_cache_writeback(self, addr, time_, requestor) -> None:
        self.registry.counter("cache.writeback").inc()

    def on_clflush(self, core, addr, issued, finish, requestor,
                   dirty) -> None:
        self.registry.counter("cache.clflush").inc()

    def on_thread_resume(self, name, now, sched_id) -> None:
        self.registry.counter("sched.resume").inc()

    def on_thread_block(self, name, now, reason, sched_id) -> None:
        self.registry.counter("sched.block").inc()

    def on_clock_reset(self, reason) -> None:
        self.registry.counter(f"sim.clock_reset.{reason}").inc()


# ---------------------------------------------------------------------------
# Process-global registry (mirrors repro.obs.install for observers)
# ---------------------------------------------------------------------------

_active: Optional[MetricsRegistry] = None


def install(registry: MetricsRegistry) -> MetricsRegistry:
    """Make ``registry`` the process-global metrics registry.  Systems and
    schedulers built afterwards feed it; returns it for chaining."""
    global _active
    _active = registry
    return registry


def uninstall() -> None:
    """Remove the process-global metrics registry."""
    global _active
    _active = None


def current() -> Optional[MetricsRegistry]:
    """The installed process-global registry, or ``None``."""
    return _active


def snapshot() -> Dict[str, Any]:
    """JSON-able dump of the installed registry, ``{}`` when none.

    The read-only counterpart of :func:`current` for wire consumers — the
    ``repro serve`` metrics endpoint streams this to clients so live
    telemetry (DRAM op counters, warm-store hits, phase timings) is
    observable without touching the registry object itself."""
    registry = _active
    return registry.to_dict() if registry is not None else {}


def phase(name: str):
    """A phase-timer context manager on the global registry's profiler;
    a shared no-op when metrics are off (safe on hot-ish paths — one
    global load per phase, nothing per simulated operation)::

        with metrics.phase("transmit") as ph:
            result = channel.transmit(message)
            ph.add_ops(len(message))
    """
    registry = _active
    if registry is None:
        return NULL_PHASE
    return registry.profiler.phase(name)
