"""Timing-invariant sanitizer for the simulated memory system.

The sanitizer checks DRAM protocol invariants on every observed event and
either raises :class:`SanitizerError` immediately (``strict=True``, the
default) or records the violation for later inspection.  Enabled with
``System(sanitize=True)`` or the ``REPRO_SANITIZE=1`` environment
variable; tier-1 runs under the sanitizer in CI.

Checked invariants
------------------

- **Event ordering** — ``issued <= start <= service_start <= finish`` for
  every DRAM access (queueing and refresh can only delay a request).
- **busy_until monotonicity** — a bank's ``busy_until`` never decreases
  across events, except across an explicit clock reset (warm-up rebase or
  snapshot restore, signaled via :meth:`on_clock_reset`).
- **classify/outcome agreement** — the outcome ``Bank.classify`` predicts
  immediately before an access equals what ``access_raw`` then records
  (this is the invariant that surfaced the open-row-timeout divergence).
- **Refresh windows block** — no access is serviced strictly inside a
  refresh window of its bank, and a bank that just refreshed has a closed
  row buffer and is busy through the window's end (this is the invariant
  that surfaced the queued-past-the-window ordering bug).
- **tRAS on explicit precharge** — an explicit PRE command never begins
  before the open row has been open for ``tRAS``.  (Implicit conflict
  precharges model ``tRP`` only — a deliberate simplification the figure
  baselines depend on — so the check is scoped to PRE commands.)
- **Per-thread clock monotonicity** — a scheduler never resumes a thread
  at an earlier virtual time than its previous resume.

State-equivalence invariants (snapshot/restore round-trips, batch-vs-loop
equality) are whole-run properties rather than per-event checks; they live
in ``tests/test_obs_sanitizer.py``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.core import Observer


class SanitizerError(RuntimeError):
    """A timing invariant was violated (strict mode)."""


class Sanitizer(Observer):
    """Checks protocol invariants on every observed event.

    Args:
        strict: raise :class:`SanitizerError` at the first violation
            (default); ``False`` collects violations in
            :attr:`violations` instead.
    """

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.violations: List[str] = []
        self.checked_events = 0
        self._device: Any = None
        self._ras_cycles: int = 0
        self._busy: Dict[int, int] = {}  # id(bank) -> last busy_until
        # (scheduler id, thread name) -> last resume time
        self._resume_floor: Dict[tuple, int] = {}

    # ------------------------------------------------------------------

    def bind_device(self, device: Any) -> None:
        self._device = device
        self._ras_cycles = device.timings.ras_cycles
        # A new controller means new Bank objects; drop the old floors so
        # a CPython id() reused by a fresh bank can't inherit a stale one.
        self._busy.clear()

    def _flag(self, message: str) -> None:
        self.violations.append(message)
        if self.strict:
            raise SanitizerError(message)

    @property
    def ok(self) -> bool:
        return not self.violations

    def _check_busy_monotonic(self, bank: Any, where: str) -> None:
        key = id(bank)
        busy = bank.busy_until
        prev = self._busy.get(key)
        if prev is not None and busy < prev:
            self._flag(f"bank {bank.index}: busy_until went backwards "
                       f"({prev} -> {busy}) at {where}")
        self._busy[key] = busy

    def _check_refresh_clear(self, bank_index: int, service_start: int,
                             where: str) -> None:
        device = self._device
        if device is not None and device.refresh_enabled \
                and device.in_refresh_window(bank_index, service_start):
            self._flag(f"bank {bank_index}: {where} serviced at "
                       f"{service_start}, inside a refresh window")

    # ------------------------------------------------------------------
    # DRAM hooks
    # ------------------------------------------------------------------

    def on_dram_access(self, op, bank_index, row, kind, requestor, issued,
                       start, service_start, finish, predicted,
                       bank) -> None:
        self.checked_events += 1
        if not issued <= start <= service_start <= finish:
            self._flag(f"bank {bank_index}: {op} time ordering broken "
                       f"(issued={issued}, start={start}, "
                       f"service_start={service_start}, finish={finish})")
        if predicted is not None and predicted is not kind:
            self._flag(f"bank {bank_index}: classify() predicted "
                       f"{predicted.value} but {op} recorded {kind.value} "
                       f"(row {row}, service_start {service_start})")
        self._check_refresh_clear(bank_index, service_start, op)
        self._check_busy_monotonic(bank, op)

    def on_precharge(self, bank_index, issued, service_start, finish,
                     opened_at, had_row, bank) -> None:
        self.checked_events += 1
        if had_row:
            earliest = opened_at + self._ras_cycles
            if service_start < earliest:
                self._flag(f"bank {bank_index}: PRE at {service_start} "
                           f"violates tRAS (row opened at {opened_at}, "
                           f"earliest legal PRE {earliest})")
            if finish < service_start:
                self._flag(f"bank {bank_index}: PRE finish {finish} before "
                           f"service start {service_start}")
        if bank.open_row is not None:
            self._flag(f"bank {bank_index}: row {bank.open_row} still open "
                       f"after PRE")
        self._check_busy_monotonic(bank, "PRE")

    def on_refresh(self, bank_index, blocked_at, window_end, bank) -> None:
        self.checked_events += 1
        if bank.open_row is not None:
            self._flag(f"bank {bank_index}: refresh left row "
                       f"{bank.open_row} open")
        if bank.busy_until < window_end:
            self._flag(f"bank {bank_index}: refresh window claims to block "
                       f"until {window_end} but bank is busy only until "
                       f"{bank.busy_until}")
        self._check_busy_monotonic(bank, "REF")

    def on_rowclone(self, bank_index, src_row, dst_row, kind, issued,
                    service_start, finish, requestor, predicted,
                    bank) -> None:
        self.checked_events += 1
        if not issued <= service_start <= finish:
            self._flag(f"bank {bank_index}: RowClone time ordering broken "
                       f"(issued={issued}, service_start={service_start}, "
                       f"finish={finish})")
        if predicted is not None and predicted is not kind:
            self._flag(f"bank {bank_index}: classify() predicted "
                       f"{predicted.value} but RowClone recorded "
                       f"{kind.value}")
        self._check_refresh_clear(bank_index, service_start, "RowClone")
        self._check_busy_monotonic(bank, "RowClone")

    # ------------------------------------------------------------------
    # Cache / PiM hooks (basic sanity only)
    # ------------------------------------------------------------------

    def on_pei(self, site, addr, issued, finish, requestor, kind,
               bank) -> None:
        self.checked_events += 1
        if finish < issued:
            self._flag(f"PEI at {addr:#x}: finish {finish} before issue "
                       f"{issued}")

    def on_cache_miss(self, core, addr, issued, finish, requestor) -> None:
        self.checked_events += 1
        if finish < issued:
            self._flag(f"cache miss at {addr:#x}: finish {finish} before "
                       f"issue {issued}")

    # ------------------------------------------------------------------
    # Scheduler hooks
    # ------------------------------------------------------------------

    def on_thread_resume(self, name, now, sched_id) -> None:
        key = (sched_id, name)
        floor = self._resume_floor.get(key)
        if floor is not None and now < floor:
            self._flag(f"thread {name!r}: resumed at {now}, before its "
                       f"previous resume at {floor}")
        self._resume_floor[key] = now

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def on_clock_reset(self, reason: str) -> None:
        self._busy.clear()
        self._resume_floor.clear()

    def report(self) -> str:
        if not self.violations:
            return (f"sanitizer: {self.checked_events} events checked, "
                    f"0 violations")
        lines = [f"sanitizer: {len(self.violations)} violation(s) in "
                 f"{self.checked_events} events:"]
        lines += [f"  - {v}" for v in self.violations]
        return "\n".join(lines)
