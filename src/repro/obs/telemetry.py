"""Fleet telemetry: causal event log, worker health, structured logging.

Three cooperating pieces, all zero-cost when their env switch is unset:

**Causal event log.**  When ``REPRO_TELEMETRY_DIR`` is set, every sweep
and serve lifecycle transition appends one NDJSON record to a per-process
file (``events-<pid>.ndjson``) in that directory.  Records carry two
causal IDs — a ``run_id`` minted per :func:`repro.exp.runner.run_sweep`
call / per submitted serve job, and a ``span_id`` minted per point — that
the runner and scheduler propagate into forked pool workers through the
existing ``REPRO_*`` env mirroring (:func:`repro.exp.runner.
pool_task_env`).  A point's records therefore stitch into one chain
across processes::

    point_queued -> point_dispatched -> point_start -> point_end
                 -> point_committed            (or point_failed /
                    [point_retried -> ...]      point_cancelled)

``point_start``/``point_end`` are written by the executing process
(worker or parent); everything else by the coordinating parent.  Records
include ``point_slug`` where known, joining them with the per-point
Chrome-trace and metrics files the same sweep writes.  :func:`read_events`
merges a telemetry dir back into one time-ordered list,
:func:`causal_chains` groups it by span, and :func:`verify_chains` checks
chain integrity (no orphan spans, no duplicate terminal events, repeated
executions only behind an explicit ``point_retried`` marker).

**Worker health.**  :class:`FleetHealth` tracks per-worker throughput,
lease age, and in-flight points against a running median of completed
point durations; a point exceeding ``straggler_factor`` × median is
flagged — the metrics endpoint surfaces the snapshot and the event log
gets a ``point_straggler`` record.  This is the observability
prerequisite for straggler re-dispatch (ROADMAP item 5).

**Structured logging.**  :func:`log` replaces ad-hoc ``print``/stderr
diagnostics: one JSON object per line on stderr, gated by
``REPRO_LOG=<level>`` (off by default; ``debug`` < ``info`` < ``warning``
< ``error``), stamped with pid and the ambient run/span IDs.

Like the tracer and metrics hooks (PR 3/4), nothing here imports the
simulation core, and every emit site guards on one env lookup — the hot
simulator paths are never touched at all: telemetry records lifecycle
events (per point), not simulation events (per cycle).
"""

from __future__ import annotations

import glob
import json
import os
import statistics
import sys
import time
import uuid
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, TextIO, Tuple

#: Directory that switches the event log on; unset (the default) makes
#: every :func:`emit` a single dict lookup returning immediately.
ENV_TELEMETRY_DIR = "REPRO_TELEMETRY_DIR"
#: Ambient causal IDs, mirrored into pool workers per task.
ENV_RUN_ID = "REPRO_RUN_ID"
ENV_SPAN_ID = "REPRO_SPAN_ID"
#: Structured-log threshold (``debug``/``info``/``warning``/``error``;
#: unset or ``off`` disables logging entirely).
ENV_LOG = "REPRO_LOG"

#: Events that close a span's causal chain.
TERMINAL_EVENTS = frozenset(
    {"point_committed", "point_failed", "point_cancelled"})


def new_run_id() -> str:
    """A fresh run ID (one sweep / one serve job)."""
    return "run-" + uuid.uuid4().hex[:12]


def new_span_id() -> str:
    """A fresh span ID (one point's execution chain)."""
    return "span-" + uuid.uuid4().hex[:12]


def enabled() -> bool:
    """True when the event log is switched on for this process."""
    return bool(os.environ.get(ENV_TELEMETRY_DIR))


def current_ids() -> Tuple[Optional[str], Optional[str]]:
    """The ambient ``(run_id, span_id)`` from the environment — what a
    forked worker inherits through the per-task env overlay."""
    return os.environ.get(ENV_RUN_ID), os.environ.get(ENV_SPAN_ID)


# ---------------------------------------------------------------------------
# Event sink
# ---------------------------------------------------------------------------

# One append-only NDJSON file per (directory, pid): processes never share
# a file handle, so records from concurrent workers cannot interleave
# mid-line, and a forked child transparently opens its own file on its
# first emit (the cached pid no longer matches).
_sink: Optional[Tuple[str, int, TextIO]] = None


def _writer() -> Optional[TextIO]:
    global _sink
    directory = os.environ.get(ENV_TELEMETRY_DIR)
    if not directory:
        return None
    pid = os.getpid()
    if _sink is not None and _sink[0] == directory and _sink[1] == pid:
        return _sink[2]
    if _sink is not None and _sink[1] == pid:
        try:
            _sink[2].close()
        except OSError:
            pass
    try:
        os.makedirs(directory, exist_ok=True)
        handle = open(os.path.join(directory, f"events-{pid}.ndjson"),
                      "a", encoding="utf-8")
    except OSError:
        return None
    _sink = (directory, pid, handle)
    return handle


def reset_sink() -> None:
    """Close and forget the cached sink (tests switching directories)."""
    global _sink
    if _sink is not None:
        try:
            _sink[2].close()
        except OSError:
            pass
    _sink = None


def emit(event: str, *, run_id: Optional[str] = None,
         span_id: Optional[str] = None, **fields: Any) -> None:
    """Append one lifecycle record; a no-op unless ``REPRO_TELEMETRY_DIR``
    is set.  ``run_id``/``span_id`` default to the ambient env values, so
    a forked worker needs no explicit plumbing.  Never raises: telemetry
    must not be able to take a sweep down."""
    handle = _writer()
    if handle is None:
        return
    record: Dict[str, Any] = {"ts": round(time.time(), 6), "event": event,
                              "pid": os.getpid()}
    run_id = run_id or os.environ.get(ENV_RUN_ID)
    span_id = span_id or os.environ.get(ENV_SPAN_ID)
    if run_id:
        record["run_id"] = run_id
    if span_id:
        record["span_id"] = span_id
    record.update(fields)
    try:
        handle.write(json.dumps(record, separators=(",", ":"), default=str)
                     + "\n")
        handle.flush()  # keep the buffer empty across forks and crashes
    except (OSError, ValueError):
        pass


# ---------------------------------------------------------------------------
# Reading the log back
# ---------------------------------------------------------------------------

def read_events(directory: str) -> List[Dict[str, Any]]:
    """Every record in a telemetry directory, merged across per-process
    files and sorted by timestamp.  Torn trailing lines (a worker killed
    mid-write) are skipped, not fatal."""
    events: List[Dict[str, Any]] = []
    for path in sorted(glob.glob(os.path.join(directory, "events-*.ndjson"))):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(record, dict):
                        events.append(record)
        except OSError:
            continue
    events.sort(key=lambda record: record.get("ts", 0.0))
    return events


def causal_chains(events: Iterable[Dict[str, Any]],
                  ) -> Dict[str, List[Dict[str, Any]]]:
    """Group records by ``span_id`` (records without one — run-level
    events, cache hits — are omitted), each chain in time order."""
    chains: Dict[str, List[Dict[str, Any]]] = {}
    for record in events:
        span = record.get("span_id")
        if span:
            chains.setdefault(span, []).append(record)
    return chains


def verify_chains(events: Iterable[Dict[str, Any]]) -> List[str]:
    """Integrity problems in a telemetry log's causal chains; empty means
    every span tells one coherent story.  Checked per span:

    - exactly one ``point_queued`` (an orphan span was never queued; two
      means a span_id collision);
    - at least one terminal event (``point_committed`` / ``point_failed``
      / ``point_cancelled``) — none is an incomplete chain; several
      without a retry marker, a double commit;
    - repeated ``point_start`` records only behind an explicit
      ``point_retried`` marker (worker death, pool fallback);
    - a single ``point_slug`` (two slugs under one span is a mis-join).
    """
    problems: List[str] = []
    for span, chain in causal_chains(events).items():
        names = [record.get("event") for record in chain]
        queued = names.count("point_queued")
        starts = names.count("point_start")
        retried = names.count("point_retried")
        terminal = sum(names.count(name) for name in TERMINAL_EVENTS)
        slugs = {record["point_slug"] for record in chain
                 if record.get("point_slug")}
        if queued == 0:
            problems.append(f"{span}: orphan span (no point_queued)")
        elif queued > 1:
            problems.append(f"{span}: queued {queued} times "
                            f"(span_id collision?)")
        if terminal == 0:
            problems.append(f"{span}: incomplete chain (no terminal event)")
        elif terminal > 1 and retried == 0:
            problems.append(f"{span}: {terminal} terminal events")
        if starts > 1 and retried == 0:
            problems.append(f"{span}: {starts} executions without a "
                            f"point_retried marker")
        if len(slugs) > 1:
            problems.append(f"{span}: multiple point slugs {sorted(slugs)}")
    return problems


# ---------------------------------------------------------------------------
# Worker health / straggler tracking
# ---------------------------------------------------------------------------

class FleetHealth:
    """Running health model of a worker fleet.

    Fed two moments per point — :meth:`record_dispatch` when a point is
    handed to a worker, :meth:`record_done` when its reply lands — it
    maintains per-worker throughput (points, busy seconds, points/s,
    last-heartbeat age), the set of in-flight points with lease ages, and
    a running median of completed durations.  An in-flight or completing
    point whose age exceeds ``max(straggler_factor × median,
    min_seconds)`` (with at least ``min_samples`` completions observed)
    is flagged a straggler — once per point.
    """

    def __init__(self, straggler_factor: float = 4.0, min_samples: int = 4,
                 min_seconds: float = 1.0, window: int = 128) -> None:
        self.straggler_factor = float(straggler_factor)
        self.min_samples = max(1, int(min_samples))
        self.min_seconds = float(min_seconds)
        self._durations: "deque[float]" = deque(maxlen=max(8, int(window)))
        self._workers: Dict[int, Dict[str, Any]] = {}
        self._inflight: Dict[str, Dict[str, Any]] = {}
        self.stragglers_total = 0

    def _worker(self, pid: int, now: float) -> Dict[str, Any]:
        entry = self._workers.get(pid)
        if entry is None:
            entry = self._workers[pid] = {
                "points": 0, "failures": 0, "busy_seconds": 0.0,
                "redispatched": 0, "first_seen": now, "last_heartbeat": now}
        return entry

    def record_dispatch(self, pid: int, span_id: str,
                        point_slug: Optional[str] = None,
                        run_id: Optional[str] = None,
                        now: Optional[float] = None,
                        redispatch_of: Optional[str] = None) -> None:
        """A point left for worker ``pid`` (``span_id`` keys the flight).

        A speculative re-dispatch of a flagged straggler passes the
        *primary* flight's key as ``redispatch_of`` and its own distinct
        key (conventionally ``<span>#rN``) as ``span_id`` — both copies
        stay visible in flight, the twin marked ``twin`` and the primary
        ``has_twin``, and the receiving worker's ``redispatched`` counter
        increments."""
        now = time.monotonic() if now is None else now
        worker = self._worker(pid, now)
        worker["last_heartbeat"] = now
        flight = {"pid": pid, "point_slug": point_slug, "run_id": run_id,
                  "started": now, "straggler": False,
                  "twin": redispatch_of is not None, "has_twin": False}
        if redispatch_of is not None:
            worker["redispatched"] += 1
            primary = self._inflight.get(redispatch_of)
            if primary is not None:
                primary["has_twin"] = True
                flight.setdefault("point_slug", primary["point_slug"])
                if point_slug is None:
                    flight["point_slug"] = primary["point_slug"]
                if run_id is None:
                    flight["run_id"] = primary["run_id"]
        self._inflight[span_id] = flight

    def record_done(self, pid: int, span_id: str, ok: bool = True,
                    now: Optional[float] = None) -> Tuple[float, bool]:
        """A point's reply landed; returns ``(elapsed_seconds,
        newly_straggler)`` — the flag is True only the first time this
        point crosses the threshold, so callers emit one event/count."""
        now = time.monotonic() if now is None else now
        worker = self._worker(pid, now)
        worker["last_heartbeat"] = now
        flight = self._inflight.pop(span_id, None)
        elapsed = now - flight["started"] if flight is not None else 0.0
        already_flagged = bool(flight and flight["straggler"])
        threshold = self.threshold()
        worker["points"] += 1
        if not ok:
            worker["failures"] += 1
        worker["busy_seconds"] += elapsed
        if flight is not None:
            self._durations.append(elapsed)
        newly = (not already_flagged and threshold is not None
                 and elapsed > threshold)
        if newly:
            self.stragglers_total += 1
        return elapsed, newly

    def record_cancelled(self, pid: int, span_id: str,
                         now: Optional[float] = None) -> None:
        """A speculative copy lost the first-commit-wins race and was
        cancelled: release the flight without polluting the duration
        median, point counts, or failure tallies."""
        now = time.monotonic() if now is None else now
        self._worker(pid, now)["last_heartbeat"] = now
        self._inflight.pop(span_id, None)

    def is_straggler(self, span_id: str) -> bool:
        """True when the flight keyed ``span_id`` is currently flagged."""
        flight = self._inflight.get(span_id)
        return bool(flight and flight["straggler"])

    def median(self) -> Optional[float]:
        """Running median of completed point durations (``None`` until
        ``min_samples`` completions)."""
        if len(self._durations) < self.min_samples:
            return None
        return statistics.median(self._durations)

    def threshold(self) -> Optional[float]:
        """Current straggler threshold in seconds, or ``None`` while the
        median is still warming up."""
        median = self.median()
        if median is None:
            return None
        return max(self.straggler_factor * median, self.min_seconds)

    def flag_stragglers(self, now: Optional[float] = None,
                        ) -> List[Dict[str, Any]]:
        """Scan in-flight points and flag (once) those over the
        threshold; returns the newly flagged entries with ``span_id``,
        ``age_s`` and ``threshold_s`` filled in."""
        threshold = self.threshold()
        if threshold is None:
            return []
        now = time.monotonic() if now is None else now
        newly: List[Dict[str, Any]] = []
        for span_id, flight in self._inflight.items():
            age = now - flight["started"]
            if not flight["straggler"] and age > threshold:
                flight["straggler"] = True
                self.stragglers_total += 1
                newly.append({"span_id": span_id, "pid": flight["pid"],
                              "point_slug": flight["point_slug"],
                              "run_id": flight["run_id"],
                              "age_s": round(age, 6),
                              "threshold_s": round(threshold, 6)})
        return newly

    def snapshot(self, now: Optional[float] = None) -> Dict[str, Any]:
        """JSON-able health view for the metrics endpoint / ``repro top``:
        fleet medians, per-worker gauges, and in-flight points sorted
        slowest-first.  Flags overdue in-flight points as a side effect
        (callers wanting the *newly* flagged list for event emission use
        :meth:`flag_stragglers` first)."""
        now = time.monotonic() if now is None else now
        self.flag_stragglers(now)
        median = self.median()
        threshold = self.threshold()
        workers: Dict[str, Dict[str, Any]] = {}
        inflight_by_pid: Dict[int, str] = {
            flight["pid"]: span for span, flight in self._inflight.items()}
        for pid, entry in self._workers.items():
            busy = entry["busy_seconds"]
            span = inflight_by_pid.get(pid)
            flight = self._inflight.get(span) if span else None
            workers[str(pid)] = {
                "points": entry["points"],
                "failures": entry["failures"],
                "redispatched": entry.get("redispatched", 0),
                "busy_seconds": round(busy, 6),
                "points_per_sec": (round(entry["points"] / busy, 3)
                                   if busy > 0 else None),
                "heartbeat_age_s": round(now - entry["last_heartbeat"], 6),
                "in_flight": flight["point_slug"] if flight else None,
                "lease_age_s": (round(now - flight["started"], 6)
                                if flight else None),
                "straggler": bool(flight and flight["straggler"]),
            }
        in_flight = sorted(
            ({"span_id": span, "worker_pid": flight["pid"],
              "point_slug": flight["point_slug"],
              "age_s": round(now - flight["started"], 6),
              "straggler": flight["straggler"],
              "twin": flight.get("twin", False),
              "has_twin": flight.get("has_twin", False)}
             for span, flight in self._inflight.items()),
            key=lambda entry: -entry["age_s"])
        return {
            "completed_points": sum(w["points"]
                                    for w in self._workers.values()),
            "median_point_seconds": (round(median, 6)
                                     if median is not None else None),
            "straggler_threshold_seconds": (round(threshold, 6)
                                            if threshold is not None
                                            else None),
            "stragglers_total": self.stragglers_total,
            "workers": workers,
            "in_flight": in_flight,
        }


# ---------------------------------------------------------------------------
# Structured logging
# ---------------------------------------------------------------------------

_LOG_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def log_threshold() -> Optional[int]:
    """Numeric threshold from ``REPRO_LOG``, or ``None`` when logging is
    off (the default).  ``REPRO_LOG=1`` means ``info``."""
    raw = os.environ.get(ENV_LOG, "").strip().lower()
    if not raw or raw in ("0", "off", "false", "no"):
        return None
    if raw in ("1", "on", "true", "yes"):
        return _LOG_LEVELS["info"]
    return _LOG_LEVELS.get(raw, _LOG_LEVELS["info"])


def log(level: str, subsystem: str, message: str, **fields: Any) -> None:
    """One structured diagnostic line on stderr, or nothing.

    ``level`` is ``debug``/``info``/``warning``/``error``; records below
    the ``REPRO_LOG`` threshold (or all of them, when unset) cost one env
    lookup.  The record carries pid and the ambient causal IDs so fleet
    diagnostics join the event log."""
    threshold = log_threshold()
    if threshold is None or _LOG_LEVELS.get(level, 20) < threshold:
        return
    record: Dict[str, Any] = {"ts": round(time.time(), 6), "level": level,
                              "subsystem": subsystem, "msg": message,
                              "pid": os.getpid()}
    run_id, span_id = current_ids()
    if run_id:
        record["run_id"] = run_id
    if span_id:
        record["span_id"] = span_id
    record.update(fields)
    try:
        print(json.dumps(record, separators=(",", ":"), default=str),
              file=sys.stderr, flush=True)
    except (OSError, ValueError):
        pass


# ---------------------------------------------------------------------------
# Fleet-test helper
# ---------------------------------------------------------------------------

def sleep_point(seconds: float = 0.0, tag: Any = None) -> Dict[str, Any]:
    """Importable sweep-point function that just sleeps — the injected
    straggler/latency workload for telemetry smoke tests (submit with
    ``fn="repro.obs.telemetry:sleep_point"``)."""
    time.sleep(max(0.0, float(seconds)))
    return {"slept": float(seconds), "tag": tag}
