"""``repro top``: a live text view of the execution fleet.

Two data sources, one frame format:

- **Daemon mode** — poll a running ``repro serve`` daemon's metrics
  endpoint (:meth:`repro.serve.ServeClient.metrics`) and render its
  scheduler stats + :class:`repro.obs.telemetry.FleetHealth` snapshot:
  per-client queue depth, dedup ratio, worker utilization and
  throughput, and the slowest in-flight points with straggler flags.
- **Offline mode** — tail a telemetry directory written by
  ``run_sweep(telemetry_dir=...)`` (or a daemon started with one) and
  reconstruct the same view from the causal event log alone, so a sweep
  with no daemon still has a fleet dashboard.

Pure functions over JSON-able dicts: the CLI loop in :mod:`repro.cli`
owns the polling/clearing; everything here renders one frame as a
string, which keeps it trivially testable.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs import telemetry

#: Event names that close a span (mirrors telemetry.TERMINAL_EVENTS).
_TERMINAL = telemetry.TERMINAL_EVENTS


def _fmt(value: Optional[float], digits: int = 2,
         suffix: str = "") -> str:
    if value is None:
        return "-"
    return f"{value:.{digits}f}{suffix}"


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]],
           title: Optional[str] = None) -> str:
    from repro.analysis import format_table

    if not rows:
        return f"{title}: (none)" if title else "(none)"
    return format_table(headers, rows, title=title)


def dedup_ratio(counters: Dict[str, Any]) -> Optional[float]:
    """Share of submitted points answered by in-flight dedup:
    ``deduped / (queued + deduped + cache_hits)``."""
    deduped = counters.get("serve.points.deduped", 0)
    submitted = (counters.get("serve.points.queued", 0) + deduped
                 + counters.get("serve.points.cache_hits", 0))
    if not submitted:
        return None
    return deduped / submitted


# ---------------------------------------------------------------------------
# Daemon mode: frame from a metrics-endpoint payload
# ---------------------------------------------------------------------------

def render_metrics_frame(payload: Dict[str, Any],
                         source: str = "daemon") -> str:
    """One ``repro top`` frame from a daemon's metrics payload (the
    ``{"op": "metrics"}`` response: registry + scheduler stats)."""
    stats = payload.get("stats") or {}
    counters = stats.get("counters") or payload.get("counters") or {}
    health = stats.get("workers") or {}
    lines: List[str] = [f"repro top — {source} — "
                        + time.strftime("%H:%M:%S")]
    ratio = dedup_ratio(counters)
    busy = sum(1 for worker in (health.get("workers") or {}).values()
               if worker.get("in_flight"))
    pool = stats.get("pool_workers") or 0
    util = busy / pool if pool else None
    lines.append(
        f"queued {stats.get('queued_points', 0)}  "
        f"running {stats.get('running_points', 0)}/"
        f"{stats.get('max_jobs', '?')}  "
        f"jobs {stats.get('jobs_done', 0)}/{stats.get('jobs_total', 0)} "
        f"done  pool {pool} workers"
        + (f" ({util:.0%} busy)" if util is not None else "")
        + (f"  dedup {ratio:.1%}" if ratio is not None else "")
        + f"  stragglers {health.get('stragglers_total', 0)}")
    median = health.get("median_point_seconds")
    threshold = health.get("straggler_threshold_seconds")
    if median is not None:
        lines.append(f"median point {_fmt(median)}s  "
                     f"straggler threshold {_fmt(threshold)}s  "
                     f"completed {health.get('completed_points', 0)}")
    lines.append("")
    lines.append(_render_clients(stats))
    lines.append("")
    lines.append(_render_workers(health))
    lines.append("")
    lines.append(_render_in_flight(health))
    return "\n".join(lines)


def _render_clients(stats: Dict[str, Any]) -> str:
    running = stats.get("clients_running") or {}
    queued = stats.get("clients_queued") or {}
    clients = sorted(set(running) | set(queued))
    rows = [(client, running.get(client, 0), queued.get(client, 0))
            for client in clients]
    return _table(["client", "running", "queued"], rows,
                  title="per-client queue")


def _render_workers(health: Dict[str, Any]) -> str:
    rows = []
    for pid, worker in sorted((health.get("workers") or {}).items()):
        rows.append((
            pid, worker.get("points", 0),
            _fmt(worker.get("points_per_sec")),
            _fmt(worker.get("busy_seconds"), 2),
            worker.get("redispatched", 0),
            _fmt(worker.get("lease_age_s")),
            worker.get("in_flight") or "idle",
            "STRAGGLER" if worker.get("straggler") else ""))
    return _table(
        ["worker pid", "points", "pts/s", "busy s", "redispatched",
         "lease age s", "in flight", ""],
        rows, title="workers")


def _flight_flags(entry: Dict[str, Any]) -> str:
    """Flag column for one in-flight row: ``STRAGGLER`` when over the
    threshold, ``R`` when a speculative re-dispatch twin exists (set on
    both copies of the race)."""
    flags = []
    if entry.get("straggler"):
        flags.append("STRAGGLER")
    if entry.get("has_twin") or entry.get("twin"):
        flags.append("R")
    return " ".join(flags)


def _render_in_flight(health: Dict[str, Any], limit: int = 8) -> str:
    rows = [(entry.get("point_slug") or entry.get("span_id"),
             entry.get("worker_pid"), _fmt(entry.get("age_s")),
             _flight_flags(entry))
            for entry in (health.get("in_flight") or [])[:limit]]
    return _table(["in-flight point", "worker", "age s", ""], rows,
                  title="slowest in flight")


# ---------------------------------------------------------------------------
# Offline mode: frame from a telemetry event log
# ---------------------------------------------------------------------------

def fleet_state(events: Iterable[Dict[str, Any]],
                now: Optional[float] = None) -> Dict[str, Any]:
    """Reconstruct a daemon-shaped fleet view from raw telemetry events.

    ``now`` anchors in-flight ages (default: the newest event's
    timestamp, so a finished log renders with zero phantom ages)."""
    events = list(events)
    latest = max((e.get("ts", 0.0) for e in events), default=0.0)
    now = latest if now is None else now
    spans: Dict[str, Dict[str, Any]] = {}
    counters = {"serve.points.queued": 0, "serve.points.deduped": 0,
                "serve.points.cache_hits": 0}
    clients: Dict[str, Dict[str, int]] = {}
    runs: Dict[str, Dict[str, Any]] = {}
    workers: Dict[int, Dict[str, Any]] = {}
    redispatched: Dict[int, int] = {}
    stragglers_total = 0
    for event in events:
        name = event.get("event")
        run_id = event.get("run_id")
        if run_id:
            run = runs.setdefault(run_id, {"events": 0, "first_ts":
                                           event.get("ts", 0.0)})
            run["events"] += 1
            run["last_ts"] = event.get("ts", 0.0)
        if name == "point_cached":
            counters["serve.points.cache_hits"] += 1
        elif name == "point_deduped":
            counters["serve.points.deduped"] += 1
        elif name == "point_straggler":
            stragglers_total += 1
        span_id = event.get("span_id")
        if not span_id:
            continue
        span = spans.setdefault(span_id, {
            "span_id": span_id, "point_slug": None, "client": None,
            "queued_ts": None, "dispatched_ts": None, "worker_pid": None,
            "elapsed_s": None, "terminal": None, "straggler": False,
            "has_twin": False})
        if event.get("point_slug"):
            span["point_slug"] = event["point_slug"]
        if name == "point_queued":
            counters["serve.points.queued"] += 1
            span["queued_ts"] = event.get("ts")
            client = event.get("client")
            if client:
                span["client"] = client
                clients.setdefault(client, {"queued": 0, "done": 0})
                clients[client]["queued"] += 1
        elif name == "point_dispatched":
            if event.get("redispatch"):
                # Speculative twin: the span keeps its primary worker;
                # credit the twin's worker with the re-dispatch.
                span["has_twin"] = True
                pid = event.get("worker_pid")
                if pid is not None:
                    redispatched[pid] = redispatched.get(pid, 0) + 1
            else:
                span["dispatched_ts"] = event.get("ts")
                span["worker_pid"] = event.get("worker_pid")
        elif name == "point_end":
            span["elapsed_s"] = event.get("elapsed_s")
        elif name == "point_straggler":
            span["straggler"] = True
        elif name in _TERMINAL:
            span["terminal"] = name
            if span["client"]:
                clients[span["client"]]["done"] += 1
            pid = span["worker_pid"]
            if pid is not None:
                worker = workers.setdefault(
                    pid, {"points": 0, "busy_seconds": 0.0, "last_ts": 0.0})
                worker["points"] += 1
                worker["busy_seconds"] += span["elapsed_s"] or 0.0
                worker["last_ts"] = max(worker["last_ts"],
                                        event.get("ts", 0.0))
    in_flight = sorted(
        ({"span_id": span["span_id"], "point_slug": span["point_slug"],
          "worker_pid": span["worker_pid"],
          "age_s": round(now - (span["dispatched_ts"]
                                or span["queued_ts"] or now), 6),
          "straggler": span["straggler"],
          "has_twin": span["has_twin"]}
         for span in spans.values()
         if span["terminal"] is None and (span["dispatched_ts"]
                                          or span["queued_ts"])),
        key=lambda entry: -entry["age_s"])
    for pid in redispatched:
        # A worker that only ever ran speculative twins still deserves a
        # row — its redispatched count is its whole story.
        workers.setdefault(pid, {"points": 0, "busy_seconds": 0.0,
                                 "last_ts": 0.0})
    durations = sorted(span["elapsed_s"] for span in spans.values()
                       if span["elapsed_s"] is not None)
    median = (durations[len(durations) // 2]
              if durations else None)
    worker_rows = {
        str(pid): {
            "points": worker["points"],
            "busy_seconds": round(worker["busy_seconds"], 6),
            "points_per_sec": (round(worker["points"]
                                     / worker["busy_seconds"], 3)
                               if worker["busy_seconds"] > 0 else None),
            "redispatched": redispatched.get(pid, 0),
            "heartbeat_age_s": round(now - worker["last_ts"], 6),
            "in_flight": next((f["point_slug"] for f in in_flight
                               if f["worker_pid"] == pid), None),
            "lease_age_s": next((f["age_s"] for f in in_flight
                                 if f["worker_pid"] == pid), None),
            "straggler": any(f["straggler"] for f in in_flight
                             if f["worker_pid"] == pid),
        }
        for pid, worker in workers.items()}
    done_spans = sum(1 for span in spans.values()
                     if span["terminal"] is not None)
    return {
        "runs": len(runs),
        "spans": len(spans),
        "done_spans": done_spans,
        "counters": counters,
        "clients": clients,
        "stragglers_total": stragglers_total,
        "median_point_seconds": median,
        "workers": worker_rows,
        "in_flight": in_flight,
    }


def render_state_frame(state: Dict[str, Any], source: str = "dir") -> str:
    """One ``repro top`` frame from :func:`fleet_state` output."""
    lines: List[str] = [f"repro top — {source} — "
                        + time.strftime("%H:%M:%S")]
    counters = state["counters"]
    ratio = dedup_ratio(counters)
    lines.append(
        f"runs {state['runs']}  points {state['done_spans']}/"
        f"{state['spans']} done  in flight {len(state['in_flight'])}"
        + (f"  dedup {ratio:.1%}" if ratio is not None else "")
        + f"  stragglers {state['stragglers_total']}")
    if state["median_point_seconds"] is not None:
        lines.append(f"median point {_fmt(state['median_point_seconds'])}s")
    if state["clients"]:
        lines.append("")
        rows = [(client, c["queued"], c["done"])
                for client, c in sorted(state["clients"].items())]
        lines.append(_table(["client", "points", "done"], rows,
                            title="per-client"))
    lines.append("")
    lines.append(_render_workers(state))
    lines.append("")
    lines.append(_render_in_flight(state))
    return "\n".join(lines)


def frame_from_dir(directory: str, source: Optional[str] = None) -> str:
    """Read a telemetry directory and render one offline frame."""
    events = telemetry.read_events(directory)
    return render_state_frame(fleet_state(events),
                              source=source or directory)
