"""Structured event trace with Chrome-trace export.

The :class:`Tracer` records cycle-stamped simulation events — DRAM
commands (ACT/PRE/RD/WR/RowClone/refresh), PEI operations, cache
miss/fill/writeback activity, and scheduler thread resume/block — into a
flat list of slotted :class:`TraceEvent` records.  Export targets:

- :meth:`Tracer.to_chrome` — a ``chrome://tracing`` / Perfetto-loadable
  JSON object (one timeline row per bank / requestor / thread),
- :meth:`Tracer.per_requestor` — aggregate per-requestor metrics
  (operation counts, busy cycles, queue delay, row-buffer mix).

Tracing is opt-in: when no tracer is installed the instrumented code pays
only a ``None`` check (see :mod:`repro.obs.core`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.obs.core import Observer

#: Chrome-trace "process" names per event category — each category gets
#: its own top-level group in the trace viewer.
_CATEGORY_PIDS = {"dram": 1, "pim": 2, "cache": 3, "sched": 4}


@dataclass(slots=True)
class TraceEvent:
    """One cycle-stamped simulation event.

    ``ts`` is the event's start (CPU cycles), ``dur`` its extent in
    cycles (0 for instantaneous events), ``tid`` the timeline row it
    renders on (bank, requestor, or thread name).
    """

    name: str
    cat: str
    ts: int
    dur: int
    tid: str
    args: Optional[Dict[str, Any]] = None


def _kind_name(kind: Any) -> Optional[str]:
    return getattr(kind, "value", kind)


class Tracer(Observer):
    """Records :class:`TraceEvent`\\ s from every instrumented component."""

    def __init__(self, cpu_ghz: float = 2.6) -> None:
        if cpu_ghz <= 0:
            raise ValueError("cpu_ghz must be positive")
        self.cpu_ghz = cpu_ghz
        self.events: List[TraceEvent] = []

    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        self.events.clear()

    # ------------------------------------------------------------------
    # Observer hooks
    # ------------------------------------------------------------------

    def on_dram_access(self, op, bank_index, row, kind, requestor, issued,
                       start, service_start, finish, predicted, bank) -> None:
        self.events.append(TraceEvent(
            name=op, cat="dram", ts=service_start,
            dur=finish - service_start, tid=f"bank {bank_index}",
            args={"row": row, "kind": _kind_name(kind),
                  "requestor": requestor, "issued": issued,
                  "queue_delay": service_start - issued}))

    def on_precharge(self, bank_index, issued, service_start, finish,
                     opened_at, had_row, bank) -> None:
        self.events.append(TraceEvent(
            name="PRE", cat="dram", ts=service_start,
            dur=finish - service_start, tid=f"bank {bank_index}",
            args={"had_row": had_row, "opened_at": opened_at}))

    def on_refresh(self, bank_index, blocked_at, window_end, bank) -> None:
        self.events.append(TraceEvent(
            name="REF", cat="dram", ts=blocked_at,
            dur=window_end - blocked_at, tid=f"bank {bank_index}",
            args={"window_end": window_end}))

    def on_rowclone(self, bank_index, src_row, dst_row, kind, issued,
                    service_start, finish, requestor, predicted,
                    bank) -> None:
        self.events.append(TraceEvent(
            name="RowClone", cat="dram", ts=service_start,
            dur=finish - service_start, tid=f"bank {bank_index}",
            args={"src_row": src_row, "dst_row": dst_row,
                  "kind": _kind_name(kind), "requestor": requestor}))

    def on_pei(self, site, addr, issued, finish, requestor, kind,
               bank) -> None:
        self.events.append(TraceEvent(
            name="PEI", cat="pim", ts=issued, dur=finish - issued,
            tid=requestor,
            args={"site": site, "addr": addr, "kind": kind, "bank": bank}))

    def on_cache_miss(self, core, addr, issued, finish, requestor) -> None:
        self.events.append(TraceEvent(
            name="miss", cat="cache", ts=issued, dur=finish - issued,
            tid=requestor, args={"core": core, "addr": addr}))

    def on_cache_writeback(self, addr, time, requestor) -> None:
        self.events.append(TraceEvent(
            name="writeback", cat="cache", ts=time, dur=0, tid=requestor,
            args={"addr": addr}))

    def on_clflush(self, core, addr, issued, finish, requestor,
                   dirty) -> None:
        self.events.append(TraceEvent(
            name="clflush", cat="cache", ts=issued, dur=finish - issued,
            tid=requestor, args={"core": core, "addr": addr, "dirty": dirty}))

    def on_thread_resume(self, name, now, sched_id) -> None:
        self.events.append(TraceEvent(
            name="resume", cat="sched", ts=now, dur=0, tid=name))

    def on_thread_block(self, name, now, reason, sched_id) -> None:
        self.events.append(TraceEvent(
            name="block", cat="sched", ts=now, dur=0, tid=name,
            args={"on": reason}))

    # ------------------------------------------------------------------
    # Analysis / export
    # ------------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Event counts by name (``{"RD": 812, "REF": 3, ...}``)."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.name] = out.get(event.name, 0) + 1
        return out

    def per_requestor(self) -> Dict[str, Dict[str, Any]]:
        """Aggregate DRAM-level metrics per requestor.

        For each requestor: operation count, busy cycles (bank service
        time), total queue delay, and the row-buffer outcome mix — the
        per-requestor view a memory-side performance counter would expose.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for event in self.events:
            if event.cat != "dram" or event.args is None:
                continue
            requestor = event.args.get("requestor")
            if requestor is None:
                continue
            row = out.setdefault(requestor, {
                "operations": 0, "busy_cycles": 0, "queue_cycles": 0,
                "hits": 0, "empties": 0, "conflicts": 0})
            row["operations"] += 1
            row["busy_cycles"] += event.dur
            row["queue_cycles"] += event.args.get("queue_delay", 0)
            kind = event.args.get("kind")
            if kind == "hit":
                row["hits"] += 1
            elif kind == "empty":
                row["empties"] += 1
            elif kind == "conflict":
                row["conflicts"] += 1
        return out

    def to_chrome(self, extra: Optional[Dict[str, Any]] = None,
                  ) -> Dict[str, Any]:
        """The trace as a ``chrome://tracing`` JSON object.

        Cycle stamps convert to microseconds through ``cpu_ghz`` (the
        Trace Event Format's ``ts``/``dur`` unit); instantaneous events
        use phase ``"i"``, spans use complete events (``"X"``).
        ``extra`` merges into ``otherData`` — the sweep runner stamps
        provenance (worker pid, ``run_id``/``span_id``, ``point_slug``)
        there so traces from different pool workers sharing a trace dir
        can never mis-join.
        """
        scale = 1.0 / (self.cpu_ghz * 1000.0)  # cycles -> microseconds
        trace_events: List[Dict[str, Any]] = []
        for event in self.events:
            record: Dict[str, Any] = {
                "name": event.name,
                "cat": event.cat,
                "pid": _CATEGORY_PIDS.get(event.cat, 0),
                "tid": event.tid,
                "ts": event.ts * scale,
            }
            if event.dur > 0:
                record["ph"] = "X"
                record["dur"] = event.dur * scale
            else:
                record["ph"] = "i"
                record["s"] = "t"
            if event.args:
                record["args"] = event.args
            trace_events.append(record)
        other_data: Dict[str, Any] = {
            "cpu_ghz": self.cpu_ghz,
            "event_counts": self.counts(),
        }
        if extra:
            other_data.update(extra)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ns",
            "otherData": other_data,
        }

    def write_chrome(self, path: str,
                     extra: Optional[Dict[str, Any]] = None) -> str:
        """Serialize :meth:`to_chrome` to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome(extra), fh)
        return path


def summarize_chrome_trace(path: str) -> Dict[str, Any]:
    """Summarize an on-disk Chrome-trace JSON without re-running anything.

    Reconstructs the :meth:`Tracer.per_requestor` aggregates — operation
    counts, busy cycles, queue delay, row-buffer outcome mix — plus each
    requestor's cycle span and the overall event counts, from a file
    written by :meth:`Tracer.write_chrome` (``repro trace`` / a sweep's
    ``trace_dir``).  Timestamps stored in microseconds convert back to
    cycles through the file's recorded ``cpu_ghz``.
    """
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    other = data.get("otherData", {})
    cpu_ghz = float(other.get("cpu_ghz", 2.6))
    scale = cpu_ghz * 1000.0  # microseconds -> cycles
    counts: Dict[str, int] = {}
    per_requestor: Dict[str, Dict[str, Any]] = {}
    span_start: Optional[int] = None
    span_end: Optional[int] = None
    for event in data.get("traceEvents", []):
        name = event.get("name", "?")
        counts[name] = counts.get(name, 0) + 1
        ts = int(round(event.get("ts", 0.0) * scale))
        dur = int(round(event.get("dur", 0.0) * scale))
        if span_start is None or ts < span_start:
            span_start = ts
        if span_end is None or ts + dur > span_end:
            span_end = ts + dur
        args = event.get("args") or {}
        requestor = args.get("requestor")
        if event.get("cat") in ("pim", "cache", "sched"):
            # These categories render on per-requestor/thread rows.
            requestor = requestor or event.get("tid")
        if requestor is None:
            continue
        row = per_requestor.setdefault(requestor, {
            "events": 0, "operations": 0, "busy_cycles": 0,
            "queue_cycles": 0, "hits": 0, "empties": 0, "conflicts": 0,
            "first_cycle": ts, "last_cycle": ts + dur})
        row["events"] += 1
        row["first_cycle"] = min(row["first_cycle"], ts)
        row["last_cycle"] = max(row["last_cycle"], ts + dur)
        if event.get("cat") == "dram":
            row["operations"] += 1
            row["busy_cycles"] += dur
            row["queue_cycles"] += args.get("queue_delay", 0)
            kind = args.get("kind")
            if kind == "hit":
                row["hits"] += 1
            elif kind == "empty":
                row["empties"] += 1
            elif kind == "conflict":
                row["conflicts"] += 1
    summary = {
        "path": path,
        "cpu_ghz": cpu_ghz,
        "events": sum(counts.values()),
        "counts": counts,
        "span_cycles": [span_start or 0, span_end or 0],
        "per_requestor": per_requestor,
    }
    provenance = {key: other[key]
                  for key in ("pid", "run_id", "span_id", "point_slug")
                  if key in other}
    if provenance:
        summary["provenance"] = provenance
    return summary
