"""Processing-in-memory substrates.

Three pieces, matching §4's baselines:

- :mod:`repro.pim.pei` — the PnM substrate: PIM-Enabled Instructions [67]
  with per-bank PEI Computation Units (PCUs) and the PEI Management Unit's
  locality monitor (including the ignore flag IMPACT-PnM abuses to bypass
  it, §4.1).
- :mod:`repro.pim.rowclone` — the PuM substrate: masked multi-bank
  RowClone [52] with the atomicity guarantee of §5.1.
- :mod:`repro.pim.offchip` — a Hermes-style perceptron off-chip predictor
  [116], the component behind the PnM-OffChip comparison point of §5.1.
"""

from repro.pim.offchip import OffChipPredictor, OffChipPredictorConfig
from repro.pim.pei import (
    ExecutionSite,
    LocalityMonitor,
    PEIConfig,
    PEIEngine,
    PEIResult,
)
from repro.pim.rowclone import RowCloneConfig, RowCloneEngine, RowCloneResult

__all__ = [
    "ExecutionSite",
    "LocalityMonitor",
    "OffChipPredictor",
    "OffChipPredictorConfig",
    "PEIConfig",
    "PEIEngine",
    "PEIResult",
    "RowCloneConfig",
    "RowCloneEngine",
    "RowCloneResult",
]
