"""Hermes-style perceptron off-chip predictor [116].

The PnM-OffChip comparison point (§5.1) models a PnM system whose dispatch
decision comes from a state-of-the-art off-chip load predictor instead of
the PEI locality monitor: if the predictor believes the data is on-chip
(cache-resident), the PEI executes on the host through the cache
hierarchy, throttling the attack.  Larger LLCs bias the predictor toward
on-chip execution, which is why the PnM-OffChip attack's throughput falls
from 12.64 to 10.64 Mb/s as the LLC grows (§5.3, observation five).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class OffChipPredictorConfig:
    """Perceptron parameters.

    The perceptron sums small integer weights over hashed features of the
    access (page, block) plus an LLC-capacity bias, and predicts *off-chip*
    when the sum exceeds ``threshold``.  Online training nudges weights
    toward the observed outcome, saturating at ``weight_limit``.

    ``cache_pressure_base`` / ``cache_pressure_per_doubling`` model the
    predictor's opportunistic caching: with a probability that grows with
    LLC capacity it predicts *on-chip* regardless of the perceptron sum
    ("the off-chip predictor decides to cache more data when the LLC is
    large", §5.3) — the lever behind PnM-OffChip's throughput dropping
    from 12.64 to 10.64 Mb/s across the LLC sweep.
    """

    table_entries: int = 1024
    threshold: int = 0
    weight_limit: int = 16
    llc_bias_per_doubling: float = 1.5
    base_llc_mb: float = 8.0
    train_step: int = 1
    cache_pressure_base: float = 0.02
    cache_pressure_per_doubling: float = 0.07
    seed: int = 42

    def __post_init__(self) -> None:
        if self.table_entries < 1:
            raise ValueError("table_entries must be >= 1")
        if self.weight_limit < 1:
            raise ValueError("weight_limit must be >= 1")
        if not 0.0 <= self.cache_pressure_base <= 1.0:
            raise ValueError("cache_pressure_base must be in [0, 1]")
        if self.cache_pressure_per_doubling < 0:
            raise ValueError("cache_pressure_per_doubling must be >= 0")


class OffChipPredictor:
    """Predicts whether a load's data is off-chip (in DRAM).

    Features: hashed page number and hashed block number, each indexing a
    signed weight table, plus a capacity bias proportional to
    ``log2(llc_size / base)`` — a bigger LLC makes "it's cached" more
    likely a priori.
    """

    def __init__(self, config: OffChipPredictorConfig, llc_size_mb: float) -> None:
        if llc_size_mb <= 0:
            raise ValueError("llc_size_mb must be positive")
        self.config = config
        self.llc_size_mb = llc_size_mb
        self._page_weights: Dict[int, int] = {}
        self._block_weights: Dict[int, int] = {}
        self._rng = random.Random(config.seed)
        self.predictions = 0
        self.offchip_predictions = 0

    def _index(self, value: int) -> int:
        return (value * 0x9E3779B1) % self.config.table_entries

    def _bias(self) -> float:
        # Positive sum => off-chip.  Larger LLC => negative (on-chip) bias.
        ratio = self.llc_size_mb / self.config.base_llc_mb
        return -self.config.llc_bias_per_doubling * math.log2(max(ratio, 1e-9))

    def _sum(self, addr: int) -> float:
        page = self._index(addr >> 12)
        block = self._index(addr >> 6)
        return (self._page_weights.get(page, 0)
                + self._block_weights.get(block, 0)
                + self._bias())

    def cache_pressure(self) -> float:
        """Probability of an opportunistic on-chip prediction."""
        cfg = self.config
        doublings = max(0.0, math.log2(self.llc_size_mb / cfg.base_llc_mb))
        return min(1.0, cfg.cache_pressure_base
                   + cfg.cache_pressure_per_doubling * doublings)

    def predict_offchip(self, addr: int) -> bool:
        """True if the predictor expects ``addr``'s data to be in DRAM."""
        self.predictions += 1
        if self._rng.random() < self.cache_pressure():
            return False
        offchip = self._sum(addr) > self.config.threshold
        if offchip:
            self.offchip_predictions += 1
        return offchip

    def train(self, addr: int, was_offchip: bool) -> None:
        """Online update toward the observed outcome."""
        step = self.config.train_step if was_offchip else -self.config.train_step
        limit = self.config.weight_limit
        for table, index in ((self._page_weights, self._index(addr >> 12)),
                             (self._block_weights, self._index(addr >> 6))):
            weight = table.get(index, 0) + step
            table[index] = max(-limit, min(limit, weight))

    def snapshot_state(self) -> dict:
        """Copied weight tables + RNG state + counters."""
        return {
            "page_weights": dict(self._page_weights),
            "block_weights": dict(self._block_weights),
            "rng": self._rng.getstate(),
            "predictions": self.predictions,
            "offchip_predictions": self.offchip_predictions,
        }

    def restore_state(self, state: dict) -> None:
        self._page_weights = dict(state["page_weights"])
        self._block_weights = dict(state["block_weights"])
        self._rng.setstate(state["rng"])
        self.predictions = state["predictions"]
        self.offchip_predictions = state["offchip_predictions"]

    @property
    def offchip_fraction(self) -> float:
        if not self.predictions:
            return 0.0
        return self.offchip_predictions / self.predictions
