"""PIM-Enabled Instructions (PEI) — the PnM substrate [67].

The PEI architecture has two components IMPACT interacts with (§4.1):

- **PCUs** (PEI Computation Units): one near each DRAM bank plus one on the
  host.  A PEI executed in memory reaches the bank PCU over the on-chip
  network and performs its ~3-cycle operation next to the row buffer —
  bypassing the entire cache hierarchy.
- **PMU** (PEI Management Unit): monitors the locality of PEI target
  regions and executes high-locality PEIs on the *host* PCU (through the
  caches) instead.  Each locality-monitor entry carries an *ignore flag*
  that skips the first hit [93] — the exact mechanism IMPACT-PnM uses to
  keep its PEIs flowing to memory (§4.1, step 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cache.hierarchy import CacheHierarchy
from repro.dram.bank import AccessKind
from repro.dram.controller import MemoryController
from repro.obs import current_observer


class ExecutionSite(enum.Enum):
    """Where a PEI actually executed."""

    MEMORY = "memory"
    HOST = "host"


@dataclass(frozen=True)
class PEIConfig:
    """PEI architecture parameters.

    ``pcu_op_cycles`` follows §5.1 (a PEI operation takes ~3 cycles beyond
    the DRAM access).  ``network_cycles`` is the one-way on-chip
    network + controller front-end latency between the core and a bank PCU;
    it is paid in both directions.
    """

    issue_cycles: int = 2
    network_cycles: int = 25
    pcu_op_cycles: int = 3
    monitor_entries: int = 256
    monitor_ways: int = 4
    locality_threshold: int = 2
    ignore_first_hit: bool = True

    def __post_init__(self) -> None:
        for name in ("issue_cycles", "network_cycles", "pcu_op_cycles"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.monitor_entries < 1 or self.monitor_ways < 1:
            raise ValueError("monitor geometry must be >= 1")
        if self.monitor_entries % self.monitor_ways != 0:
            raise ValueError("monitor_entries must divide by monitor_ways")
        if self.locality_threshold < 1:
            raise ValueError("locality_threshold must be >= 1")


@dataclass(frozen=True)
class PEIResult:
    """Outcome of one PEI operation."""

    site: ExecutionSite
    issued: int
    finish: int
    kind: Optional[AccessKind] = None  # DRAM outcome (memory path only)
    bank: Optional[int] = None

    @property
    def latency(self) -> int:
        return self.finish - self.issued


class LocalityMonitor:
    """The PMU's tag-based locality monitor with per-entry ignore flags.

    Entries are allocated per PEI target cache block.  A lookup returns
    whether the PMU considers the region *high locality* (execute on host).
    The first hit on a fresh entry is ignored when ``ignore_first_hit`` is
    set [93], which lets an attacker alternate within a small address range
    and still be dispatched to memory.
    """

    def __init__(self, config: PEIConfig, line_bytes: int = 64) -> None:
        self.config = config
        self.line_bytes = line_bytes
        self.num_sets = config.monitor_entries // config.monitor_ways
        ways = config.monitor_ways
        self._tags: List[List[int]] = [[-1] * ways for _ in range(self.num_sets)]
        self._hits: List[List[int]] = [[0] * ways for _ in range(self.num_sets)]
        self._ignore: List[List[bool]] = [[False] * ways for _ in range(self.num_sets)]
        self._stamps: List[List[int]] = [[0] * ways for _ in range(self.num_sets)]
        self._clock = 0
        self.high_locality_decisions = 0
        self.lookups = 0

    def _locate(self, block: int) -> Tuple[int, Optional[int]]:
        set_index = block % self.num_sets
        for way in range(self.config.monitor_ways):
            if self._tags[set_index][way] == block:
                return set_index, way
        return set_index, None

    def observe(self, addr: int, *, set_ignore: bool = False) -> bool:
        """Record a PEI to ``addr``; returns True if the PMU classifies the
        region as high-locality (host execution).

        ``set_ignore`` models the attacker explicitly setting the entry's
        ignore flag (§4.1 step 1).
        """
        self.lookups += 1
        self._clock += 1
        block = addr // self.line_bytes
        set_index, way = self._locate(block)
        if way is None:
            way = self._allocate(set_index)
            self._tags[set_index][way] = block
            self._hits[set_index][way] = 0
            self._ignore[set_index][way] = (self.config.ignore_first_hit
                                            or set_ignore)
            self._stamps[set_index][way] = self._clock
            return False
        self._stamps[set_index][way] = self._clock
        if set_ignore:
            self._ignore[set_index][way] = True
        if self._ignore[set_index][way]:
            # The first hit is ignored: too aggressive to call it high
            # locality yet [93].  The flag is consumed.
            self._ignore[set_index][way] = False
            return False
        self._hits[set_index][way] += 1
        if self._hits[set_index][way] >= self.config.locality_threshold:
            self.high_locality_decisions += 1
            return True
        return False

    def _allocate(self, set_index: int) -> int:
        ways = self.config.monitor_ways
        for way in range(ways):
            if self._tags[set_index][way] < 0:
                return way
        stamps = self._stamps[set_index]
        return min(range(ways), key=lambda w: stamps[w])

    def snapshot_state(self) -> dict:
        """Copied monitor entries + counters (warm-state snapshots)."""
        return {
            "tags": [list(row) for row in self._tags],
            "hits": [list(row) for row in self._hits],
            "ignore": [list(row) for row in self._ignore],
            "stamps": [list(row) for row in self._stamps],
            "clock": self._clock,
            "high_locality_decisions": self.high_locality_decisions,
            "lookups": self.lookups,
        }

    def restore_state(self, state: dict) -> None:
        for dst, src in zip(self._tags, state["tags"]):
            dst[:] = src
        for dst, src in zip(self._hits, state["hits"]):
            dst[:] = src
        for dst, src in zip(self._ignore, state["ignore"]):
            dst[:] = src
        for dst, src in zip(self._stamps, state["stamps"]):
            dst[:] = src
        self._clock = state["clock"]
        self.high_locality_decisions = state["high_locality_decisions"]
        self.lookups = state["lookups"]


class PEIEngine:
    """Dispatches PEIs to bank PCUs or the host PCU via the PMU."""

    def __init__(self, config: PEIConfig, controller: MemoryController,
                 hierarchy: Optional[CacheHierarchy] = None) -> None:
        self.config = config
        self.controller = controller
        self.hierarchy = hierarchy
        line = hierarchy.config.line_bytes if hierarchy is not None else 64
        self.monitor = LocalityMonitor(config, line_bytes=line)
        self.memory_executions = 0
        self.host_executions = 0
        # Observability (repro.obs): None = off, one branch per PEI.
        self._obs = current_observer()

    def set_observer(self, observer) -> None:
        """Attach a :class:`repro.obs.Observer`; ``None`` detaches."""
        self._obs = observer

    # ------------------------------------------------------------------
    # Core operation
    # ------------------------------------------------------------------

    def execute(self, addr: int, issued: int, *, core: int = 0,
                requestor: str = "pei", set_ignore: bool = False,
                force_site: Optional[ExecutionSite] = None) -> PEIResult:
        """Execute one PEI targeting ``addr`` (blocking round trip).

        The PMU decides the execution site unless ``force_site`` overrides
        it (used by the off-chip-predictor baseline, which replaces the
        PMU's decision with the predictor's).
        """
        site = force_site
        if site is None:
            high_locality = self.monitor.observe(addr, set_ignore=set_ignore)
            site = ExecutionSite.HOST if high_locality else ExecutionSite.MEMORY
        if site is ExecutionSite.HOST:
            return self._execute_host(addr, issued, core, requestor)
        return self._execute_memory(addr, issued, requestor)

    def _execute_memory(self, addr: int, issued: int,
                        requestor: str) -> PEIResult:
        cfg = self.config
        t = issued + cfg.issue_cycles + cfg.network_cycles
        mem = self.controller.access(addr, t, requestor=requestor)
        finish = mem.finish + cfg.pcu_op_cycles + cfg.network_cycles
        self.memory_executions += 1
        if self._obs is not None:
            self._obs.on_pei("memory", addr, issued, finish, requestor,
                             mem.kind.value, mem.bank)
        return PEIResult(site=ExecutionSite.MEMORY, issued=issued,
                         finish=finish, kind=mem.kind, bank=mem.bank)

    def _execute_host(self, addr: int, issued: int, core: int,
                      requestor: str) -> PEIResult:
        cfg = self.config
        if self.hierarchy is None:
            raise RuntimeError("host PEI execution requires a cache hierarchy")
        t = issued + cfg.issue_cycles
        result = self.hierarchy.access(core, addr, t, requestor=requestor)
        finish = result.finish + cfg.pcu_op_cycles
        self.host_executions += 1
        kind = result.mem.kind if result.mem is not None else None
        bank = result.mem.bank if result.mem is not None else None
        if self._obs is not None:
            self._obs.on_pei("host", addr, issued, finish, requestor,
                             kind.value if kind is not None else None, bank)
        return PEIResult(site=ExecutionSite.HOST, issued=issued,
                         finish=finish, kind=kind, bank=bank)

    def snapshot_state(self) -> dict:
        """Copied PMU monitor state + dispatch counters."""
        return {
            "monitor": self.monitor.snapshot_state(),
            "memory_executions": self.memory_executions,
            "host_executions": self.host_executions,
        }

    def restore_state(self, state: dict) -> None:
        self.monitor.restore_state(state["monitor"])
        self.memory_executions = state["memory_executions"]
        self.host_executions = state["host_executions"]

    # ------------------------------------------------------------------
    # Parallel fan-out (the side-channel attacker's probe epoch, §4.3)
    # ------------------------------------------------------------------

    def execute_parallel(self, addrs: List[int], issued: int, *,
                         issue_gap_cycles: Optional[float] = None,
                         requestor: str = "pei") -> List[PEIResult]:
        """Issue many memory-side PEIs back to back.

        The core dispatches one PEI packet per ``issue_gap_cycles`` (default:
        ``issue_cycles``; fractional gaps model superscalar issue and are
        truncated per packet); the bank-side operations then proceed in
        parallel across banks.  Returns per-address results in input order.
        """
        gap = issue_gap_cycles if issue_gap_cycles is not None else self.config.issue_cycles
        cfg = self.config
        obs = self._obs
        results: List[PEIResult] = []
        for i, addr in enumerate(addrs):
            issue_time = issued + int(i * gap)
            t = issue_time + cfg.network_cycles
            mem = self.controller.access(addr, t, requestor=requestor)
            finish = mem.finish + cfg.pcu_op_cycles + cfg.network_cycles
            self.memory_executions += 1
            if obs is not None:
                obs.on_pei("memory", addr, issue_time, finish, requestor,
                           mem.kind.value, mem.bank)
            results.append(PEIResult(site=ExecutionSite.MEMORY,
                                     issued=issue_time, finish=finish,
                                     kind=mem.kind, bank=mem.bank))
        return results

    def execute_parallel_raw(self, locations: List[Tuple[int, int]],
                             issued: int, *,
                             issue_gap_cycles: Optional[float] = None,
                             requestor: str = "pei",
                             ) -> List[Tuple[int, int, int]]:
        """Memory-side PEI fan-out over pre-decoded ``(bank, row)`` pairs.

        Bit-identical timing, state evolution, and statistics to
        :meth:`execute_parallel` on the equivalent addresses, but returns
        compact ``(bank, issue_time, finish)`` triples instead of
        :class:`PEIResult` objects — the §4.3 attacker rescans every bank
        once per victim probe, making this the simulator's hottest loop,
        and the per-op address decode and result-object allocations
        dominated it.  Whenever an observer is attached (tracer,
        sanitizer, metrics) or a controller feature with per-access hooks
        is active (bank partitioning, refresh, constant-time), the call
        delegates to :meth:`execute_parallel`, so every observable event
        is still reported identically.
        """
        controller = self.controller
        if (self._obs is not None or controller._obs is not None
                or controller._partition or controller._refresh_enabled
                or controller._constant_time):
            encode = controller.mapper.encode
            results = self.execute_parallel(
                [encode(bank, row) for bank, row in locations], issued,
                issue_gap_cycles=issue_gap_cycles, requestor=requestor)
            return [(r.bank, r.issued, r.finish) for r in results]
        cfg = self.config
        gap = (issue_gap_cycles if issue_gap_cycles is not None
               else cfg.issue_cycles)
        lead = cfg.network_cycles
        tail = cfg.pcu_op_cycles + cfg.network_cycles
        queue = controller._queue_cycles
        close_after = controller._close_after
        locked = controller._locked_until  # only rowclone moves it
        banks = controller.device.banks
        hit_kind = AccessKind.HIT
        conflict_kind = AccessKind.CONFLICT
        hits = 0
        conflicts = 0
        out: List[Tuple[int, int, int]] = []
        append = out.append
        for i, (bank_index, row) in enumerate(locations):
            issue_time = issued + int(i * gap)
            start = issue_time + lead + queue
            if start < locked:
                start = locked
            kind, _service, finish = banks[bank_index].access_raw(
                row, start, close_after)
            if kind is hit_kind:
                hits += 1
            elif kind is conflict_kind:
                conflicts += 1
            append((bank_index, issue_time, finish + tail))
        count = len(out)
        if count:
            self.memory_executions += count
            stats = controller._stats_for(requestor)
            stats.reads += count
            stats.hits += hits
            stats.conflicts += conflicts
        return out
