"""RowClone — the PuM substrate [52].

User code names a source range, a destination range, and a bank mask; the
memory controller fans the request out as parallel in-bank Fast Parallel
Mode copies, one per set mask bit (§4.2).  The transaction is atomic at the
controller (§5.1), and its *latency as observed by the issuer* depends on
the row-buffer state of the touched banks — which is exactly the signal the
IMPACT-PuM receiver decodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.dram.bank import AccessKind
from repro.dram.controller import MemoryController, MemoryResult


@dataclass(frozen=True)
class RowCloneConfig:
    """RowClone interface cost model.

    ``issue_cycles`` is the core-side cost of composing/issuing the request
    descriptor; ``network_cycles`` is the one-way path to the memory
    controller (paid both ways) — shorter than PEI's, because RowClone is
    executed by the controller itself rather than by per-bank PCUs.  A
    single request covers any number of banks — that is the parallelism
    advantage over PEI (§4.2, "Advantage over IMPACT-PnM").
    """

    issue_cycles: int = 4
    network_cycles: int = 15

    def __post_init__(self) -> None:
        if self.issue_cycles < 0 or self.network_cycles < 0:
            raise ValueError("cycle costs must be >= 0")


@dataclass(frozen=True)
class RowCloneResult:
    """Outcome of one (multi-bank) RowClone operation."""

    issued: int
    finish: int
    per_bank: List[MemoryResult]

    @property
    def latency(self) -> int:
        return self.finish - self.issued

    @property
    def banks(self) -> List[int]:
        return [r.bank for r in self.per_bank]

    @property
    def conflicts(self) -> List[int]:
        """Banks whose copy hit a perturbed row buffer (paid extra tRP)."""
        return [r.bank for r in self.per_bank if r.kind is AccessKind.CONFLICT]


class RowCloneEngine:
    """User-space entry point for masked multi-bank RowClone."""

    def __init__(self, config: RowCloneConfig,
                 controller: MemoryController) -> None:
        self.config = config
        self.controller = controller
        self.operations = 0

    def clone(self, src_addr: int, dst_addr: int, mask: int, issued: int, *,
              requestor: str = "rowclone") -> RowCloneResult:
        """Copy row ``src`` to row ``dst`` in every bank selected by
        ``mask``; blocks until the whole atomic transaction completes."""
        cfg = self.config
        t = issued + cfg.issue_cycles + cfg.network_cycles
        per_bank = self.controller.rowclone(src_addr, dst_addr, mask, t,
                                            requestor=requestor)
        self.operations += 1
        if per_bank:
            done = max(r.finish for r in per_bank)
        else:
            done = t
        finish = done + cfg.network_cycles
        return RowCloneResult(issued=issued, finish=finish, per_bank=per_bank)

    def clone_single_bank(self, bank: int, src_row: int, dst_row: int,
                          issued: int, *,
                          requestor: str = "rowclone") -> RowCloneResult:
        """Convenience: RowClone in exactly one bank (the receiver's probe,
        §4.2 step 3)."""
        src = self.controller.address_of(bank=0, row=src_row)
        dst = self.controller.address_of(bank=0, row=dst_row)
        # address_of(bank=0, ...) + mask selects the actual bank; the row
        # index is shared across banks for row-aligned ranges.
        return self.clone(src, dst, 1 << bank, issued, requestor=requestor)

    @staticmethod
    def mask_from_bits(bits: List[int]) -> int:
        """Encode a bit vector as a bank mask (bit i of the message selects
        bank i — the sender's encoding, §4.2 step 2)."""
        mask = 0
        for i, bit in enumerate(bits):
            if bit not in (0, 1):
                raise ValueError(f"message bits must be 0/1, got {bit!r}")
            if bit:
                mask |= 1 << i
        return mask
