"""Simulation-as-a-service: the ``repro serve`` daemon and its client.

The cache hierarchy the sweeps already use — result cache → warm store →
pooled pristine systems on a persistent fork-server
:class:`~repro.exp.runner.WorkerPool` — promoted into a long-running
multi-tenant service.  Many concurrent clients submit experiment sweeps
over a stdlib JSON-lines TCP protocol; the scheduler fair-shares the
pool between them, deduplicates identical in-flight requests by the same
content-hash keys the caches use, and streams per-point progress plus
live metrics back to each client.

Layers:

- :mod:`repro.serve.protocol` — wire format, experiment registry,
  point-identity hashing.
- :mod:`repro.serve.scheduler` — fair-share + priority queue, dedup,
  pool dispatch with worker-death retry and inline fallback.
- :mod:`repro.serve.server` — the asyncio TCP daemon (``repro serve``).
- :mod:`repro.serve.client` — blocking client library (``repro submit``).
"""

from repro.serve.client import JobResult, ServeClient, ServeError
from repro.serve.protocol import (ProtocolError, build_points,
                                  experiment_registry, point_key)
from repro.serve.scheduler import Job, ServeScheduler
from repro.serve.server import ServeServer, run_server

__all__ = [
    "Job",
    "JobResult",
    "ProtocolError",
    "ServeClient",
    "ServeError",
    "ServeScheduler",
    "ServeServer",
    "build_points",
    "experiment_registry",
    "point_key",
    "run_server",
]
