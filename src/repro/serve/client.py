"""Synchronous client library for ``repro serve``.

Plain blocking sockets speaking the newline-delimited-JSON protocol —
usable from scripts, tests, and thread-per-client load generators without
an event loop::

    from repro.serve import ServeClient

    with ServeClient(port=9306) as client:
        job = client.submit("fig8", [{"llc_mb": 8}, {"llc_mb": 64}],
                            on_event=lambda e: print(e["event"]))
        for params, payload in zip(job.points, job.results):
            print(params, payload)

One connection carries one client identity: the daemon's fair-share
scheduler accounts all jobs submitted through it to the same tenant, and
closing the connection cancels the tenant's queued points.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.serve import protocol

DEFAULT_TIMEOUT = 600.0


@dataclass
class JobResult:
    """Outcome of one submitted sweep, in point order."""

    job_id: str
    points: List[Dict[str, Any]]
    results: List[Any]
    sources: List[Optional[str]]
    ok: bool
    errors: List[str] = field(default_factory=list)
    warm_hits: int = 0
    warm_misses: int = 0
    elapsed_seconds: float = 0.0
    events: int = 0
    #: Causal run ID the daemon minted for this job — the join key into
    #: its telemetry event log (see :mod:`repro.obs.telemetry`).
    run_id: Optional[str] = None

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)


class ServeError(RuntimeError):
    """The daemon reported an error for this client's request."""


class ServeClient:
    """Blocking client for one ``repro serve`` daemon connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 9306,
                 timeout: float = DEFAULT_TIMEOUT) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._tags = 0

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------

    def _send(self, message: Mapping[str, Any]) -> None:
        self._file.write(protocol.encode(message))
        self._file.flush()

    def _recv(self) -> Dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ServeError("server closed the connection")
        return protocol.decode(line)

    def _recv_event(self, kind: str) -> Dict[str, Any]:
        """Next event of ``kind``; protocol errors surface immediately."""
        while True:
            event = self._recv()
            if event.get("event") == "error":
                raise ServeError(event.get("message", "unknown error"))
            if event.get("event") == kind:
                return event

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def submit(self, experiment: Optional[str] = None,
               points: Optional[Sequence[Mapping[str, Any]]] = None, *,
               fn: Optional[str] = None, priority: int = 0,
               on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
               ) -> JobResult:
        """Submit a sweep and stream it to completion.

        ``experiment`` names a server-registered figure function (or pass
        ``fn="module:callable"``); ``points`` is a list of kwargs dicts,
        one per point.  ``on_event`` sees every streamed event (accepted,
        per-point progress, done) as it arrives.  Returns the completed
        :class:`JobResult`; raises :class:`ServeError` if the daemon
        rejected the submission."""
        self._tags += 1
        tag = f"req-{self._tags}"
        request: Dict[str, Any] = {"op": "submit",
                                   "points": [dict(p) for p in points or []],
                                   "priority": priority, "id": tag}
        if experiment is not None:
            request["experiment"] = experiment
        if fn is not None:
            request["fn"] = fn
        self._send(request)
        job_id: Optional[str] = None
        seen = 0
        while True:
            event = self._recv()
            kind = event.get("event")
            if kind == "error":
                raise ServeError(event.get("message", "unknown error"))
            seen += 1
            if on_event is not None:
                on_event(event)
            if kind == "accepted" and event.get("id") == tag:
                job_id = event["job_id"]
            elif kind == "done" and event.get("job_id") == job_id:
                return JobResult(
                    job_id=job_id or "",
                    points=[dict(p) for p in points or []],
                    results=event.get("results") or [],
                    sources=event.get("sources") or [],
                    ok=bool(event.get("ok")),
                    errors=list(event.get("errors") or []),
                    warm_hits=int(event.get("warm_hits") or 0),
                    warm_misses=int(event.get("warm_misses") or 0),
                    elapsed_seconds=float(event.get("elapsed_s") or 0.0),
                    events=seen,
                    run_id=event.get("run_id"),
                )

    def submit_points(self, points: "Sequence[Any]", *, priority: int = 0,
                      on_event: Optional[Callable[[Dict[str, Any]], None]]
                      = None) -> JobResult:
        """Submit :class:`~repro.exp.sweep.SweepPoint` objects directly.

        The function reference is serialized as ``module:qualname`` (the
        protocol's registry escape hatch) so the daemon re-resolves it on
        its side; all points must share one function and experiment —
        the runner's serve backend groups mixed sweeps before calling
        this."""
        specs = {(p.experiment, f"{p.fn.__module__}:{p.fn.__qualname__}")
                 for p in points}
        if len(specs) > 1:
            raise ValueError(f"points mix functions/experiments: "
                             f"{sorted(specs)}")
        (_experiment, spec), = specs or {("", None)}
        if spec is None:
            raise ValueError("submit_points needs at least one point")
        return self.submit(points=[dict(p.params) for p in points],
                           fn=spec, priority=priority, on_event=on_event)

    def metrics(self) -> Dict[str, Any]:
        """Live telemetry snapshot: the daemon's metrics registry
        (counters, histograms, phases) plus scheduler stats."""
        self._send({"op": "metrics"})
        return self._recv_event("metrics")["payload"]

    def status(self) -> Dict[str, Any]:
        """Scheduler stats only (queue depth, running points, pool size,
        per-op counters)."""
        self._send({"op": "status"})
        return self._recv_event("status")["payload"]

    def cancel(self, job_id: str) -> bool:
        self._send({"op": "cancel", "job_id": job_id})
        return bool(self._recv_event("cancelled").get("ok"))

    def shutdown_server(self) -> None:
        """Ask the daemon to drain and exit (trusted-client admin op)."""
        self._send({"op": "shutdown"})
        try:
            self._recv_event("shutting_down")
        except (ServeError, json.JSONDecodeError):
            pass

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
