"""Wire protocol for ``repro serve``: newline-delimited JSON over TCP.

Every message — request or event — is one JSON object per line, UTF-8
encoded.  The transport is a plain stream socket, so the whole protocol
is stdlib (``asyncio`` server side, ``socket`` client side): no runtime
dependencies, and any language can speak it with a JSON library and
``readline``.

Requests (client -> server)::

    {"op": "submit", "experiment": "fig8", "points": [{"llc_mb": 8}, ...],
     "priority": 0, "id": "my-tag"}          # or "fn": "pkg.mod:callable"
    {"op": "status"}
    {"op": "metrics"}
    {"op": "cancel", "job_id": "job-3"}
    {"op": "shutdown"}

Events (server -> client, streamed)::

    {"event": "accepted", "job_id": "job-3", "id": "my-tag", "points": 4,
     "run_id": "run-1a2b..."}
    {"event": "point", "job_id": "job-3", "index": 1,
     "source": "executed|cache|dedup|inline", "payload": {...},
     "elapsed_s": 1.2, "span_id": "span-3c4d..."}
    {"event": "done", "job_id": "job-3", "ok": true, "results": [...],
     "sources": [...], "warm_hits": 3, "warm_misses": 1, "elapsed_s": 4.1,
     "run_id": "run-1a2b..."}
    {"event": "metrics", "payload": {...}}   # registry snapshot + stats
    {"event": "status", "payload": {...}}
    {"event": "error", "message": "...", "id": "my-tag"}

``run_id``/``span_id`` are the causal telemetry IDs from
:mod:`repro.obs.telemetry`: each job gets a ``run_id``, each
deduplicated execution a ``span_id`` (additive fields — protocol
revision unchanged).  When the daemon runs with a telemetry directory,
they join the client's streamed events to the daemon's NDJSON event log
and the per-point trace/metrics artifacts.  The ``metrics`` payload's
``stats.workers`` section carries the live fleet-health snapshot
(per-worker throughput, lease ages, stragglers) that ``repro top``
renders.

Experiments are named server-side: a submit either references one of the
registered figure-point functions (:data:`EXPERIMENTS`) or — for tests,
benches, and user extensions — a ``"module:attribute"`` spec resolved by
the server process.  The daemon therefore runs arbitrary *locally
importable* code on request, exactly like ``run_sweep`` does: it is a
lab-bench service for trusted clients on a trusted host, not an
internet-facing API.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.exp.sweep import SweepPoint

#: Protocol revision, echoed in ``accepted`` events so clients can detect
#: a daemon speaking a different dialect.
PROTOCOL_VERSION = 1


def encode(message: Mapping[str, Any]) -> bytes:
    """One wire line for ``message`` (compact JSON + newline)."""
    return (json.dumps(message, separators=(",", ":"), default=str)
            + "\n").encode("utf-8")


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one wire line; raises :class:`ProtocolError` on garbage."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable message: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


class ProtocolError(ValueError):
    """A malformed request or event line."""


# ---------------------------------------------------------------------------
# Experiment registry
# ---------------------------------------------------------------------------

def experiment_registry() -> Dict[str, Callable[..., Any]]:
    """Named sweep-point functions clients may submit against.

    Resolved lazily: importing the figure functions pulls in the whole
    simulator, which the protocol module itself must not require."""
    from repro.exp import figures

    return {
        "sec33": figures.sec33_point,
        "fig8": figures.fig8_point,
        "fig8-quality": figures.fig8_quality_point,
        "fig10": figures.fig10_point,
        "fig11": figures.fig11_point,
        "covert": figures.covert_point,
        "sidechannel": figures.sidechannel_point,
        "defense-security": figures.defense_security_point,
        "streamline-bound": figures.streamline_bound_point,
    }


def resolve_fn(spec: str) -> Callable[..., Any]:
    """A module-level callable from a ``"module:attribute"`` spec."""
    module_name, _, attr = spec.partition(":")
    if not module_name or not attr:
        raise ProtocolError(f"fn spec {spec!r} is not 'module:attribute'")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ProtocolError(f"cannot import {module_name!r}: {exc}") from exc
    fn = module
    for part in attr.split("."):
        fn = getattr(fn, part, None)
        if fn is None:
            raise ProtocolError(f"{module_name!r} has no attribute {attr!r}")
    if not callable(fn):
        raise ProtocolError(f"{spec!r} is not callable")
    return fn


def build_points(experiment: Optional[str], fn_spec: Optional[str],
                 point_params: Sequence[Mapping[str, Any]]) -> List[SweepPoint]:
    """Materialize a submit request's points.

    ``experiment`` names a registered figure function; ``fn_spec`` is the
    escape hatch for arbitrary module-level callables.  Exactly one must
    be given, and every element of ``point_params`` must be a JSON object
    of keyword arguments."""
    if bool(experiment) == bool(fn_spec):
        raise ProtocolError(
            "submit needs exactly one of 'experiment' or 'fn'")
    if experiment:
        registry = experiment_registry()
        fn = registry.get(experiment)
        if fn is None:
            raise ProtocolError(
                f"unknown experiment {experiment!r} "
                f"(known: {', '.join(sorted(registry))})")
        namespace = experiment
    else:
        fn = resolve_fn(fn_spec)  # type: ignore[arg-type]
        namespace = fn_spec  # type: ignore[assignment]
    if not point_params:
        raise ProtocolError("submit carries no points")
    points: List[SweepPoint] = []
    for params in point_params:
        if not isinstance(params, Mapping):
            raise ProtocolError(
                f"each point must be a JSON object of kwargs, got "
                f"{type(params).__name__}")
        points.append(SweepPoint(experiment=namespace, fn=fn,
                                 params=dict(params)))
    return points


def point_key(point: SweepPoint, version: Optional[str] = None) -> str:
    """Content-hash identity of one point for in-flight deduplication.

    Same material as :meth:`repro.exp.cache.ResultCache.key` — experiment
    name, parameters, and the source-tree code version — plus the target
    function's import path, so two callables sharing an experiment label
    can never collide.  Two clients submitting the same point while one
    execution is in flight therefore share that execution *and* its
    eventual result-cache entry."""
    from repro.exp.cache import canonical_json, code_version

    material = canonical_json({
        "experiment": point.experiment,
        "params": dict(point.params),
        "fn": f"{point.fn.__module__}:{point.fn.__qualname__}",
        "code": version if version is not None else code_version(),
    })
    return hashlib.sha256(material.encode()).hexdigest()[:24]
