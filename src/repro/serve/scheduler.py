"""Async job scheduler: fair-share, deduplicating dispatch onto the pool.

This is the multi-tenant heart of ``repro serve``.  Many clients submit
sweeps concurrently; the scheduler decomposes each into point tasks and
serves them through the same hierarchy ad-hoc sweeps use, now shared:

- **Result cache** — a point whose payload is already in the
  :class:`repro.exp.cache.ResultCache` (same content-hash keys) is
  answered immediately, no execution.
- **In-flight dedup** — identical points (by :func:`repro.serve.protocol.
  point_key`) queued or running for *any* client are executed once; every
  subscriber receives the payload when it lands.  A duplicate submission
  therefore performs zero extra point executions.
- **Warm store / fork-server pool** — executions dispatch onto the
  persistent :class:`repro.exp.runner.WorkerPool` (shared with
  ``run_sweep``), whose workers keep warm memos across jobs and clients.

Scheduling is per-client fair share with priorities: when a slot frees,
the client with the fewest running points goes first (ties to the least
recently served, so a new tenant is never starved behind an earlier bulk
submission), and within a client higher ``priority`` then FIFO order
wins.

Execution is resilient: a worker that dies mid-request is retired and the
point retried on a fresh worker; with no worker processes at all (or
after repeated deaths) the point runs in the daemon process via the
default executor — same numbers, just slower.  A client that disconnects
has its queued points cancelled (unless another client subscribed to
them); its in-flight points finish and still populate the caches.

The scheduler keeps a *local* :class:`~repro.obs.metrics.MetricsRegistry`
rather than installing a process-global one: pool workers fork from the
daemon, and a globally installed registry would ride along and disable
their pristine-system pooling (see :func:`repro.exp.warmstore.
pristine_system`).  The metrics endpoint merges this local registry with
:func:`repro.obs.metrics.snapshot` of whatever the process has installed.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exp import warmstore
from repro.exp.cache import ResultCache
from repro.exp.runner import (PoolUnavailableError, WorkerPool, _run_point,
                              default_jobs, get_pool, point_slug,
                              pool_task_env)
from repro.exp.sweep import SweepPoint
from repro.obs import telemetry
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import FleetHealth
from repro.serve.protocol import point_key

#: Idle workers a quiescent daemon keeps alive (warm, ready for the next
#: burst); everything beyond this is reaped once the queue drains.
DEFAULT_IDLE_WORKERS = 1


class Job:
    """One submitted sweep: per-point results plus streaming callbacks."""

    def __init__(self, job_id: str, client_id: str,
                 points: Sequence[SweepPoint], priority: int,
                 emit: Optional[Callable[[Dict[str, Any]], None]]) -> None:
        self.job_id = job_id
        self.client_id = client_id
        self.points = list(points)
        self.priority = int(priority)
        #: Causal run ID for this job's telemetry records (one per
        #: submission, like ``run_sweep`` mints one per sweep).
        self.run_id = telemetry.new_run_id()
        self._emit = emit
        self.results: List[Any] = [None] * len(points)
        self.sources: List[Optional[str]] = [None] * len(points)
        self.errors: List[Optional[str]] = [None] * len(points)
        self.remaining = len(points)
        self.warm_hits = 0
        self.warm_misses = 0
        self.cancelled = False
        self.started = time.perf_counter()
        self.elapsed_seconds = 0.0
        self.done = asyncio.Event()

    @property
    def ok(self) -> bool:
        return not self.cancelled and not any(self.errors)

    def emit(self, event: Dict[str, Any]) -> None:
        if self._emit is not None and not self.cancelled:
            self._emit(event)

    def describe(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "client": self.client_id,
            "points": len(self.points),
            "remaining": self.remaining,
            "priority": self.priority,
            "cancelled": self.cancelled,
        }


class _Task:
    """One deduplicated unit of execution; fans out to subscribers."""

    __slots__ = ("key", "point", "priority", "order", "owner", "subscribers",
                 "span_id", "run_id")

    def __init__(self, key: str, point: SweepPoint, priority: int,
                 order: int, owner: str,
                 subscriber: Tuple[Job, int]) -> None:
        self.key = key
        self.point = point
        self.priority = priority
        self.order = order
        self.owner = owner  # client whose fair-share slot this occupies
        self.subscribers: List[Tuple[Job, int]] = [subscriber]
        # One execution span regardless of how many jobs subscribe: a
        # deduped duplicate chains into this same span.
        self.span_id = telemetry.new_span_id()
        self.run_id = subscriber[0].run_id


class ServeScheduler:
    """Schedules submitted sweeps onto the shared execution hierarchy.

    Args:
        jobs: maximum concurrently executing points (default
            :func:`repro.exp.runner.default_jobs`).
        cache: optional :class:`ResultCache` — consulted before queueing
            and populated after every successful execution.
        pool: the fork-server pool to dispatch on (default: the
            process-wide pool shared with ``run_sweep``).
        use_pool: ``False`` forces in-process execution via the default
            executor — deterministic for tests, and the automatic
            degradation mode where worker processes cannot spawn.
        idle_workers: pool size the daemon shrinks to when fully idle.
        redispatch_stragglers: when an in-flight point crosses the
            straggler threshold, speculatively re-dispatch it to an
            *idle* worker (never spawning one): first copy to finish
            wins, the loser is killed, and the span carries a
            ``point_retried reason=straggler_redispatch`` marker so
            ``verify_chains`` excuses the duplicate execution.
    """

    def __init__(self, *, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 pool: Optional[WorkerPool] = None,
                 use_pool: bool = True,
                 idle_workers: int = DEFAULT_IDLE_WORKERS,
                 straggler_factor: float = 4.0,
                 straggler_min_seconds: float = 1.0,
                 redispatch_stragglers: bool = True) -> None:
        self.max_jobs = max(1, int(jobs)) if jobs else default_jobs()
        self.cache = cache
        self.use_pool = use_pool
        self.redispatch_stragglers = bool(redispatch_stragglers)
        self._pool = pool
        self.idle_workers = max(0, int(idle_workers))
        self.registry = MetricsRegistry()
        #: Worker health model fed by every dispatch/completion; its
        #: snapshot rides the metrics endpoint and ``repro top``, and a
        #: point exceeding ``straggler_factor`` × the running median (at
        #: least ``straggler_min_seconds``) is flagged in both the event
        #: log and the ``serve.points.stragglers`` counter.
        self.health = FleetHealth(straggler_factor=straggler_factor,
                                  min_seconds=straggler_min_seconds)
        self._queued: Dict[str, _Task] = {}
        self._running: Dict[str, _Task] = {}
        self._active = 0
        self._running_per_client: Dict[str, int] = {}
        self._last_served: Dict[str, int] = {}
        self._serve_tick = itertools.count(1)
        self._order = itertools.count()
        self._job_ids = itertools.count(1)
        self._jobs: Dict[str, Job] = {}
        self._wake = asyncio.Event()
        self._dispatcher: Optional[asyncio.Task] = None
        self._stopping = False

    @property
    def pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = get_pool()
        return self._pool

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        if self._dispatcher is None:
            self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def stop(self) -> None:
        """Stop dispatching; queued tasks are dropped, running ones are
        awaited so their results still reach subscribers and caches."""
        self._stopping = True
        for task in self._queued.values():
            telemetry.emit("point_cancelled", run_id=task.run_id,
                           span_id=task.span_id,
                           point_slug=point_slug(task.point),
                           reason="scheduler_stopping")
        self._queued.clear()
        while self._active:
            self._wake.clear()
            await self._wake.wait()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None

    # ------------------------------------------------------------------
    # Submission / cancellation
    # ------------------------------------------------------------------

    async def submit(self, client_id: str, points: Sequence[SweepPoint],
                     priority: int = 0,
                     emit: Optional[Callable[[Dict[str, Any]], None]] = None,
                     tag: Optional[str] = None) -> Job:
        """Register a sweep for ``client_id``; returns its :class:`Job`
        (await ``job.done.wait()`` for completion).  Each point is served
        from the result cache, subscribed to an identical in-flight
        execution, or queued — in that order."""
        job = Job(f"job-{next(self._job_ids)}", client_id, points, priority,
                  emit)
        self._jobs[job.job_id] = job
        self.registry.counter("serve.jobs.submitted").inc()
        telemetry.emit("job_start", run_id=job.run_id, job_id=job.job_id,
                       client=client_id, points=len(points),
                       priority=job.priority)
        accepted: Dict[str, Any] = {"event": "accepted",
                                    "job_id": job.job_id,
                                    "run_id": job.run_id,
                                    "points": len(points), "protocol": 1}
        if tag is not None:
            accepted["id"] = tag
        job.emit(accepted)
        for index, point in enumerate(points):
            if self.cache is not None:
                hit = self.cache.get(point.experiment, point.params)
                if not ResultCache.is_missing(hit):
                    self.registry.counter("serve.points.cache_hits").inc()
                    telemetry.emit("point_cached", run_id=job.run_id,
                                   point_slug=point_slug(point))
                    self._deliver(job, index, hit, "cache", 0.0)
                    continue
            key = point_key(point)
            task = self._running.get(key) or self._queued.get(key)
            if task is not None:
                task.subscribers.append((job, index))
                self.registry.counter("serve.points.deduped").inc()
                # The duplicate's own run chains into the one execution
                # span — this record is the join between them.
                telemetry.emit("point_deduped", run_id=job.run_id,
                               span_id=task.span_id, job_id=job.job_id,
                               owner_run_id=task.run_id,
                               point_slug=point_slug(point))
                continue
            task = _Task(key, point, priority, next(self._order), client_id,
                         (job, index))
            self._queued[key] = task
            self.registry.counter("serve.points.queued").inc()
            telemetry.emit("point_queued", run_id=task.run_id,
                           span_id=task.span_id, client=client_id,
                           point_slug=point_slug(point),
                           experiment=point.experiment)
        self._wake.set()
        return job

    def cancel_client(self, client_id: str) -> int:
        """Cancel every unfinished job of ``client_id``.  Queued points
        are dropped unless another client subscribed; running points
        finish (their payloads still land in the caches) but deliver
        nothing to the cancelled jobs.  Returns dropped-point count."""
        for job in self._jobs.values():
            if job.client_id == client_id and not job.done.is_set():
                job.cancelled = True
                job.elapsed_seconds = time.perf_counter() - job.started
                job.done.set()
        dropped = 0
        for key, task in list(self._queued.items()):
            task.subscribers = [(job, index) for job, index in
                                task.subscribers if not job.cancelled]
            if not task.subscribers:
                del self._queued[key]
                dropped += 1
                telemetry.emit("point_cancelled", run_id=task.run_id,
                               span_id=task.span_id,
                               point_slug=point_slug(task.point),
                               reason="client_disconnected")
        if dropped:
            self.registry.counter("serve.points.cancelled").inc(dropped)
            telemetry.log("info", "serve", "client cancelled; queued points "
                          "dropped", client=client_id, dropped=dropped)
        self._wake.set()
        return dropped

    def cancel_job(self, job_id: str) -> bool:
        job = self._jobs.get(job_id)
        if job is None or job.done.is_set():
            return False
        job.cancelled = True
        job.elapsed_seconds = time.perf_counter() - job.started
        job.done.set()
        for key, task in list(self._queued.items()):
            task.subscribers = [(j, i) for j, i in task.subscribers
                                if j is not job]
            if not task.subscribers:
                del self._queued[key]
                self.registry.counter("serve.points.cancelled").inc()
                telemetry.emit("point_cancelled", run_id=task.run_id,
                               span_id=task.span_id,
                               point_slug=point_slug(task.point),
                               reason="job_cancelled")
        self._wake.set()
        return True

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            while (self._queued and self._active < self.max_jobs
                   and not self._stopping):
                task = self._pick_next()
                del self._queued[task.key]
                self._running[task.key] = task
                self._active += 1
                owner = task.owner
                self._running_per_client[owner] = (
                    self._running_per_client.get(owner, 0) + 1)
                self._last_served[owner] = next(self._serve_tick)
                asyncio.ensure_future(self._execute(task))
            if (not self._queued and not self._active and self.use_pool
                    and not self._stopping):
                # Fully idle: resident memory tracks load, not history.
                self.pool.shrink(self.idle_workers)

    def _pick_next(self) -> _Task:
        """Fair share with priorities: among clients with queued work,
        the one with the fewest running points goes first, ties broken by
        least-recently-served (a new tenant is never starved behind an
        earlier bulk submission); within a client, highest ``priority``
        then FIFO order wins."""
        best_per_client: Dict[str, _Task] = {}
        for task in self._queued.values():
            best = best_per_client.get(task.owner)
            if best is None or (-task.priority, task.order) < (
                    -best.priority, best.order):
                best_per_client[task.owner] = task
        client = min(
            best_per_client,
            key=lambda c: (self._running_per_client.get(c, 0),
                           self._last_served.get(c, 0),
                           best_per_client[c].order))
        return best_per_client[client]

    async def _execute(self, task: _Task) -> None:
        started = time.perf_counter()
        payload: Any = None
        error: Optional[str] = None
        source = "executed"
        warm_delta = {"hits": 0, "misses": 0}
        try:
            payload, warm_delta, source = await self._run_task(task)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # the point itself failed
            error = f"{type(exc).__name__}: {exc}"
            self.registry.counter("serve.points.failed").inc()
            telemetry.log("error", "serve", "point failed",
                          span_id=task.span_id,
                          point=point_slug(task.point), error=error)
        finally:
            self._running.pop(task.key, None)
            self._active -= 1
            owner = task.owner
            left = self._running_per_client.get(owner, 1) - 1
            if left:
                self._running_per_client[owner] = left
            else:
                self._running_per_client.pop(owner, None)
            self._wake.set()
        elapsed = time.perf_counter() - started
        if error is None:
            self.registry.counter("serve.points.executed").inc()
            self.registry.histogram("serve.point_seconds",
                                    edges=(0.01, 0.05, 0.1, 0.5, 1, 2, 5,
                                           10, 30, 60)).observe(elapsed)
            if self.cache is not None:
                try:
                    self.cache.put(task.point.experiment, task.point.params,
                                   payload)
                except (TypeError, ValueError, OSError):
                    pass  # non-JSON payloads stay in-flight-dedup only
            telemetry.emit("point_committed", run_id=task.run_id,
                           span_id=task.span_id,
                           point_slug=point_slug(task.point), source=source,
                           elapsed_s=round(elapsed, 6),
                           subscribers=len(task.subscribers))
        else:
            telemetry.emit("point_failed", run_id=task.run_id,
                           span_id=task.span_id,
                           point_slug=point_slug(task.point), error=error)
        for job, index in task.subscribers:
            if job.cancelled:
                continue
            job.warm_hits += warm_delta["hits"]
            job.warm_misses += warm_delta["misses"]
            self._deliver(job, index, payload, source, elapsed, error=error,
                          span_id=task.span_id)

    def _deliver(self, job: Job, index: int, payload: Any, source: str,
                 elapsed: float, error: Optional[str] = None,
                 span_id: Optional[str] = None) -> None:
        job.results[index] = payload
        job.sources[index] = source
        job.errors[index] = error
        job.remaining -= 1
        event = {"event": "point", "job_id": job.job_id, "index": index,
                 "source": source, "payload": payload,
                 "elapsed_s": round(elapsed, 6)}
        if span_id is not None:
            event["span_id"] = span_id
        if error is not None:
            event["error"] = error
        job.emit(event)
        if job.remaining == 0:
            job.elapsed_seconds = time.perf_counter() - job.started
            telemetry.emit("job_end", run_id=job.run_id, job_id=job.job_id,
                           ok=job.ok,
                           elapsed_s=round(job.elapsed_seconds, 6))
            job.emit({
                "event": "done", "job_id": job.job_id, "ok": job.ok,
                "run_id": job.run_id,
                "results": job.results, "sources": job.sources,
                "errors": ([e for e in job.errors if e]
                           if not job.ok else []),
                "warm_hits": job.warm_hits, "warm_misses": job.warm_misses,
                "elapsed_s": round(job.elapsed_seconds, 6),
            })
            job.done.set()

    # ------------------------------------------------------------------
    # Point execution (pool with retry, inline fallback)
    # ------------------------------------------------------------------

    async def _run_task(self, task: _Task,
                        ) -> Tuple[Any, Dict[str, int], str]:
        slug = point_slug(task.point)
        if self.use_pool:
            # A worker that dies mid-request (OOM-killed, crashed) is
            # retired and the point retried once on a fresh worker; a
            # point that *raises* is not retried — its exception is the
            # result.
            for _attempt in range(2):
                try:
                    handle = self.pool.checkout()
                except PoolUnavailableError:
                    break  # no worker processes here: run inline
                worker_pid = handle.process.pid
                self.health.record_dispatch(worker_pid, task.span_id,
                                            point_slug=slug,
                                            run_id=task.run_id)
                telemetry.emit("point_dispatched", run_id=task.run_id,
                               span_id=task.span_id, point_slug=slug,
                               worker_pid=worker_pid, attempt=_attempt)
                try:
                    payload, delta = await self._race_on_pool(handle, task,
                                                              slug)
                except (EOFError, OSError, BrokenPipeError) as exc:
                    # Every copy's worker died; flights were closed and
                    # handles retired inside the race.
                    self.registry.counter("serve.workers.died").inc()
                    telemetry.emit("point_retried", run_id=task.run_id,
                                   span_id=task.span_id, point_slug=slug,
                                   reason="worker_died")
                    telemetry.log("warning", "serve",
                                  "worker died mid-point; retrying",
                                  point=slug,
                                  error=f"{type(exc).__name__}: {exc}")
                    continue
                self._record_warm(delta)
                return payload, delta, "executed"
        self.registry.counter("serve.points.inline").inc()
        # Inline degradation: the daemon process is the worker.  Causal
        # IDs pass as arguments (not env) so concurrent inline points
        # can't trample each other's ambient span.
        inline_pid = os.getpid()
        self.health.record_dispatch(inline_pid, task.span_id,
                                    point_slug=slug, run_id=task.run_id)
        telemetry.emit("point_dispatched", run_id=task.run_id,
                       span_id=task.span_id, point_slug=slug,
                       worker_pid=inline_pid, inline=True)
        loop = asyncio.get_running_loop()
        before = warmstore.counters()
        try:
            payload = await loop.run_in_executor(
                None, _run_point, task.point, task.run_id, task.span_id)
        except BaseException:
            self._finish_flight(inline_pid, task, slug, ok=False)
            raise
        self._finish_flight(inline_pid, task, slug, ok=True)
        after = warmstore.counters()
        delta = {key: after[key] - before[key] for key in after}
        return payload, delta, "inline"

    def _finish_flight(self, pid: int, task: _Task, slug: str,
                       ok: bool, flight_key: Optional[str] = None) -> None:
        """Close the health ledger on one dispatch attempt; a completion
        over the straggler threshold is counted and logged exactly once."""
        elapsed, straggler = self.health.record_done(
            pid, flight_key or task.span_id, ok=ok)
        if straggler:
            self.registry.counter("serve.points.stragglers").inc()
            telemetry.emit("point_straggler", run_id=task.run_id,
                           span_id=task.span_id, point_slug=slug,
                           worker_pid=pid, age_s=round(elapsed, 6),
                           threshold_s=self.health.threshold())

    async def _race_on_pool(self, handle: Any, task: _Task, slug: str,
                            ) -> Tuple[Any, Dict[str, int]]:
        """Run one dispatched task, speculatively re-dispatching it to an
        idle worker if it is flagged a straggler mid-flight.

        First copy to finish wins — its result is the task's result, and
        every other copy is killed immediately (:meth:`WorkerPool.kill`)
        and its flight released without polluting the duration median.
        At most one speculative twin runs per point, it only ever claims
        an *idle* worker (``checkout(spawn=False)`` — speculation never
        grows the pool), and ``point_retried reason=straggler_redispatch``
        is emitted before the twin's ``point_dispatched`` so the span's
        duplicate execution is excused by :func:`verify_chains`.

        Raises the last worker-death error only when *every* copy's
        worker died (the caller's retry-once loop handles it); a point
        *raising* wins the race like a success does — deterministic
        points fail identically on any worker."""
        loop = asyncio.get_running_loop()
        copies: Dict[Any, Tuple[Any, str]] = {
            loop.create_task(self._run_on_handle(handle, task)):
                (handle, task.span_id)}
        twin_launched = False
        poll = min(0.5, max(0.05, self.health.min_seconds / 4.0))

        def _kill_losers() -> None:
            for fut, (loser, key) in copies.items():
                fut.cancel()
                self.health.record_cancelled(loser.process.pid, key)
                telemetry.log("info", "serve",
                              "killed losing straggler copy",
                              point_slug=slug,
                              worker_pid=loser.process.pid)
                self.pool.kill(loser)

        try:
            while True:
                speculate = (self.redispatch_stragglers
                             and not twin_launched)
                done, _pending = await asyncio.wait(
                    list(copies), timeout=poll if speculate else None,
                    return_when=asyncio.FIRST_COMPLETED)
                if not done:
                    # Poll tick: refresh the straggler flags and, when
                    # this task's primary flight is flagged, try to
                    # claim an idle worker for a speculative twin.
                    self._flag_stragglers()
                    if not self.health.is_straggler(task.span_id):
                        continue
                    twin = self.pool.checkout(spawn=False)
                    if twin is None:
                        continue
                    twin_launched = True
                    twin_key = f"{task.span_id}#r1"
                    self.registry.counter(
                        "serve.points.redispatched").inc()
                    telemetry.emit("point_retried", run_id=task.run_id,
                                   span_id=task.span_id, point_slug=slug,
                                   reason="straggler_redispatch")
                    self.health.record_dispatch(
                        twin.process.pid, twin_key, point_slug=slug,
                        run_id=task.run_id, redispatch_of=task.span_id)
                    telemetry.emit("point_dispatched", run_id=task.run_id,
                                   span_id=task.span_id, point_slug=slug,
                                   worker_pid=twin.process.pid,
                                   redispatch=True)
                    copies[loop.create_task(
                        self._run_on_handle(twin, task))] = (twin, twin_key)
                    continue
                last_death: Optional[BaseException] = None
                for fut in done:
                    winner, key = copies.pop(fut)
                    try:
                        payload, delta = fut.result()
                    except (EOFError, OSError, BrokenPipeError) as exc:
                        self.health.record_done(winner.process.pid, key,
                                                ok=False)
                        self.pool.retire(winner)
                        last_death = exc
                        continue
                    except BaseException:
                        self._finish_flight(winner.process.pid, task, slug,
                                            ok=False, flight_key=key)
                        self.pool.checkin(winner)
                        _kill_losers()
                        raise
                    self._finish_flight(winner.process.pid, task, slug,
                                        ok=True, flight_key=key)
                    self.pool.checkin(winner)
                    _kill_losers()
                    return payload, delta
                if not copies and last_death is not None:
                    raise last_death
        except asyncio.CancelledError:
            # The scheduler itself is being cancelled: close every
            # flight and release the leases, mirroring the pre-race
            # BaseException path.
            for fut, (copy, key) in copies.items():
                fut.cancel()
                self.health.record_done(copy.process.pid, key, ok=False)
                self.pool.checkin(copy)
            raise

    def _flag_stragglers(self) -> None:
        """Flag newly overdue in-flight points (each exactly once),
        counting and logging them — shared by the metrics endpoint poll
        and the re-dispatch watchdog."""
        for flagged in self.health.flag_stragglers():
            self.registry.counter("serve.points.stragglers").inc()
            # A twin flight is keyed "<span>#rN"; its records must chain
            # under the base span so verify_chains sees one story.
            span = str(flagged["span_id"]).split("#", 1)[0]
            telemetry.emit("point_straggler", run_id=flagged.get("run_id"),
                           span_id=span,
                           point_slug=flagged.get("point_slug"),
                           worker_pid=flagged["pid"],
                           age_s=flagged["age_s"],
                           threshold_s=flagged["threshold_s"],
                           in_flight=True)

    async def _run_on_handle(self, handle: Any, task: _Task,
                             ) -> Tuple[Any, Dict[str, int]]:
        """Send one task to a leased worker and await its reply without
        blocking the event loop (the pipe rides ``loop.add_reader``)."""
        loop = asyncio.get_running_loop()
        env = pool_task_env()
        env[telemetry.ENV_RUN_ID] = task.run_id
        env[telemetry.ENV_SPAN_ID] = task.span_id
        handle.send_task(0, task.point, env)
        future: asyncio.Future = loop.create_future()

        def _ready() -> None:
            if future.done():
                return
            try:
                future.set_result(handle.recv())
            except BaseException as exc:  # EOFError: worker died
                future.set_exception(exc)

        fd = handle.fileno()
        loop.add_reader(fd, _ready)
        try:
            _seq, ok, payload, warm_delta = await future
        finally:
            loop.remove_reader(fd)
        if not ok:
            raise payload
        return payload, warm_delta

    def _record_warm(self, delta: Dict[str, int]) -> None:
        if delta.get("hits"):
            self.registry.counter("warmstore.hits").inc(delta["hits"])
        if delta.get("misses"):
            self.registry.counter("warmstore.misses").inc(delta["misses"])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _health_snapshot(self) -> Dict[str, Any]:
        """Health view for the metrics endpoint; newly overdue in-flight
        points are flagged here (each exactly once) so polling the
        endpoint is what surfaces live stragglers."""
        self._flag_stragglers()
        snapshot = self.health.snapshot()
        # Heartbeat gauges mirror the headline numbers into the registry
        # so a plain metrics scrape sees fleet health without parsing the
        # nested snapshot.
        self.registry.gauge("serve.workers.known").set(
            len(snapshot["workers"]))
        self.registry.gauge("serve.points.in_flight").set(
            len(snapshot["in_flight"]))
        if snapshot["median_point_seconds"] is not None:
            self.registry.gauge("serve.point_seconds.median").set(
                snapshot["median_point_seconds"])
        self.registry.gauge("serve.stragglers.total").set(
            snapshot["stragglers_total"])
        return snapshot

    def stats(self) -> Dict[str, Any]:
        jobs_done = sum(1 for job in self._jobs.values()
                        if job.done.is_set())
        queued_per_client: Dict[str, int] = {}
        for task in self._queued.values():
            queued_per_client[task.owner] = (
                queued_per_client.get(task.owner, 0) + 1)
        return {
            "max_jobs": self.max_jobs,
            "queued_points": len(self._queued),
            "running_points": self._active,
            "jobs_total": len(self._jobs),
            "jobs_done": jobs_done,
            "clients_running": dict(self._running_per_client),
            "clients_queued": queued_per_client,
            "pool_workers": len(self._pool) if self._pool is not None else 0,
            "result_cache": (self.cache.stats()
                             if self.cache is not None else None),
            "counters": {name: counter.value for name, counter in
                         sorted(self.registry.counters.items())},
            "workers": self._health_snapshot(),
        }
