"""The ``repro serve`` daemon: asyncio TCP server over the scheduler.

One connection per client.  Requests are newline-delimited JSON
(:mod:`repro.serve.protocol`); the server streams back ``accepted`` /
``point`` / ``done`` events as the scheduler makes progress, so a client
watches its sweep execute live.  A connection may carry any number of
jobs; a dropped connection cancels its client's queued points (in-flight
points finish and still warm the caches for everyone else).

Stdlib-only transport: ``asyncio.start_server`` plus JSON lines — no
framing libraries, no HTTP dependency.  See the protocol module for the
trust model (a lab-bench service for trusted clients).
"""

from __future__ import annotations

import asyncio
import itertools
import json
from typing import Any, Dict, Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs.telemetry import log as tlog
from repro.serve import protocol
from repro.serve.scheduler import ServeScheduler


class ServeServer:
    """Accepts client connections and relays jobs to the scheduler."""

    def __init__(self, scheduler: ServeScheduler, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._client_ids = itertools.count(1)
        self._shutdown = asyncio.Event()

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the (host, port) actually
        bound — port 0 picks a free one."""
        await self.scheduler.start()
        self._server = await asyncio.start_server(self._handle, self.host,
                                                  self.port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    def request_shutdown(self) -> None:
        """Threadsafe-from-the-loop shutdown trigger (the ``shutdown``
        op and signal handlers land here)."""
        self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        """Run until :meth:`request_shutdown`, then drain and close."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._shutdown.wait()
            await self.scheduler.stop()

    # ------------------------------------------------------------------
    # Per-connection handling
    # ------------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        client_id = f"client-{next(self._client_ids)}"
        peer = writer.get_extra_info("peername")
        tlog("debug", "serve", "client connected", client=client_id,
             peer=str(peer))
        events: "asyncio.Queue[Optional[Dict[str, Any]]]" = asyncio.Queue()
        writer_task = asyncio.ensure_future(self._write_loop(events, writer))
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break  # client disconnected
                if not line.strip():
                    continue
                try:
                    message = protocol.decode(line)
                    await self._dispatch(client_id, message, events)
                except protocol.ProtocolError as exc:
                    tlog("warning", "serve", "protocol error",
                         client=client_id, error=str(exc))
                    events.put_nowait({"event": "error", "message": str(exc)})
                if self._shutdown.is_set():
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop teardown cancels handlers blocked in readline(); finish
            # normally so shutdown doesn't log spurious task exceptions.
            pass
        finally:
            # Disconnect semantics: this client's queued points die with
            # it; nobody else's do.
            tlog("debug", "serve", "client disconnected", client=client_id)
            self.scheduler.cancel_client(client_id)
            events.put_nowait(None)
            try:
                await writer_task
            except (Exception, asyncio.CancelledError):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (Exception, asyncio.CancelledError):
                # Teardown during loop shutdown may cancel us mid-close;
                # the transport is closed either way.
                pass

    async def _write_loop(self, events: "asyncio.Queue",
                          writer: asyncio.StreamWriter) -> None:
        while True:
            event = await events.get()
            if event is None:
                return
            try:
                writer.write(protocol.encode(event))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                return

    async def _dispatch(self, client_id: str, message: Dict[str, Any],
                        events: "asyncio.Queue") -> None:
        op = message.get("op")
        if op == "submit":
            points = protocol.build_points(message.get("experiment"),
                                           message.get("fn"),
                                           message.get("points") or [])
            await self.scheduler.submit(
                client_id, points,
                priority=int(message.get("priority") or 0),
                emit=events.put_nowait, tag=message.get("id"))
        elif op == "metrics":
            events.put_nowait({"event": "metrics",
                               "payload": self._metrics_payload()})
        elif op == "status":
            events.put_nowait({"event": "status",
                               "payload": self.scheduler.stats()})
        elif op == "cancel":
            cancelled = self.scheduler.cancel_job(
                str(message.get("job_id") or ""))
            events.put_nowait({"event": "cancelled",
                               "job_id": message.get("job_id"),
                               "ok": cancelled})
        elif op == "shutdown":
            tlog("info", "serve", "shutdown requested", client=client_id)
            events.put_nowait({"event": "shutting_down"})
            self.request_shutdown()
        else:
            raise protocol.ProtocolError(f"unknown op {op!r}")

    def _metrics_payload(self) -> Dict[str, Any]:
        """The scheduler's local registry merged with whatever registry
        this process has globally installed (:func:`repro.obs.metrics.
        snapshot`), plus scheduler stats — one JSON-able telemetry view."""
        payload = self.scheduler.registry.to_dict()
        installed = obs_metrics.snapshot()
        if installed:
            payload = obs_metrics.MetricsRegistry.merge_dicts(
                [payload, installed])
        payload["stats"] = self.scheduler.stats()
        return payload


async def run_server(scheduler: ServeScheduler, host: str, port: int,
                     port_file: Optional[str] = None,
                     announce: bool = True) -> None:
    """Start a server and block until its ``shutdown`` op (the
    ``repro serve`` CLI entry point)."""
    server = ServeServer(scheduler, host=host, port=port)
    bound_host, bound_port = await server.start()
    if port_file:
        with open(port_file, "w") as handle:
            handle.write(str(bound_port))
    if announce:
        # The one deliberate stdout line: scripts parse it to learn the
        # bound port (see the serve-smoke CI job).  Diagnostics beyond it
        # go through the structured logger.
        print(json.dumps({"serving": f"{bound_host}:{bound_port}",
                          "jobs": scheduler.max_jobs,
                          "result_cache": bool(scheduler.cache)}),
              flush=True)
    tlog("info", "serve", "listening", host=bound_host, port=bound_port,
         jobs=scheduler.max_jobs)
    await server.serve_until_shutdown()
    tlog("info", "serve", "server stopped", host=bound_host,
         port=bound_port)
