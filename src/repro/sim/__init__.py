"""Simulation kernel: virtual-time cooperative threads and synchronization.

The kernel provides the concurrency substrate every other subsystem builds
on.  Simulated threads are Python generators scheduled in virtual-time order
(the runnable thread with the smallest local clock always runs next), which
guarantees that mutations of shared hardware state — DRAM row buffers, cache
sets, TLBs — happen in nondecreasing global-time order.

Public API:

- :class:`Scheduler` — spawns and runs :class:`SimThread` coroutines.
- :class:`Semaphore`, :class:`Barrier`, :class:`Fence` — virtual-time
  synchronization primitives (timestamps propagate through them, so a waiter
  resumes no earlier than the signaler's release time).
- :class:`Context` — per-thread view of time (``now``) plus helpers for
  advancing the clock and tracking asynchronous completions.
- :class:`CycleTimer` — emulates ``cpuid``/``rdtscp`` user-space timing.
- :class:`SystemSnapshot` — opaque warm-state capture produced by
  :meth:`repro.system.System.snapshot` (see :mod:`repro.sim.snapshot`).
"""

from repro.sim.scheduler import (
    Barrier,
    Context,
    DeadlockError,
    Scheduler,
    Semaphore,
    SimThread,
)
from repro.sim.snapshot import SystemSnapshot
from repro.sim.timer import CycleTimer, TimerConfig

__all__ = [
    "Barrier",
    "Context",
    "CycleTimer",
    "DeadlockError",
    "Scheduler",
    "Semaphore",
    "SimThread",
    "SystemSnapshot",
    "TimerConfig",
]
