"""Virtual-time cooperative scheduler.

Threads are generator functions that receive a :class:`Context` and yield
*commands*.  The scheduler always resumes the runnable thread with the
smallest local clock, so shared simulated hardware (banks, caches) observes
accesses in global time order.

Yieldable commands
------------------

- ``None`` — checkpoint: reschedule me; lets lower-time threads run first.
  Threads must checkpoint around shared-hardware accesses.
- ``semaphore.acquire()`` — block until a token is available; the thread
  resumes at ``max(own time, token release time)``.
- ``semaphore.release()`` — deposit a token stamped with the current time.
- ``barrier.wait()`` — rendezvous; all parties resume at the max arrival time.

Example
-------

>>> sched = Scheduler()
>>> log = []
>>> def worker(ctx):
...     ctx.advance(5)
...     yield None
...     log.append((ctx.name, ctx.now))
>>> _ = sched.spawn(worker, name="w0")
>>> _ = sched.spawn(worker, name="w1")
>>> sched.run()
>>> sorted(log)
[('w0', 5), ('w1', 5)]
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, Iterator, List, Optional, Tuple

from repro.obs import (MetricsObserver, MultiObserver, current_metrics,
                       current_observer)


class DeadlockError(RuntimeError):
    """Raised when no thread is runnable but blocked threads remain."""


class Context:
    """Per-thread simulation context.

    Tracks the thread's local virtual clock (``now``, in CPU cycles) and any
    outstanding asynchronous completions (e.g. in-flight PEI operations that
    a later memory fence must wait for).
    """

    __slots__ = ("name", "now", "_pending", "scheduler", "thread_id")

    def __init__(self, name: str, thread_id: int, scheduler: "Scheduler") -> None:
        self.name = name
        self.thread_id = thread_id
        self.scheduler = scheduler
        self.now: int = 0
        self._pending: List[int] = []

    def advance(self, cycles: int) -> None:
        """Move this thread's clock forward by ``cycles`` (must be >= 0)."""
        if cycles < 0:
            raise ValueError(f"cannot advance by negative cycles: {cycles}")
        self.now += cycles

    def advance_to(self, time: int) -> None:
        """Move this thread's clock forward to ``time`` if it is later."""
        if time > self.now:
            self.now = time

    def track_completion(self, finish_time: int) -> None:
        """Record an asynchronous operation completing at ``finish_time``."""
        self._pending.append(finish_time)

    def fence(self) -> None:
        """Memory fence: wait for all tracked asynchronous completions."""
        if self._pending:
            self.advance_to(max(self._pending))
            self._pending.clear()

    @property
    def pending_completions(self) -> Tuple[int, ...]:
        """Completion times of operations not yet retired by a fence."""
        return tuple(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Context(name={self.name!r}, now={self.now})"


class _Acquire:
    __slots__ = ("semaphore",)

    def __init__(self, semaphore: "Semaphore") -> None:
        self.semaphore = semaphore


class _Release:
    __slots__ = ("semaphore",)

    def __init__(self, semaphore: "Semaphore") -> None:
        self.semaphore = semaphore


class _BarrierWait:
    __slots__ = ("barrier",)

    def __init__(self, barrier: "Barrier") -> None:
        self.barrier = barrier


class Semaphore:
    """Counting semaphore whose tokens carry virtual timestamps.

    A token released at time ``t`` cannot be consumed "in the past": the
    acquiring thread resumes at ``max(acquire time, t)``.  This models the
    signal-propagation behaviour of the POSIX semaphores the paper's attacks
    use for sender/receiver pipelining (§4.1).
    """

    def __init__(self, initial: int = 0, name: str = "sem") -> None:
        if initial < 0:
            raise ValueError("initial semaphore value must be >= 0")
        self.name = name
        self._tokens: Deque[int] = deque([0] * initial)
        self._waiters: Deque["SimThread"] = deque()

    @property
    def value(self) -> int:
        """Number of currently available tokens."""
        return len(self._tokens)

    def acquire(self) -> _Acquire:
        """Return a command that blocks until a token is available."""
        return _Acquire(self)

    def release(self) -> _Release:
        """Return a command that deposits one token."""
        return _Release(self)


class Barrier:
    """Rendezvous barrier: all parties resume at the latest arrival time."""

    def __init__(self, parties: int, name: str = "barrier") -> None:
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.name = name
        self.parties = parties
        self._arrived: List["SimThread"] = []
        self._generation = 0

    def wait(self) -> _BarrierWait:
        """Return a command that blocks until all parties have arrived."""
        return _BarrierWait(self)


class SimThread:
    """A spawned simulated thread (generator + context + liveness state)."""

    __slots__ = ("ctx", "generator", "finished", "result", "_seq")

    def __init__(self, ctx: Context, generator: Generator[Any, None, None], seq: int) -> None:
        self.ctx = ctx
        self.generator = generator
        self.finished = False
        self.result: Any = None
        self._seq = seq

    @property
    def name(self) -> str:
        return self.ctx.name

    @property
    def now(self) -> int:
        return self.ctx.now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "finished" if self.finished else f"t={self.ctx.now}"
        return f"SimThread({self.ctx.name}, {state})"


ThreadBody = Callable[..., Generator[Any, None, Any]]


class Scheduler:
    """Runs simulated threads in virtual-time order until all complete.

    The run loop has a *run-to-block fast path*: when the thread that just
    yielded ``None`` (a checkpoint) is still globally minimal — its
    ``(now, seq)`` orders before the heap head's key — it is resumed inline
    instead of being pushed and immediately re-popped.  Checkpoint-dense
    thread bodies (the attacks yield around every shared-hardware access)
    skip two heap operations per checkpoint this way.  Virtual-time order
    is unchanged: the fast path fires exactly when the heap would have
    returned the same thread.  ``fast_path=False`` forces the heap-only
    slow path (used by the equivalence tests).
    """

    _instances = 0

    def __init__(self, fast_path: bool = True, observer: Any = None) -> None:
        Scheduler._instances += 1
        self._sched_id = Scheduler._instances
        self._heap: List[Tuple[int, int, SimThread]] = []
        self._threads: List[SimThread] = []
        self._blocked: Dict[int, SimThread] = {}
        self._blocked_on: Dict[int, str] = {}
        self._seq = 0
        self.fast_path = fast_path
        self.fast_resumes = 0
        self.max_time: int = 0
        # repro.obs hook: explicit observer, else the process-global one
        # (attack primitives build their schedulers internally, so `repro
        # trace` relies on the global pickup); None = off, one branch per
        # resume/block.  A process-global metrics registry rides the same
        # chain — thread resume/block counters are its only scheduler
        # events, so sharing a registry with a System cannot double-count.
        base = observer if observer is not None else current_observer()
        registry = current_metrics()
        if registry is not None:
            sink = MetricsObserver(registry)
            base = MultiObserver([base, sink]) if base is not None else sink
        self._obs = base

    def spawn(self, body: ThreadBody, *args: Any, name: Optional[str] = None,
              start_time: int = 0, **kwargs: Any) -> SimThread:
        """Create a thread from generator function ``body(ctx, *args)``."""
        self._seq += 1
        thread_name = name if name is not None else f"thread-{self._seq}"
        ctx = Context(thread_name, self._seq, self)
        ctx.now = start_time
        gen = body(ctx, *args, **kwargs)
        if not isinstance(gen, Iterator):
            raise TypeError(
                f"thread body {body!r} must be a generator function "
                f"(got {type(gen).__name__}); add at least one `yield`"
            )
        thread = SimThread(ctx, gen, self._seq)
        self._threads.append(thread)
        self._schedule(thread)
        return thread

    def _schedule(self, thread: SimThread) -> None:
        heapq.heappush(self._heap, (thread.ctx.now, thread._seq, thread))

    def run(self, until: Optional[int] = None) -> int:
        """Run until all threads finish (or virtual time exceeds ``until``).

        Returns the final virtual time (max over all thread clocks).
        Raises :class:`DeadlockError` if threads remain blocked with no
        runnable thread to wake them — naming the semaphore/barrier each
        blocked thread is waiting on.  A bounded run (``until`` given) is a
        *partial* run: it pauses without raising, keeping every runnable
        and blocked thread intact, so a later ``run()`` call resumes where
        it stopped (possibly after new threads were spawned to unblock the
        waiters).
        """
        heap = self._heap
        heappush, heappop = heapq.heappush, heapq.heappop
        use_fast = self.fast_path
        obs = self._obs
        while heap:
            now, _seq, thread = heappop(heap)
            if thread.finished:
                continue
            if until is not None and now > until:
                heappush(heap, (now, _seq, thread))
                break
            if obs is not None:
                obs.on_thread_resume(thread.ctx.name, now, self._sched_id)
            # Run-to-block: keep stepping this thread inline for as long as
            # it only checkpoints and stays globally minimal.
            generator = thread.generator
            ctx = thread.ctx
            seq = thread._seq
            while True:
                try:
                    command = next(generator)
                except StopIteration as stop:
                    thread.finished = True
                    thread.result = stop.value
                    break
                if command is None:
                    ctx_now = ctx.now
                    if use_fast and (until is None or ctx_now <= until):
                        if not heap:
                            self.fast_resumes += 1
                            continue
                        head = heap[0]
                        if ctx_now < head[0] or (ctx_now == head[0]
                                                 and seq < head[1]):
                            self.fast_resumes += 1
                            continue
                    heappush(heap, (ctx_now, seq, thread))
                    break
                self._dispatch(thread, command)
                break
        if until is None and not heap and self._blocked:
            raise DeadlockError(
                "all runnable threads finished; blocked: "
                + ", ".join(sorted(
                    f"{t.name} (waiting on {self._blocked_on.get(s, 'unknown')})"
                    for s, t in self._blocked.items()))
            )
        self.max_time = max((t.ctx.now for t in self._threads), default=0)
        return self.max_time

    def _step(self, thread: SimThread) -> None:
        try:
            command = next(thread.generator)
        except StopIteration as stop:
            thread.finished = True
            thread.result = stop.value
            return
        self._dispatch(thread, command)

    def _dispatch(self, thread: SimThread, command: Any) -> None:
        if command is None:
            self._schedule(thread)
        elif isinstance(command, _Acquire):
            self._do_acquire(thread, command.semaphore)
        elif isinstance(command, _Release):
            self._do_release(thread, command.semaphore)
        elif isinstance(command, _BarrierWait):
            self._do_barrier(thread, command.barrier)
        else:
            raise TypeError(f"thread {thread.name} yielded unknown command {command!r}")

    def _do_acquire(self, thread: SimThread, sem: Semaphore) -> None:
        if sem._tokens:
            token_time = sem._tokens.popleft()
            thread.ctx.advance_to(token_time)
            self._schedule(thread)
        else:
            sem._waiters.append(thread)
            self._blocked[thread._seq] = thread
            self._blocked_on[thread._seq] = f"semaphore {sem.name!r}"
            if self._obs is not None:
                self._obs.on_thread_block(thread.ctx.name, thread.ctx.now,
                                          f"semaphore {sem.name}",
                                          self._sched_id)

    def _do_release(self, thread: SimThread, sem: Semaphore) -> None:
        release_time = thread.ctx.now
        if sem._waiters:
            waiter = sem._waiters.popleft()
            del self._blocked[waiter._seq]
            self._blocked_on.pop(waiter._seq, None)
            waiter.ctx.advance_to(release_time)
            self._schedule(waiter)
        else:
            sem._tokens.append(release_time)
        self._schedule(thread)

    def _do_barrier(self, thread: SimThread, barrier: Barrier) -> None:
        barrier._arrived.append(thread)
        if len(barrier._arrived) < barrier.parties:
            self._blocked[thread._seq] = thread
            self._blocked_on[thread._seq] = f"barrier {barrier.name!r}"
            if self._obs is not None:
                self._obs.on_thread_block(thread.ctx.name, thread.ctx.now,
                                          f"barrier {barrier.name}",
                                          self._sched_id)
            return
        resume_time = max(t.ctx.now for t in barrier._arrived)
        barrier._generation += 1
        for waiter in barrier._arrived:
            waiter.ctx.advance_to(resume_time)
            if waiter._seq in self._blocked:
                del self._blocked[waiter._seq]
                self._blocked_on.pop(waiter._seq, None)
            self._schedule(waiter)
        barrier._arrived = []
