"""Warm-state snapshot/restore for the simulated machine.

The §5.1 methodology warms caches and TLBs before every measurement.  At
sweep scale that warm-up dominates: every point pays a full warm replay
even when many points share the same configuration and reference streams.
A :class:`SystemSnapshot` captures *all* architectural state — cache
contents and replacement metadata, row-buffer/bank state, TLBs,
prefetcher tables, predictor weights, and every RNG — so the warm-up runs
once and each subsequent run starts from :meth:`repro.system.System.restore`.

Design rules:

- Every stateful component exposes ``snapshot_state()`` returning a plain
  (copied) payload and ``restore_state(payload)`` that copies *again* on
  the way in, so one snapshot supports any number of restores.
- Restores mutate existing structures **in place** where other objects
  alias them (e.g. :class:`~repro.cache.cache.Cache` aliases its SRRIP
  policy's RRPV rows); replacing such lists wholesale would silently
  decouple the aliases.
- A snapshot is only valid for the :class:`~repro.system.System` (or an
  identically configured one) that produced it; restoring across
  configurations raises.
- Derived acceleration state is *not* captured: the numpy tag mirrors the
  vector backend keeps on each :class:`~repro.cache.cache.Cache` are a
  cache of ``_tags``, and ``Cache.restore_state`` marks them stale so the
  next :meth:`~repro.cache.cache.Cache.tag_matrix` call rebuilds from the
  restored scalar tags.  Snapshots therefore stay backend-agnostic — a
  snapshot taken under the scalar engine replays identically under the
  vector engine and vice versa.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from typing import Any, Dict, List

#: Version of the on-disk snapshot wire format.  Bump whenever the
#: component payload layout changes shape in a way ``restore_state``
#: cannot absorb; readers treat a mismatched version as "no snapshot"
#: rather than guessing at the old layout.
SNAPSHOT_FORMAT_VERSION = 1

_MAGIC = b"RPRSNAP1"


class SnapshotFormatError(ValueError):
    """Raised when bytes are not a snapshot this build can read."""


def copy_rows(rows: List[list]) -> List[list]:
    """Shallow-copy a list of flat lists (the tag/valid/RRPV shape)."""
    return [list(row) for row in rows]


def restore_rows(dst: List[list], src: List[list]) -> None:
    """Copy ``src`` rows into ``dst`` rows **in place** (alias-safe)."""
    if len(dst) != len(src):
        raise ValueError(
            f"snapshot shape mismatch: {len(src)} rows vs {len(dst)}"
        )
    for dst_row, src_row in zip(dst, src):
        dst_row[:] = src_row


@dataclass(frozen=True)
class SystemSnapshot:
    """Opaque capture of a :class:`repro.system.System`'s state.

    ``config`` is the producing system's :class:`~repro.config.SystemConfig`
    (used to reject restores onto differently configured machines);
    ``payload`` maps component names to their ``snapshot_state()`` output.
    """

    config: Any
    payload: Dict[str, Any]

    def component(self, name: str) -> Any:
        try:
            return self.payload[name]
        except KeyError:
            raise KeyError(f"snapshot has no component {name!r}") from None

    # ------------------------------------------------------------------
    # Wire format (used by the warm-state store and cross-process tests)
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize for another process or the on-disk warm store.

        Layout: 8-byte magic, little-endian ``u16`` format version, then
        a pickle of ``(config, payload)``.  The explicit version header
        lets :meth:`from_bytes` reject snapshots written by an older
        layout *before* unpickling, so stale store entries surface as
        clean misses instead of half-restored state.
        """
        body = pickle.dumps((self.config, self.payload),
                            protocol=pickle.HIGHEST_PROTOCOL)
        return _MAGIC + struct.pack("<H", SNAPSHOT_FORMAT_VERSION) + body

    @classmethod
    def from_bytes(cls, data: bytes) -> "SystemSnapshot":
        """Inverse of :meth:`to_bytes`; raises :class:`SnapshotFormatError`
        on foreign bytes or a format-version mismatch."""
        if len(data) < len(_MAGIC) + 2 or data[:len(_MAGIC)] != _MAGIC:
            raise SnapshotFormatError("not a repro snapshot")
        offset = len(_MAGIC)
        (version,) = struct.unpack_from("<H", data, offset)
        if version != SNAPSHOT_FORMAT_VERSION:
            raise SnapshotFormatError(
                f"snapshot format v{version}, this build reads "
                f"v{SNAPSHOT_FORMAT_VERSION}")
        try:
            config, payload = pickle.loads(data[offset + 2:])
        except Exception as exc:  # corrupt pickle → format error
            raise SnapshotFormatError(f"corrupt snapshot body: {exc}") from exc
        return cls(config=config, payload=payload)
