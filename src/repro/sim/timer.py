"""User-space cycle timing, emulating ``cpuid`` + ``rdtscp``.

The paper's receiver measures memory-access latencies from user space with
serialized timestamp reads (§5.1).  Real ``rdtscp`` measurements include a
fixed serialization/read overhead; :class:`CycleTimer` reproduces that so
thresholds calibrated against measured latencies carry the same bias as on
real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.scheduler import Context


@dataclass(frozen=True)
class TimerConfig:
    """Cost model for serialized user-space timestamp reads.

    Attributes:
        read_overhead_cycles: cycles consumed by ``cpuid; rdtscp`` itself.
        resolution_cycles: timer granularity; measured values are quantized
            to multiples of this (1 = cycle-accurate, larger models coarse
            timers such as those on recent Apple cores, §7).
    """

    read_overhead_cycles: int = 0
    resolution_cycles: int = 1

    def __post_init__(self) -> None:
        if self.resolution_cycles < 1:
            raise ValueError("timer resolution must be >= 1 cycle")
        if self.read_overhead_cycles < 0:
            raise ValueError("timer overhead must be >= 0")


class CycleTimer:
    """Measures elapsed virtual cycles the way user space would.

    Usage mirrors the paper's Listing 1::

        timer.start(ctx)
        ...memory operation advances ctx.now...
        latency = timer.stop(ctx)
    """

    def __init__(self, config: TimerConfig = TimerConfig()) -> None:
        self.config = config
        self._start: int = -1

    def start(self, ctx: Context) -> None:
        """Serialize and record the start timestamp."""
        ctx.advance(self.config.read_overhead_cycles)
        self._start = ctx.now

    def stop(self, ctx: Context) -> int:
        """Read the end timestamp; return quantized elapsed cycles."""
        if self._start < 0:
            raise RuntimeError("CycleTimer.stop() called before start()")
        ctx.advance(self.config.read_overhead_cycles)
        elapsed = ctx.now - self._start
        self._start = -1
        resolution = self.config.resolution_cycles
        if resolution > 1:
            elapsed = (elapsed // resolution) * resolution
        return elapsed
